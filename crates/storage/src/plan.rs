//! Cost-based planning: single-table access paths and whole-query plans.
//!
//! Extracted from the executor so that *choosing* how to read data is
//! separate from *doing* it. Planning happens at two levels:
//!
//! 1. [`plan_access`] analyzes a statement's WHERE conjuncts against one
//!    table's primary key and secondary indexes and picks the cheapest
//!    [`AccessPath`] under a cost model whose weights mirror the physical
//!    counters in [`crate::cost::CostReport`] (rows scanned, index probes,
//!    page touches, sort rows). Selectivities come from the per-column
//!    statistics the table layer maintains ([`crate::stats`]) — distinct
//!    counts for equality prefixes, equi-width histograms for ranges —
//!    falling back to the System-R constants only when a column has no
//!    usable statistics.
//! 2. `plan_query` builds a [`QueryPlan`] for a whole SELECT: it
//!    enumerates cost-ranked left-deep join orders (for the 2–4 table
//!    inner-join chains a Django-style ORM emits), plans the driving
//!    table through `plan_access`, picks a probe method per join step
//!    ([`JoinMethod`]), decides whether the chosen pipeline satisfies the
//!    statement's ORDER BY (index-ordered base scan surviving single-row
//!    joins), and pushes `LIMIT k` into order-satisfying plans so the
//!    executor can stop scanning after k output rows.
//!
//! The executor re-applies the full WHERE clause (and every join's ON
//! residually) to whatever the chosen paths yield, so every path only has
//! to produce a *superset* of the matching rows in a known order — which
//! is what lets the planner use the storage total order (see
//! [`crate::value`]) for range scans without re-deriving SQL comparison
//! semantics.
//!
//! Access paths (the shapes a Django-style ORM emits):
//!
//! * [`AccessPath::PkEq`] / [`AccessPath::IndexEq`] — point lookups;
//! * [`AccessPath::PkRange`] / [`AccessPath::IndexRange`] — `<', `<=`,
//!   `>`, `>=`, `BETWEEN` over an indexed column, optionally under an
//!   equality prefix of a composite index;
//! * [`AccessPath::IndexPrefixRange`] — equality on a proper prefix of a
//!   composite index;
//! * [`AccessPath::IndexOr`] — `IN (...)` lists and same-column `OR`
//!   equality chains as sorted multi-key lookups;
//! * [`AccessPath::IndexInList`] — `a = ? AND b IN (...)` as a
//!   multi-range scan of an `(a, b, ...)` index;
//! * [`AccessPath::TableScan`] — the fallback.
//!
//! Index scans yield rows in index-key order, so the planner also decides
//! whether the chosen path already satisfies `ORDER BY` (possibly by
//! scanning in reverse), letting the executor skip the sort.

use crate::cost::CostReport;
use crate::error::Result;
use crate::expr::{CmpOp, Expr};
use crate::latch::TableSet;
use crate::query::{AggFunc, JoinKind, OrderKey, Select, SelectItem};
use crate::row::Row;
use crate::stats::ColumnStats;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// One end of a range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// No constraint on this end.
    Unbounded,
    /// Endpoint included (`<=` / `>=` / `BETWEEN`).
    Included(Value),
    /// Endpoint excluded (`<` / `>`).
    Excluded(Value),
}

impl Bound {
    /// True if this end is constrained.
    pub fn is_bounded(&self) -> bool {
        !matches!(self, Bound::Unbounded)
    }

    /// The endpoint value, if bounded.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
        }
    }
}

/// How the executor reads the base table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Visit every row in heap order.
    TableScan,
    /// Primary-key point lookup.
    PkEq {
        /// The key value.
        key: Value,
    },
    /// Multi-key primary-key lookup (`pk IN (...)` / OR chains on the
    /// primary key); keys are deduplicated and sorted.
    PkOr {
        /// Key values, sorted ascending, no duplicates.
        keys: Vec<Value>,
    },
    /// Ordered scan of a primary-key range.
    PkRange {
        /// Lower end.
        from: Bound,
        /// Upper end.
        to: Bound,
    },
    /// Exact-key secondary-index lookup (all key columns constrained).
    IndexEq {
        /// Index name.
        index: String,
        /// Full-width key, in index column order.
        key: Vec<Value>,
    },
    /// Ordered scan of an index range: equality on the first
    /// `eq_prefix.len()` key columns, a range on the next one.
    IndexRange {
        /// Index name.
        index: String,
        /// Values for the leading equality-constrained key columns.
        eq_prefix: Vec<Value>,
        /// Lower end on the first unconstrained key column.
        from: Bound,
        /// Upper end on the first unconstrained key column.
        to: Bound,
    },
    /// Equality on a proper prefix of a composite index's key columns.
    IndexPrefixRange {
        /// Index name.
        index: String,
        /// Values for the leading key columns.
        prefix: Vec<Value>,
    },
    /// Multi-key lookup for `IN (...)` / same-column `OR` chains; keys
    /// are deduplicated and sorted, so the scan yields key order.
    IndexOr {
        /// Index name.
        index: String,
        /// First-key-column values, sorted ascending, no duplicates.
        keys: Vec<Value>,
    },
    /// Multi-range scan: equality on the leading key columns plus
    /// `IN (...)` on the next one (`a = ? AND b IN (...)` over an
    /// `(a, b, ...)` index). Sorted keys keep the scan in key order.
    IndexInList {
        /// Index name.
        index: String,
        /// Values for the leading equality-constrained key columns.
        eq_prefix: Vec<Value>,
        /// IN-list values for the next key column, sorted ascending, no
        /// duplicates.
        keys: Vec<Value>,
    },
}

impl AccessPath {
    /// Short tag for diagnostics (`EXPLAIN` output, bench labels).
    pub fn kind(&self) -> &'static str {
        match self {
            AccessPath::TableScan => "TableScan",
            AccessPath::PkEq { .. } => "PkEq",
            AccessPath::PkOr { .. } => "PkOr",
            AccessPath::PkRange { .. } => "PkRange",
            AccessPath::IndexEq { .. } => "IndexEq",
            AccessPath::IndexRange { .. } => "IndexRange",
            AccessPath::IndexPrefixRange { .. } => "IndexPrefixRange",
            AccessPath::IndexOr { .. } => "IndexOr",
            AccessPath::IndexInList { .. } => "IndexInList",
        }
    }

    /// The secondary index the path scans, if any.
    pub fn index_name(&self) -> Option<&str> {
        match self {
            AccessPath::IndexEq { index, .. }
            | AccessPath::IndexRange { index, .. }
            | AccessPath::IndexPrefixRange { index, .. }
            | AccessPath::IndexOr { index, .. }
            | AccessPath::IndexInList { index, .. } => Some(index),
            _ => None,
        }
    }
}

/// The planner's decision for one base-table access.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Table being read.
    pub table: String,
    /// Chosen access path.
    pub path: AccessPath,
    /// Estimated rows the path yields (before residual filtering).
    pub estimated_rows: f64,
    /// Estimated physical cost in row-visit units.
    pub estimated_cost: f64,
    /// True when the path yields rows in the statement's ORDER BY order,
    /// so the executor skips its sort.
    pub order_satisfied: bool,
    /// True when the path must be scanned in reverse to satisfy a
    /// descending ORDER BY.
    pub reverse: bool,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}", self.path.kind(), self.table)?;
        match &self.path {
            AccessPath::TableScan => {}
            AccessPath::PkEq { key } => write!(f, " pk={key}")?,
            AccessPath::PkOr { keys } => write!(f, " pk in [{}]", ValuesFmt(keys))?,
            AccessPath::PkRange { from, to } => write!(f, " pk in {}", RangeFmt(from, to))?,
            AccessPath::IndexEq { index, key } => {
                write!(f, " via {index} key=[{}]", ValuesFmt(key))?
            }
            AccessPath::IndexRange {
                index,
                eq_prefix,
                from,
                to,
            } => {
                write!(f, " via {index}")?;
                if !eq_prefix.is_empty() {
                    write!(f, " prefix=[{}]", ValuesFmt(eq_prefix))?;
                }
                write!(f, " range {}", RangeFmt(from, to))?;
            }
            AccessPath::IndexPrefixRange { index, prefix } => {
                write!(f, " via {index} prefix=[{}]", ValuesFmt(prefix))?
            }
            AccessPath::IndexOr { index, keys } => {
                write!(f, " via {index} keys=[{}]", ValuesFmt(keys))?
            }
            AccessPath::IndexInList {
                index,
                eq_prefix,
                keys,
            } => write!(
                f,
                " via {index} prefix=[{}] in=[{}]",
                ValuesFmt(eq_prefix),
                ValuesFmt(keys)
            )?,
        }
        write!(
            f,
            " rows~{:.1} cost~{:.1}{}{})",
            self.estimated_rows,
            self.estimated_cost,
            if self.order_satisfied { " ordered" } else { "" },
            if self.reverse { " reverse" } else { "" },
        )
    }
}

struct ValuesFmt<'a>(&'a [Value]);

impl fmt::Display for ValuesFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

struct RangeFmt<'a>(&'a Bound, &'a Bound);

impl fmt::Display for RangeFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Bound::Unbounded => f.write_str("(")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        f.write_str("..")?;
        match self.1 {
            Bound::Unbounded => f.write_str(")"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------
//
// Unit: one heap-row visit (one `rows_scanned` tick). The other weights
// express how the benchmark cost model prices the matching CostReport
// counters relative to a row visit: a B-tree probe does a few comparisons
// plus pointer chasing; a page touch risks a buffer-pool miss; sorting is
// per-row-comparison work.

const ROW_COST: f64 = 1.0;
const PROBE_COST: f64 = 2.0;
const PAGE_COST: f64 = 0.5;
const SORT_ROW_COST: f64 = 0.4;

/// Selectivity guesses for range predicates when the column has no
/// histogram (the classic System-R defaults).
const RANGE_BOTH_BOUNDED_SEL: f64 = 0.25;
const RANGE_HALF_BOUNDED_SEL: f64 = 0.33;

fn default_range_selectivity(from: &Bound, to: &Bound) -> f64 {
    match (from.is_bounded(), to.is_bounded()) {
        (true, true) => RANGE_BOTH_BOUNDED_SEL,
        (false, false) => 1.0,
        _ => RANGE_HALF_BOUNDED_SEL,
    }
}

/// Histogram-driven selectivity of a range on `column`, falling back to
/// the System-R constants when the column has no usable histogram or the
/// endpoints are not numeric.
fn range_selectivity(table: &Table, column: &str, from: &Bound, to: &Bound) -> f64 {
    let convert = |b: &Bound| -> Option<Option<(f64, bool)>> {
        match b {
            Bound::Unbounded => Some(None),
            Bound::Included(v) => ColumnStats::key_of(v).map(|x| Some((x, true))),
            Bound::Excluded(v) => ColumnStats::key_of(v).map(|x| Some((x, false))),
        }
    };
    if let (Some(lo), Some(hi)) = (convert(from), convert(to)) {
        if let Some(Some(sel)) = table.with_column_stats(column, |s| s.range_selectivity(lo, hi)) {
            return sel;
        }
    }
    default_range_selectivity(from, to)
}

fn scan_cost(rows: f64, probes: f64, rows_per_page: f64) -> f64 {
    rows * ROW_COST + probes * PROBE_COST + (rows / rows_per_page.max(1.0)) * PAGE_COST
}

fn sort_cost(rows: f64) -> f64 {
    rows * rows.max(2.0).log2() * SORT_ROW_COST
}

// ---------------------------------------------------------------------
// Predicate analysis
// ---------------------------------------------------------------------

/// Everything the WHERE conjuncts say about one base-table column.
#[derive(Debug, Default, Clone)]
struct ColumnConstraint {
    eq: Option<Value>,
    lower: Option<Bound>,
    upper: Option<Bound>,
    /// Sorted, deduplicated `IN` / OR-equality key set.
    in_keys: Option<Vec<Value>>,
}

/// Per-column constraints extracted from a predicate for one binding.
#[derive(Debug, Default)]
struct Constraints {
    cols: Vec<(String, ColumnConstraint)>,
}

impl Constraints {
    fn get(&self, col: &str) -> Option<&ColumnConstraint> {
        self.cols.iter().find(|(c, _)| c == col).map(|(_, c)| c)
    }

    fn entry(&mut self, col: &str) -> &mut ColumnConstraint {
        if let Some(i) = self.cols.iter().position(|(c, _)| c == col) {
            return &mut self.cols[i].1;
        }
        self.cols
            .push((col.to_owned(), ColumnConstraint::default()));
        &mut self.cols.last_mut().expect("just pushed").1
    }

    fn eq_value(&self, col: &str) -> Option<&Value> {
        self.get(col).and_then(|c| c.eq.as_ref())
    }

    fn has_any(&self) -> bool {
        !self.cols.is_empty()
    }
}

/// Evaluates a row-free expression (literal or parameter).
pub(crate) fn eval_const(e: &Expr, params: &[Value]) -> Result<Value> {
    e.eval(&Row::default(), params)
}

/// The exact primary-key values a single-table write statement's
/// predicate pins (`pk = ?` / `pk IN (...)`), or `None` when the
/// statement may touch rows the text does not name — the engine's lock
/// planner then escalates to a table-level exclusive lock.
pub(crate) fn pk_target_keys(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    params: &[Value],
) -> Result<Option<Vec<Value>>> {
    let cons = extract_constraints(pred, binding, table, params)?;
    let Some(c) = cons.get(table.schema().primary_key()) else {
        return Ok(None);
    };
    if let Some(v) = &c.eq {
        // An equality dominates: touched rows are a subset of {v}.
        return Ok(Some(vec![v.clone()]));
    }
    Ok(c.in_keys.clone())
}

/// Coerces a predicate value for use against `column`'s stored
/// representation. Returns `None` when no index-safe form exists (the
/// caller then skips the index candidate; the residual filter keeps
/// semantics).
pub(crate) fn coerce_for_column(table: &Table, column: &str, v: &Value) -> Option<Value> {
    let col = table.schema().column(column)?;
    if let Some(cv) = v.coerce_to(col.ty) {
        return Some(cv);
    }
    // Numerics interleave in the storage total order, so an uncoercible
    // float bound (e.g. `int_col > 10.5`) still ranges correctly raw.
    use crate::value::ValueType;
    let numeric_col = matches!(col.ty, ValueType::Int | ValueType::Float);
    let numeric_val = matches!(v, Value::Int(_) | Value::Float(_));
    if numeric_col && numeric_val {
        return Some(v.clone());
    }
    None
}

/// True when `cref` constrains `binding`'s table (qualified with the
/// binding name, or unqualified and resolvable in the table's schema —
/// ORMs qualify ambiguous columns, so first-match attribution is safe).
fn binds_to(cref: &crate::expr::ColumnRef, binding: &str, table: &Table) -> bool {
    let name_ok = match &cref.table {
        Some(t) => t == binding,
        None => true,
    };
    name_ok && table.schema().column_pos(&cref.column).is_some()
}

fn extract_constraints(
    pred: Option<&Expr>,
    binding: &str,
    table: &Table,
    params: &[Value],
) -> Result<Constraints> {
    let mut out = Constraints::default();
    let Some(pred) = pred else {
        return Ok(out);
    };
    for conjunct in pred.conjuncts() {
        if let Some((cref, vexpr)) = conjunct.as_column_eq() {
            if binds_to(cref, binding, table) {
                let v = eval_const(vexpr, params)?;
                if let Some(cv) = coerce_for_column(table, &cref.column, &v) {
                    out.entry(&cref.column).eq = Some(cv);
                }
            }
            continue;
        }
        if let Some((cref, op, vexpr)) = conjunct.as_column_cmp() {
            if !matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                || !binds_to(cref, binding, table)
            {
                continue;
            }
            let v = eval_const(vexpr, params)?;
            // A NULL endpoint makes the comparison unknown for every row;
            // leave it to the residual filter rather than building a
            // range that storage-orders NULL below everything.
            if v.is_null() {
                continue;
            }
            let Some(cv) = coerce_for_column(table, &cref.column, &v) else {
                continue;
            };
            let c = out.entry(&cref.column);
            match op {
                CmpOp::Gt => tighten_lower(&mut c.lower, Bound::Excluded(cv)),
                CmpOp::Ge => tighten_lower(&mut c.lower, Bound::Included(cv)),
                CmpOp::Lt => tighten_upper(&mut c.upper, Bound::Excluded(cv)),
                CmpOp::Le => tighten_upper(&mut c.upper, Bound::Included(cv)),
                _ => unreachable!("filtered above"),
            }
            continue;
        }
        let in_pair = conjunct.as_column_in().map(|(c, list)| (c, list.to_vec()));
        let or_pair = || {
            conjunct
                .as_or_column_eqs()
                .map(|(c, list)| (c, list.into_iter().cloned().collect::<Vec<_>>()))
        };
        if let Some((cref, items)) = in_pair.or_else(or_pair) {
            if !binds_to(cref, binding, table) {
                continue;
            }
            let mut keys = BTreeSet::new();
            let mut all_indexable = true;
            for item in &items {
                let v = eval_const(item, params)?;
                if v.is_null() {
                    // `col IN (.., NULL)` / `col = NULL` arms never match.
                    continue;
                }
                match coerce_for_column(table, &cref.column, &v) {
                    Some(cv) => {
                        keys.insert(cv);
                    }
                    None => {
                        all_indexable = false;
                        break;
                    }
                }
            }
            if all_indexable {
                out.entry(&cref.column).in_keys = Some(keys.into_iter().collect());
            }
        }
    }
    Ok(out)
}

fn tighten_lower(slot: &mut Option<Bound>, candidate: Bound) {
    let replace = match (&slot, &candidate) {
        (None, _) => true,
        (Some(Bound::Included(old) | Bound::Excluded(old)), Bound::Included(new)) => new > old,
        (Some(Bound::Included(old)), Bound::Excluded(new)) => new >= old,
        (Some(Bound::Excluded(old)), Bound::Excluded(new)) => new > old,
        (Some(Bound::Unbounded), _) => true,
        (_, Bound::Unbounded) => false,
    };
    if replace {
        *slot = Some(candidate);
    }
}

fn tighten_upper(slot: &mut Option<Bound>, candidate: Bound) {
    let replace = match (&slot, &candidate) {
        (None, _) => true,
        (Some(Bound::Included(old) | Bound::Excluded(old)), Bound::Included(new)) => new < old,
        (Some(Bound::Included(old)), Bound::Excluded(new)) => new <= old,
        (Some(Bound::Excluded(old)), Bound::Excluded(new)) => new < old,
        (Some(Bound::Unbounded), _) => true,
        (_, Bound::Unbounded) => false,
    };
    if replace {
        *slot = Some(candidate);
    }
}

// ---------------------------------------------------------------------
// ORDER BY analysis
// ---------------------------------------------------------------------

/// The base-table columns a statement orders by, when the whole ORDER BY
/// is plain base-table columns (the only case an index scan can satisfy).
fn order_columns<'a>(
    order_by: &'a [OrderKey],
    binding: &str,
    table: &Table,
) -> Option<Vec<(&'a str, bool)>> {
    let mut out = Vec::with_capacity(order_by.len());
    for key in order_by {
        let Expr::Column(c) = &key.expr else {
            return None;
        };
        if !binds_to(c, binding, table) {
            return None;
        }
        out.push((c.column.as_str(), key.desc));
    }
    Some(out)
}

/// Decides whether `remaining` index key columns satisfy the ORDER BY,
/// after dropping order keys pinned to a constant by an equality
/// constraint. Returns `(satisfied, reverse)`.
fn order_match(
    order: &Option<Vec<(&str, bool)>>,
    cons: &Constraints,
    remaining: &[String],
) -> (bool, bool) {
    let Some(order) = order else {
        return (false, false);
    };
    // Order keys on eq-constrained columns are constant across survivors.
    let effective: Vec<&(&str, bool)> = order
        .iter()
        .filter(|(c, _)| cons.eq_value(c).is_none())
        .collect();
    if effective.is_empty() {
        return (true, false);
    }
    // The order must cover *every* remaining key column, not just a
    // prefix: otherwise rows tying on the ORDER BY keys would come back
    // in trailing-key-column order instead of the heap (rid) tie order
    // the stable sort produces, and results would change with the set of
    // available indexes.
    if effective.len() != remaining.len() {
        return (false, false);
    }
    let desc = effective[0].1;
    for (i, (col, d)) in effective.iter().enumerate() {
        if *d != desc || remaining[i] != *col {
            return (false, false);
        }
    }
    (true, desc)
}

// ---------------------------------------------------------------------
// Single-table access planning
// ---------------------------------------------------------------------

/// Plans one base-table access from a predicate and an ORDER BY.
pub fn plan_access(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    order_by: &[OrderKey],
    params: &[Value],
) -> Result<Plan> {
    plan_access_impl(table, binding, pred, order_by, params, true, false)
}

/// The planner core. `charge_sort` adds the sort penalty for
/// order-missing paths directly to the path cost — right for single-table
/// statements, wrong for join pipelines where the sort runs over the
/// *joined* rows (the query planner charges it at the pipeline level).
/// `count_mode` costs predicate-absorbing paths as probes only (a
/// count-star over such a path never touches the heap), so the planner
/// prefers a wider composite index that absorbs the whole predicate over
/// a thinner one that leaves a residual filter.
fn plan_access_impl(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    order_by: &[OrderKey],
    params: &[Value],
    charge_sort: bool,
    count_mode: bool,
) -> Result<Plan> {
    let cons = extract_constraints(pred, binding, table, params)?;
    let order = order_columns(order_by, binding, table);
    let has_order = !order_by.is_empty();
    let n = table.len() as f64;
    let rpp = table.schema().rows_per_page_hint as f64;

    // Near-equal costs are broken by path specificity (a wider matched
    // key bounds the result set more tightly even when today's data
    // makes the row estimates tie — e.g. every invitation still PENDING
    // makes (to_user_id) and (to_user_id, status) look equally
    // selective), then by the fixed candidate-generation order below, so
    // the choice never flip-flops between runs.
    const TIE_EPS: f64 = 1e-6;
    let mut best: Option<(Plan, f64)> = None;
    let mut consider =
        |path: AccessPath, rows: f64, probes: f64, satisfied: bool, rev: bool, tie_rank: f64| {
            let absorbing = count_mode
                && path_absorbs_predicate(table, binding, pred, &path, params).unwrap_or(false);
            let mut cost = if absorbing {
                // Count-only execution reads posting-block sizes; no
                // heap rows are ever materialized.
                scan_cost(0.0, probes, rpp)
            } else {
                scan_cost(rows, probes, rpp)
            };
            if charge_sort && has_order && !satisfied && !absorbing {
                cost += sort_cost(rows);
            }
            let cand = Plan {
                table: table.schema().name().to_owned(),
                path,
                estimated_rows: rows,
                estimated_cost: cost,
                order_satisfied: satisfied && has_order,
                reverse: rev && satisfied && has_order,
            };
            let replaces = match &best {
                None => true,
                Some((b, rank)) => {
                    cand.estimated_cost < b.estimated_cost - TIE_EPS
                        || ((cand.estimated_cost - b.estimated_cost).abs() <= TIE_EPS
                            && tie_rank > *rank)
                }
            };
            if replaces {
                best = Some((cand, tie_rank));
            }
        };

    let pk = table.schema().primary_key();

    // 1. Primary-key point lookup: at most one row, trivially ordered.
    if let Some(v) = cons.eq_value(pk) {
        consider(
            AccessPath::PkEq { key: v.clone() },
            1.0,
            1.0,
            true,
            false,
            100.0,
        );
    } else if let Some(keys) = cons.get(pk).and_then(|c| c.in_keys.clone()) {
        // 2. Multi-key primary-key lookup: `pk IN (...)`. Sorted keys
        // yield pk order.
        let k = keys.len() as f64;
        let (sat, rev) = order_match(&order, &cons, &[pk.to_owned()]);
        consider(AccessPath::PkOr { keys }, k, k, sat, rev, 90.0);
    } else if let Some(c) = cons.get(pk) {
        // 3. Primary-key range scan.
        let from = c.lower.clone().unwrap_or(Bound::Unbounded);
        let to = c.upper.clone().unwrap_or(Bound::Unbounded);
        if from.is_bounded() || to.is_bounded() {
            let rows = n * range_selectivity(table, pk, &from, &to);
            let (sat, rev) = order_match(&order, &cons, &[pk.to_owned()]);
            consider(AccessPath::PkRange { from, to }, rows, 1.0, sat, rev, 15.0);
        }
    }

    // 4. Secondary indexes: equality / prefix / range / IN-OR shapes.
    for idx in table.indexes() {
        let columns = &idx.def().columns;
        let width = columns.len() as f64;
        let distinct = idx.distinct_keys().max(1) as f64;
        // Selectivity of an equality prefix of `p` of `width` key
        // columns. Exact when an index covers exactly the prefix columns;
        // otherwise the per-column distinct-count statistics combine
        // under the independence assumption (capped by both the full-key
        // distinct count and the row count — a prefix can never have more
        // distinct keys than either). Only when a column has no
        // statistics at all does the old geometric interpolation
        // `distinct^(p/width)` remain as the last resort.
        let prefix_sel = |p: f64| {
            let cols = &columns[..p as usize];
            if let Some(other) = table
                .indexes()
                .iter()
                .find(|other| other.def().columns == cols)
            {
                return 1.0 / other.distinct_keys().max(1) as f64;
            }
            let mut product = 1.0f64;
            let mut usable = n > 0.0;
            for col in cols {
                match table.with_column_stats(col, ColumnStats::distinct) {
                    Some(d) if d >= 1.0 => product *= d,
                    _ => {
                        usable = false;
                        break;
                    }
                }
            }
            if usable {
                let est = product.min(distinct).min(n.max(1.0)).max(1.0);
                return 1.0 / est;
            }
            (1.0 / distinct).powf(p / width)
        };

        let mut eq_prefix = Vec::new();
        for col in columns {
            match cons.eq_value(col) {
                Some(v) => eq_prefix.push(v.clone()),
                None => break,
            }
        }
        let p = eq_prefix.len();

        if p == columns.len() {
            let rows = (n * prefix_sel(width)).max(1.0);
            // A unique full-key match yields at most one row, which is
            // trivially ordered.
            let (sat, _) = if idx.def().unique {
                (true, false)
            } else {
                order_match(&order, &cons, &[])
            };
            consider(
                AccessPath::IndexEq {
                    index: idx.def().name.clone(),
                    key: eq_prefix,
                },
                rows,
                1.0,
                sat,
                false,
                width * 10.0,
            );
            continue;
        }

        let remaining = &columns[p..];
        let next_col = &remaining[0];

        // Equality prefix plus IN (...) on the next key column: a
        // multi-range scan probing each (prefix, key) combination
        // (previously the plan degraded to the equality prefix alone).
        if p > 0 {
            if let Some(keys) = cons.get(next_col).and_then(|c| c.in_keys.clone()) {
                if keys.is_empty() {
                    // Every IN item was NULL: nothing can match.
                    consider(
                        AccessPath::IndexInList {
                            index: idx.def().name.clone(),
                            eq_prefix: eq_prefix.clone(),
                            keys,
                        },
                        0.0,
                        0.0,
                        true,
                        false,
                        200.0,
                    );
                    continue;
                }
                let k = keys.len() as f64;
                // Containment bound: the multi-range scan reads a subset
                // of the bare equality-prefix block.
                let rows = (k * n * prefix_sel(p as f64 + 1.0))
                    .min(n * prefix_sel(p as f64))
                    .min(n)
                    .max(1.0);
                // Sorted keys scanned in order yield (prefix, in-col,
                // trailing...) lexicographic order, so order_match treats
                // the IN column like the leading remaining key column.
                let (sat, rev) = order_match(&order, &cons, remaining);
                consider(
                    AccessPath::IndexInList {
                        index: idx.def().name.clone(),
                        eq_prefix: eq_prefix.clone(),
                        keys,
                    },
                    rows,
                    k,
                    sat,
                    rev,
                    p as f64 * 10.0 + 6.0,
                );
                // Fall through: a huge IN list costs one probe per key,
                // so the single-probe range/prefix scans of the same
                // index must stay in the running and win on cost.
            }
        }

        let range = cons.get(next_col).and_then(|c| {
            let from = c.lower.clone().unwrap_or(Bound::Unbounded);
            let to = c.upper.clone().unwrap_or(Bound::Unbounded);
            (from.is_bounded() || to.is_bounded()).then_some((from, to))
        });

        if let Some((from, to)) = range {
            // Equality prefix plus a range on the next key column.
            let rows = (n * prefix_sel(p as f64) * range_selectivity(table, next_col, &from, &to))
                .max(1.0);
            let (sat, rev) = order_match(&order, &cons, remaining);
            consider(
                AccessPath::IndexRange {
                    index: idx.def().name.clone(),
                    eq_prefix: eq_prefix.clone(),
                    from,
                    to,
                },
                rows,
                1.0,
                sat,
                rev,
                p as f64 * 10.0 + 5.0,
            );
            continue;
        }

        if p > 0 {
            let rows = (n * prefix_sel(p as f64)).max(1.0);
            let (sat, rev) = order_match(&order, &cons, remaining);
            consider(
                AccessPath::IndexPrefixRange {
                    index: idx.def().name.clone(),
                    prefix: eq_prefix,
                },
                rows,
                1.0,
                sat,
                rev,
                p as f64 * 10.0,
            );
            continue;
        }

        // IN (...) / OR-equality chain on the first key column.
        if let Some(keys) = cons.get(&columns[0]).and_then(|c| c.in_keys.clone()) {
            if !keys.is_empty() {
                let k = keys.len() as f64;
                let rows = (k * n * prefix_sel(1.0)).min(n).max(1.0);
                // Sorted distinct keys yield key order; order_match's
                // full-coverage rule keeps the claim to single-column
                // indexes (a wider index would order same-first-column
                // ties by its trailing columns).
                let (sat, rev) = order_match(&order, &cons, columns);
                consider(
                    AccessPath::IndexOr {
                        index: idx.def().name.clone(),
                        keys,
                    },
                    rows,
                    k,
                    sat,
                    rev,
                    5.0,
                );
                continue;
            } else {
                // Every IN item was NULL: nothing can match; an empty
                // multi-key lookup reads zero rows.
                consider(
                    AccessPath::IndexOr {
                        index: idx.def().name.clone(),
                        keys,
                    },
                    0.0,
                    0.0,
                    true,
                    false,
                    200.0,
                );
                continue;
            }
        }

        // No usable predicate — but a full ordered index scan can still
        // beat scan+sort when it satisfies the ORDER BY.
        let (sat, rev) = order_match(&order, &cons, columns);
        if sat && has_order {
            consider(
                AccessPath::IndexRange {
                    index: idx.def().name.clone(),
                    eq_prefix: Vec::new(),
                    from: Bound::Unbounded,
                    to: Bound::Unbounded,
                },
                n,
                1.0,
                true,
                rev,
                1.0,
            );
        }
    }

    // 5. Fallback: full scan. Charged one probe-equivalent of setup so
    // that an index path with the same row estimate always beats it (an
    // index bounds the result set even if the table grows; and the FK
    // probes the benchmark cost model prices must stay index probes).
    // Only constraint-free trivial orders are satisfied — heap order is
    // insertion order, not pk order, so ORDER BY pk still sorts.
    let (sat, _) = if cons.has_any() {
        order_match(&order, &cons, &[])
    } else {
        (false, false)
    };
    consider(AccessPath::TableScan, n, 1.0, sat, false, 0.0);

    Ok(best
        .map(|(plan, _)| plan)
        .expect("TableScan is always a candidate"))
}

/// Executes a plan's access path against the read `snap`shot, returning
/// candidate row ids in path order (`None` means full heap scan — the
/// executor drives it via [`Table::scan_rids`]). Charges probes to
/// `cost`. Every id returned resolves to a version visible at the
/// snapshot that actually carries the probed key.
pub(crate) fn execute_path(
    table: &Table,
    plan: &Plan,
    cost: &mut CostReport,
    snap: &crate::table::Snapshot,
) -> Option<Vec<crate::row::RowId>> {
    match &plan.path {
        AccessPath::TableScan => None,
        AccessPath::PkEq { key } => {
            cost.index_probes += 1;
            Some(table.find_pk_visible(key, snap).into_iter().collect())
        }
        AccessPath::PkOr { keys } => {
            cost.index_probes += keys.len() as u64;
            let mut rids: Vec<crate::row::RowId> = keys
                .iter()
                .filter_map(|k| table.find_pk_visible(k, snap))
                .collect();
            if plan.reverse {
                rids.reverse();
            }
            Some(rids)
        }
        AccessPath::PkRange { from, to } => {
            cost.index_probes += 1;
            Some(table.pk_range_scan_visible(from, to, plan.reverse, snap))
        }
        AccessPath::IndexEq { index, key } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_lookup_visible(idx, key, snap))
        }
        AccessPath::IndexRange {
            index,
            eq_prefix,
            from,
            to,
        } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_range_scan_visible(idx, eq_prefix, from, to, plan.reverse, snap))
        }
        AccessPath::IndexPrefixRange { index, prefix } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_prefix_scan_visible(idx, prefix, plan.reverse, snap))
        }
        AccessPath::IndexOr { index, keys } => {
            cost.index_probes += keys.len() as u64;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_multi_lookup_visible(idx, keys, plan.reverse, snap))
        }
        AccessPath::IndexInList {
            index,
            eq_prefix,
            keys,
        } => {
            cost.index_probes += keys.len() as u64;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_in_scan_visible(idx, eq_prefix, keys, plan.reverse, snap))
        }
    }
}

// ---------------------------------------------------------------------
// Whole-query planning
// ---------------------------------------------------------------------

/// How one join step probes its table, once per left row.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinMethod {
    /// Evaluate `outer` on the left row and look up the primary key.
    PkProbe {
        /// Unbound expression over the already-joined tables.
        outer: Expr,
    },
    /// Evaluate `outers` (in index key-column order) on the left row and
    /// look up the index key exactly.
    IndexProbe {
        /// Index name on the probe table.
        index: String,
        /// Unbound key expressions, one per index column.
        outers: Vec<Expr>,
    },
    /// No usable key: visit every row of the table per left row.
    NestedScan,
}

impl JoinMethod {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            JoinMethod::PkProbe { .. } => "PkProbe",
            JoinMethod::IndexProbe { .. } => "IndexProbe",
            JoinMethod::NestedScan => "NestedScan",
        }
    }
}

/// One step of the join pipeline, in chosen execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Catalog name of the table this step joins.
    pub table: String,
    /// Binding name columns qualify against.
    pub binding: String,
    /// Join flavour (LEFT joins are never reordered).
    pub kind: JoinKind,
    /// ON expressions applied (residually) once this step's table is in
    /// the row — under reordering an ON clause runs at the earliest step
    /// where every table it references is available.
    pub on: Vec<Expr>,
    /// Probe strategy.
    pub method: JoinMethod,
    /// True when the probe can match at most one row per left row
    /// (primary-key or unique-index full-key probe) — the condition under
    /// which ORDER BY satisfaction survives the join.
    pub single_row: bool,
    /// Estimated matching rows per left row.
    pub fanout: f64,
}

impl fmt::Display for JoinPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.method {
            JoinMethod::PkProbe { .. } => write!(f, "PkProbe({})", self.table),
            JoinMethod::IndexProbe { index, .. } => {
                write!(f, "IndexProbe({} via {index})", self.table)
            }
            JoinMethod::NestedScan => write!(f, "NestedScan({})", self.table),
        }
    }
}

/// The planner's decision for a whole SELECT: a driving-table access
/// path, join steps in execution order, order/limit handling.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Access plan for the driving table.
    pub base: Plan,
    /// Binding name of the driving table (differs from `base.table` for
    /// aliased FROMs, and names a *joined* table when the join order was
    /// rotated).
    pub base_binding: String,
    /// Join steps in execution order (empty for single-table statements).
    pub joins: Vec<JoinPlan>,
    /// True when the pipeline yields rows in the statement's ORDER BY
    /// order (ordered base scan surviving single-row joins), so the
    /// executor skips its sort.
    pub order_satisfied: bool,
    /// When set, the executor may stop after producing this many output
    /// rows (`LIMIT + OFFSET`): the row stream is already in final order.
    pub fetch_limit: Option<u64>,
    /// True when the statement is a single-table `SELECT COUNT(*)` whose
    /// WHERE clause is exactly absorbed by the access path's key — the
    /// executor answers from the primary-key map / index posting lists
    /// without touching the heap (aggregate pushdown).
    pub count_only: bool,
    /// Estimated output rows before the final WHERE residue.
    pub estimated_rows: f64,
    /// Estimated physical cost in row-visit units, including join probes
    /// and any final sort.
    pub estimated_cost: f64,
}

impl QueryPlan {
    /// EXPLAIN text, one line per pipeline stage.
    pub fn lines(&self) -> Vec<String> {
        let mut out = vec![format!("{}", self.base)];
        for j in &self.joins {
            out.push(format!("  -> {j} fanout~{:.2}", j.fanout));
        }
        let mut tail = format!(
            "  rows~{:.1} cost~{:.1}",
            self.estimated_rows, self.estimated_cost
        );
        if self.order_satisfied {
            tail.push_str(" ordered");
        }
        if let Some(k) = self.fetch_limit {
            tail.push_str(&format!(" fetch_limit={k}"));
        }
        if self.count_only {
            tail.push_str(" count_only");
        }
        out.push(tail);
        out
    }

    /// A compact, estimate-free description of the plan's structure —
    /// stable across data-size changes, for regression baselines.
    pub fn shape(&self) -> String {
        let mut s = match self.base.path.index_name() {
            Some(idx) => format!("{}({} via {idx})", self.base.path.kind(), self.base.table),
            None => format!("{}({})", self.base.path.kind(), self.base.table),
        };
        if self.base.reverse {
            s.push_str("[rev]");
        }
        for j in &self.joins {
            s.push_str(" -> ");
            s.push_str(&j.to_string());
        }
        if self.order_satisfied {
            s.push_str(" ordered");
        }
        if self.fetch_limit.is_some() {
            s.push_str(" limited");
        }
        if self.count_only {
            s.push_str(" count-only");
        }
        s
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for j in &self.joins {
            write!(f, " -> {j}")?;
        }
        if self.order_satisfied && !self.joins.is_empty() {
            f.write_str(" ordered")?;
        }
        if let Some(k) = self.fetch_limit {
            write!(f, " fetch_limit={k}")?;
        }
        if self.count_only {
            f.write_str(" count_only")?;
        }
        Ok(())
    }
}

/// One FROM/JOIN table in syntactic position.
struct Slot<'a> {
    binding: String,
    table_name: String,
    table: &'a Table,
}

/// LIMIT pushdown: legal when the pipeline's output order is already
/// final — either the statement has no ORDER BY (heap-order rows are the
/// contract) or the plan satisfies it — and no aggregate consumes the
/// full input.
fn fetch_limit_for(sel: &Select, order_satisfied: bool) -> Option<u64> {
    if sel.is_aggregate() || !sel.group_by.is_empty() {
        return None;
    }
    let limit = sel.limit?;
    if sel.order_by.is_empty() || order_satisfied {
        Some(limit.saturating_add(sel.offset.unwrap_or(0)))
    } else {
        None
    }
}

/// All permutations of `0..n` in lexicographic order (identity first, so
/// cost ties resolve toward the syntactic order). `n` is at most 4.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

/// True when every column `e` references resolves within `slots`
/// (qualified to one of them, or unqualified and present in one of their
/// schemas — mirroring the executor's first-match rule).
fn resolvable_in(e: &Expr, slots: &[&Slot<'_>]) -> bool {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    cols.iter().all(|c| match &c.table {
        Some(t) => slots.iter().any(|s| &s.binding == t),
        None => slots
            .iter()
            .any(|s| s.table.schema().column_pos(&c.column).is_some()),
    })
}

/// Plans a whole SELECT against the statement's latched table set. The
/// entry point behind [`crate::Database::explain`] and the executor.
pub(crate) fn plan_query(
    tables: &TableSet<'_>,
    sel: &Select,
    params: &[Value],
) -> Result<QueryPlan> {
    let base_table = tables.table(&sel.from.table)?;
    let base_binding = sel.from.binding_name().to_owned();

    // Single-table fast path: the PR-1 planner plus LIMIT pushdown.
    if sel.joins.is_empty() {
        let order_eligible = !sel.is_aggregate() && sel.group_by.is_empty();
        let order: &[OrderKey] = if order_eligible { &sel.order_by } else { &[] };
        let base = plan_access_impl(
            base_table,
            &base_binding,
            sel.predicate.as_ref(),
            order,
            params,
            true,
            is_count_star_shape(sel),
        )?;
        let order_satisfied = base.order_satisfied;
        let fetch_limit = fetch_limit_for(sel, order_satisfied);
        let count_only = count_pushdown_eligible(sel, base_table, &base_binding, &base, params)?;
        let (mut estimated_rows, mut estimated_cost) = (base.estimated_rows, base.estimated_cost);
        if count_only {
            // One posting-list length read; no heap rows are visited.
            estimated_rows = 1.0;
            estimated_cost = PROBE_COST;
        }
        return Ok(QueryPlan {
            base,
            base_binding,
            joins: Vec::new(),
            order_satisfied,
            fetch_limit,
            count_only,
            estimated_rows,
            estimated_cost,
        });
    }

    // Slot table in syntactic order: slot 0 = FROM, slot i+1 = joins[i].
    let mut slots: Vec<Slot<'_>> = vec![Slot {
        binding: base_binding,
        table_name: sel.from.table.clone(),
        table: base_table,
    }];
    for j in &sel.joins {
        slots.push(Slot {
            binding: j.table.binding_name().to_owned(),
            table_name: j.table.table.clone(),
            table: tables.table(&j.table.table)?,
        });
    }
    let n = slots.len();

    // Which slots each ON condition references (when every column ref is
    // qualified to a known binding — the precondition for reordering).
    let mut on_refs: Vec<Vec<usize>> = Vec::with_capacity(sel.joins.len());
    let mut on_fully_qualified = true;
    for j in &sel.joins {
        let mut cols = Vec::new();
        j.on.referenced_columns(&mut cols);
        let mut refs = BTreeSet::new();
        for c in &cols {
            match &c.table {
                Some(t) => match slots.iter().position(|s| &s.binding == t) {
                    Some(i) => {
                        refs.insert(i);
                    }
                    None => on_fully_qualified = false,
                },
                None => on_fully_qualified = false,
            }
        }
        on_refs.push(refs.into_iter().collect());
    }

    let bindings_unique = {
        let set: BTreeSet<&str> = slots.iter().map(|s| s.binding.as_str()).collect();
        set.len() == n
    };
    let all_inner = sel.joins.iter().all(|j| j.kind == JoinKind::Inner);
    // Reordering needs: inner joins only (LEFT is order-sensitive),
    // qualified ON references (unqualified first-match resolution depends
    // on layout order), unique bindings (for the output-column remap),
    // and a small enough chain to enumerate exhaustively. The WHERE
    // clause must be fully qualified too: an unqualified column present
    // in several tables resolves to the *syntactic first match* at
    // execution time, so attributing it to a rotated driving table or
    // folding it into a probe key would constrain the wrong table.
    let where_fully_qualified = match &sel.predicate {
        None => true,
        Some(p) => {
            let mut cols = Vec::new();
            p.referenced_columns(&mut cols);
            cols.iter().all(|c| match &c.table {
                Some(t) => slots.iter().any(|s| &s.binding == t),
                None => false,
            })
        }
    };
    let reorderable = all_inner
        && on_fully_qualified
        && where_fully_qualified
        && bindings_unique
        && sel.joins.len() <= 3;

    // ORDER BY keys usable by an ordered scan: plain columns, all
    // attributable (syntactic first match, like the executor's binder) to
    // one slot. Requalified so the access planner sees them regardless of
    // which slot ends up driving.
    let order_eligible = !sel.is_aggregate() && sel.group_by.is_empty() && !sel.order_by.is_empty();
    let order_slot: Option<(usize, Vec<OrderKey>)> = if order_eligible {
        attribute_order(&sel.order_by, &slots)
    } else {
        None
    };

    let orders = if reorderable {
        permutations(n)
    } else {
        vec![(0..n).collect()]
    };

    const TIE_EPS: f64 = 1e-6;
    let mut best: Option<QueryPlan> = None;
    for ord in &orders {
        let cand = plan_one_order(sel, params, &slots, &on_refs, ord, &order_slot, reorderable)?;
        let replaces = match &best {
            None => true,
            Some(b) => cand.estimated_cost < b.estimated_cost - TIE_EPS,
        };
        if replaces {
            best = Some(cand);
        }
    }
    Ok(best.expect("at least the syntactic order was planned"))
}

/// What a path guarantees about one column of every row it yields: a
/// single value, membership in a sorted key set, or a range.
enum ColSpec<'a> {
    EqV(&'a Value),
    Set(&'a [Value]),
    Range(&'a Bound, &'a Bound),
}

impl ColSpec<'_> {
    /// Do all values this spec admits satisfy `x op v`?
    fn implies_cmp(&self, op: CmpOp, v: &Value) -> bool {
        let one = |k: &Value| op.holds(k.cmp(v));
        match self {
            ColSpec::EqV(k) => one(k),
            ColSpec::Set(keys) => keys.iter().all(one),
            ColSpec::Range(from, to) => match op {
                // A lower endpoint proves `> v` when it is itself above v
                // (or at v but excluded); dually for upper endpoints.
                CmpOp::Gt => match from {
                    Bound::Included(a) => a > v,
                    Bound::Excluded(a) => a >= v,
                    Bound::Unbounded => false,
                },
                CmpOp::Ge => match from {
                    Bound::Included(a) | Bound::Excluded(a) => a >= v,
                    Bound::Unbounded => false,
                },
                CmpOp::Lt => match to {
                    Bound::Included(b) => b < v,
                    Bound::Excluded(b) => b <= v,
                    Bound::Unbounded => false,
                },
                CmpOp::Le => match to {
                    Bound::Included(b) | Bound::Excluded(b) => b <= v,
                    Bound::Unbounded => false,
                },
                CmpOp::Eq | CmpOp::Ne => false,
            },
        }
    }

    /// Do all values this spec admits lie inside `values`?
    fn implies_in(&self, values: &BTreeSet<Value>) -> bool {
        match self {
            ColSpec::EqV(k) => values.contains(k),
            ColSpec::Set(keys) => keys.iter().all(|k| values.contains(k)),
            ColSpec::Range(..) => false,
        }
    }
}

/// Is this the `SELECT COUNT(*)` shape count pushdown may serve: single
/// table, ungrouped, unordered (the executor rejects ORDER BY for
/// aggregates, and the fast path must not make that malformed shape
/// silently succeed)?
fn is_count_star_shape(sel: &Select) -> bool {
    if !sel.joins.is_empty() || !sel.group_by.is_empty() || !sel.order_by.is_empty() {
        return false;
    }
    matches!(
        &sel.projection[..],
        [SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: None,
            ..
        }]
    )
}

/// Decides `COUNT(*)` pushdown: a count-star shape whose every WHERE
/// conjunct is *implied by* the chosen access path — equalities folded
/// into exact keys, range comparisons subsumed by the path's bounds,
/// IN-lists covering the path's key set. Such a path yields exactly the
/// matching rows, so the count is the sum of posting-block sizes (or the
/// table's row count with no predicate at all) — no heap access needed.
fn count_pushdown_eligible(
    sel: &Select,
    table: &Table,
    binding: &str,
    plan: &Plan,
    params: &[Value],
) -> Result<bool> {
    if !is_count_star_shape(sel) {
        return Ok(false);
    }
    path_absorbs_predicate(table, binding, sel.predicate.as_ref(), &plan.path, params)
}

/// Does `path` yield exactly the rows matching the predicate (every
/// conjunct implied by the path's per-column guarantees)? This powers
/// both the count-pushdown decision and count-aware access costing.
fn path_absorbs_predicate(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    path: &AccessPath,
    params: &[Value],
) -> Result<bool> {
    // Per-column guarantees the path provides.
    let pk = table.schema().primary_key().to_owned();
    let index_cols = |name: &str| -> Vec<String> {
        table
            .index_by_name(name)
            .expect("planned index exists")
            .def()
            .columns
            .clone()
    };
    let specs: Vec<(String, ColSpec<'_>)> = match path {
        AccessPath::TableScan => {
            return Ok(pred.is_none());
        }
        AccessPath::PkEq { key } => vec![(pk, ColSpec::EqV(key))],
        AccessPath::PkOr { keys } => vec![(pk, ColSpec::Set(keys))],
        AccessPath::PkRange { from, to } => vec![(pk, ColSpec::Range(from, to))],
        AccessPath::IndexEq { index, key } => index_cols(index)
            .into_iter()
            .zip(key.iter().map(ColSpec::EqV))
            .collect(),
        AccessPath::IndexPrefixRange { index, prefix } => index_cols(index)
            .into_iter()
            .zip(prefix.iter().map(ColSpec::EqV))
            .collect(),
        AccessPath::IndexRange {
            index,
            eq_prefix,
            from,
            to,
        } => {
            let cols = index_cols(index);
            let mut specs: Vec<(String, ColSpec<'_>)> = cols
                .iter()
                .cloned()
                .zip(eq_prefix.iter().map(ColSpec::EqV))
                .collect();
            specs.push((cols[eq_prefix.len()].clone(), ColSpec::Range(from, to)));
            specs
        }
        AccessPath::IndexOr { index, keys } => {
            vec![(index_cols(index)[0].clone(), ColSpec::Set(keys))]
        }
        AccessPath::IndexInList {
            index,
            eq_prefix,
            keys,
        } => {
            let cols = index_cols(index);
            let mut specs: Vec<(String, ColSpec<'_>)> = cols
                .iter()
                .cloned()
                .zip(eq_prefix.iter().map(ColSpec::EqV))
                .collect();
            specs.push((cols[eq_prefix.len()].clone(), ColSpec::Set(keys)));
            specs
        }
    };
    for (col, spec) in &specs {
        match spec {
            // SQL equality never matches NULL; leave it to the executor.
            ColSpec::EqV(v) if v.is_null() => return Ok(false),
            // A range with no lower endpoint sweeps up NULL keys (they
            // sort below every value) on a nullable column, but SQL
            // comparisons never match NULL — the executor's residual
            // filter must stay in charge.
            ColSpec::Range(Bound::Unbounded, _) => {
                let nullable = table.schema().column(col).is_none_or(|c| !c.not_null);
                if nullable {
                    return Ok(false);
                }
            }
            _ => {}
        }
    }
    let Some(pred) = pred else {
        // A keyed path with no predicate cannot arise, but be safe.
        return Ok(false);
    };
    // Every conjunct must be implied by the path's guarantees.
    for conjunct in pred.conjuncts() {
        let spec_for = |cref: &crate::expr::ColumnRef| {
            if binds_to(cref, binding, table) {
                specs
                    .iter()
                    .find(|(c, _)| *c == cref.column)
                    .map(|(_, s)| s)
            } else {
                None
            }
        };
        if let Some((cref, vexpr)) = conjunct.as_column_eq() {
            let Some(spec) = spec_for(cref) else {
                return Ok(false);
            };
            let v = eval_const(vexpr, params)?;
            match coerce_for_column(table, &cref.column, &v) {
                Some(cv) if spec.implies_cmp(CmpOp::Eq, &cv) => continue,
                _ => return Ok(false),
            }
        }
        if let Some((cref, op, vexpr)) = conjunct.as_column_cmp() {
            if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                let Some(spec) = spec_for(cref) else {
                    return Ok(false);
                };
                let v = eval_const(vexpr, params)?;
                match coerce_for_column(table, &cref.column, &v) {
                    Some(cv) if spec.implies_cmp(op, &cv) => continue,
                    _ => return Ok(false),
                }
            }
            return Ok(false);
        }
        let in_pair = conjunct.as_column_in().map(|(c, l)| (c, l.to_vec()));
        let or_pair = || {
            conjunct
                .as_or_column_eqs()
                .map(|(c, l)| (c, l.into_iter().cloned().collect::<Vec<_>>()))
        };
        if let Some((cref, items)) = in_pair.or_else(or_pair) {
            let Some(spec) = spec_for(cref) else {
                return Ok(false);
            };
            let mut values = BTreeSet::new();
            for item in &items {
                let v = eval_const(item, params)?;
                if v.is_null() {
                    continue; // a NULL arm never matches anything
                }
                match coerce_for_column(table, &cref.column, &v) {
                    Some(cv) => {
                        values.insert(cv);
                    }
                    None => return Ok(false),
                }
            }
            if spec.implies_in(&values) {
                continue;
            }
            return Ok(false);
        }
        return Ok(false);
    }
    Ok(true)
}

/// Rewrites ORDER BY keys as columns qualified to the single slot they
/// all attribute to (executor first-match rule); `None` when the keys are
/// not plain columns or span slots.
fn attribute_order(order_by: &[OrderKey], slots: &[Slot<'_>]) -> Option<(usize, Vec<OrderKey>)> {
    let mut slot_idx: Option<usize> = None;
    let mut rewritten = Vec::with_capacity(order_by.len());
    for key in order_by {
        let Expr::Column(c) = &key.expr else {
            return None;
        };
        let attributed = match &c.table {
            Some(t) => slots.iter().position(|s| &s.binding == t)?,
            None => slots
                .iter()
                .position(|s| s.table.schema().column_pos(&c.column).is_some())?,
        };
        match slot_idx {
            None => slot_idx = Some(attributed),
            Some(prev) if prev == attributed => {}
            Some(_) => return None,
        }
        rewritten.push(OrderKey {
            expr: Expr::qcol(&slots[attributed].binding, &c.column),
            desc: key.desc,
        });
    }
    slot_idx.map(|i| (i, rewritten))
}

/// Costs one left-deep join order and builds its `QueryPlan`.
fn plan_one_order(
    sel: &Select,
    params: &[Value],
    slots: &[Slot<'_>],
    on_refs: &[Vec<usize>],
    ord: &[usize],
    order_slot: &Option<(usize, Vec<OrderKey>)>,
    reorderable: bool,
) -> Result<QueryPlan> {
    let driving = &slots[ord[0]];
    let base_order: Vec<OrderKey> = match order_slot {
        Some((slot, keys)) if *slot == ord[0] => keys.clone(),
        _ => Vec::new(),
    };
    let base = plan_access_impl(
        driving.table,
        &driving.binding,
        sel.predicate.as_ref(),
        &base_order,
        params,
        false,
        false,
    )?;

    let order_eligible = !sel.is_aggregate() && sel.group_by.is_empty() && !sel.order_by.is_empty();
    let mut rows = base.estimated_rows;
    let mut cost = base.estimated_cost;
    let mut all_single = true;
    let mut joins = Vec::with_capacity(ord.len() - 1);
    let mut assigned = vec![false; sel.joins.len()];

    for step in 1..ord.len() {
        let slot = &slots[ord[step]];
        let prefix: Vec<&Slot<'_>> = ord[..step].iter().map(|&i| &slots[i]).collect();

        // ON conditions that become fully bound at this step.
        let mut ons: Vec<Expr> = Vec::new();
        for (ji, refs) in on_refs.iter().enumerate() {
            if assigned[ji] {
                continue;
            }
            let applicable = if reorderable {
                refs.iter().all(|r| ord[..=step].contains(r))
            } else {
                // Syntactic order: each join's ON runs at its own step.
                ji + 1 == ord[step]
            };
            if applicable {
                assigned[ji] = true;
                ons.push(sel.joins[ji].on.clone());
            }
        }
        let kind = if reorderable {
            JoinKind::Inner
        } else {
            sel.joins[ord[step] - 1].kind
        };

        // Equi-key extraction: `slot.col = expr(prefix)` conjuncts.
        let mut key_cols: Vec<(String, Expr)> = Vec::new();
        for on in &ons {
            for conjunct in on.conjuncts() {
                let Expr::Cmp(a, CmpOp::Eq, b) = conjunct else {
                    continue;
                };
                for (side_t, side_o) in [(a, b), (b, a)] {
                    let Expr::Column(c) = side_t.as_ref() else {
                        continue;
                    };
                    // The executor's binder resolves an unqualified
                    // column to the *first* layout entry carrying it, so
                    // it only names this step's table when no earlier
                    // table in the pipeline has the column — probing on a
                    // misattributed key would drop matching rows.
                    let t_ok = match &c.table {
                        Some(t) => t == &slot.binding,
                        None => prefix
                            .iter()
                            .all(|s| s.table.schema().column_pos(&c.column).is_none()),
                    };
                    if t_ok
                        && slot.table.schema().column_pos(&c.column).is_some()
                        && resolvable_in(side_o, &prefix)
                    {
                        if !key_cols.iter().any(|(kc, _)| kc == &c.column) {
                            key_cols.push((c.column.clone(), (**side_o).clone()));
                        }
                        break;
                    }
                }
            }
        }
        // Inner joins under reordering also fold the WHERE clause's
        // equality constraints on this table into the probe key: every
        // surviving row satisfies them, so a tighter probe loses nothing.
        if reorderable {
            let cons =
                extract_constraints(sel.predicate.as_ref(), &slot.binding, slot.table, params)?;
            for (col, c) in &cons.cols {
                if let Some(v) = &c.eq {
                    if !key_cols.iter().any(|(kc, _)| kc == col) {
                        key_cols.push((col.clone(), Expr::Literal(v.clone())));
                    }
                }
            }
        }

        let t_rows = slot.table.len() as f64;
        let rpp = slot.table.schema().rows_per_page_hint as f64;
        let pk = slot.table.schema().primary_key();
        let (method, single_row, fanout, per_left_cost) =
            if let Some((_, outer)) = key_cols.iter().find(|(c, _)| c == pk) {
                (
                    JoinMethod::PkProbe {
                        outer: outer.clone(),
                    },
                    true,
                    1.0,
                    PROBE_COST + ROW_COST + PAGE_COST / rpp.max(1.0),
                )
            } else {
                let cols: Vec<&str> = key_cols.iter().map(|(c, _)| c.as_str()).collect();
                match slot.table.best_index_for(&cols) {
                    Some(idx) => {
                        let outers: Vec<Expr> = idx
                            .def()
                            .columns
                            .iter()
                            .map(|c| {
                                key_cols
                                    .iter()
                                    .find(|(kc, _)| kc == c)
                                    .expect("index columns are a subset of the key columns")
                                    .1
                                    .clone()
                            })
                            .collect();
                        let single = idx.def().unique;
                        let fanout = if single {
                            1.0
                        } else {
                            t_rows / idx.distinct_keys().max(1) as f64
                        };
                        let per_left = PROBE_COST + fanout * (ROW_COST + PAGE_COST / rpp.max(1.0));
                        (
                            JoinMethod::IndexProbe {
                                index: idx.def().name.clone(),
                                outers,
                            },
                            single,
                            fanout,
                            per_left,
                        )
                    }
                    None => {
                        // Equi-conjuncts still shrink the match set even when
                        // no index serves them — estimate via distinct counts.
                        let mut sel_est = 1.0f64;
                        for (col, _) in &key_cols {
                            if let Some(Some(s)) = slot
                                .table
                                .with_column_stats(col, ColumnStats::eq_selectivity)
                            {
                                sel_est *= s;
                            }
                        }
                        let fanout = (t_rows * sel_est).min(t_rows);
                        let per_left = t_rows * (ROW_COST + PAGE_COST / rpp.max(1.0));
                        (JoinMethod::NestedScan, false, fanout, per_left)
                    }
                }
            };

        cost += rows.max(0.0) * per_left_cost;
        let out_rows = if kind == JoinKind::Left {
            rows * fanout.max(1.0)
        } else {
            rows * fanout
        };
        rows = out_rows.max(0.0);
        all_single &= single_row;
        joins.push(JoinPlan {
            table: slot.table_name.clone(),
            binding: slot.binding.clone(),
            kind,
            on: ons,
            method,
            single_row,
            fanout,
        });
    }

    let order_satisfied = order_eligible && base.order_satisfied && all_single;
    if order_eligible && !order_satisfied {
        cost += sort_cost(rows);
    }
    let fetch_limit = fetch_limit_for(sel, order_satisfied);
    if let Some(k) = fetch_limit {
        // An early-terminating pipeline reads roughly k/rows of its input.
        let k = k as f64;
        if rows > k && rows > 0.0 {
            cost *= (k / rows).max(1e-3);
        }
    }

    Ok(QueryPlan {
        base,
        base_binding: driving.binding.clone(),
        joins,
        order_satisfied,
        fetch_limit,
        count_only: false,
        estimated_rows: rows,
        estimated_cost: cost,
    })
}
