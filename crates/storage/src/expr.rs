//! Scalar expression AST: predicates, arithmetic, and parameters.
//!
//! Expressions appear in `WHERE` clauses, `UPDATE ... SET` lists, and join
//! conditions. They are built unbound (columns referenced by name), then
//! [bound](Expr::bind) against the statement's column layout before
//! execution, which replaces names with positions so evaluation is a pure
//! function of the row and the parameter vector.
//!
//! Parameters (`Expr::Param`) are the backbone of CacheGenie's *query
//! templates*: a cached object compiles its query once with `$n` holes, and
//! each cache key instantiates the template with concrete values.

use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A possibly table-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Qualifying table (or alias); `None` means unqualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A table-qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    pub(crate) fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant value.
    Literal(Value),
    /// An unbound column reference (pre-binding only).
    Column(ColumnRef),
    /// A bound column: position in the executor's combined row.
    BoundColumn(usize),
    /// A statement parameter, 0-based (`$1` binds position 0).
    Param(usize),
    /// Binary comparison with SQL three-valued semantics.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL` (negate = `IS NOT NULL`); always two-valued.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr IN (e1, e2, ...)`.
    InList { expr: Box<Expr>, list: Vec<Expr> },
    /// `expr LIKE 'pat%'` with `%` and `_` wildcards.
    Like { expr: Box<Expr>, pattern: String },
    /// Binary arithmetic over numerics.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
}

impl Expr {
    /// Literal convenience constructor.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Unqualified column convenience constructor.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Qualified column convenience constructor.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Binds column references to positions using `resolve`, returning a
    /// copy in which every `Column` became a `BoundColumn`.
    ///
    /// # Errors
    ///
    /// Propagates whatever error `resolve` reports for an unknown column.
    pub fn bind(&self, resolve: &dyn Fn(&ColumnRef) -> Result<usize>) -> Result<Expr> {
        Ok(match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Column(c) => Expr::BoundColumn(resolve(c)?),
            Expr::BoundColumn(i) => Expr::BoundColumn(*i),
            Expr::Param(i) => Expr::Param(*i),
            Expr::Cmp(a, op, b) => {
                Expr::Cmp(Box::new(a.bind(resolve)?), *op, Box::new(b.bind(resolve)?))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.bind(resolve)?), Box::new(b.bind(resolve)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(a.bind(resolve)?), Box::new(b.bind(resolve)?)),
            Expr::Not(a) => Expr::Not(Box::new(a.bind(resolve)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind(resolve)?),
                negated: *negated,
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.bind(resolve)?),
                list: list
                    .iter()
                    .map(|e| e.bind(resolve))
                    .collect::<Result<_>>()?,
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.bind(resolve)?),
                pattern: pattern.clone(),
            },
            Expr::Arith(a, op, b) => {
                Expr::Arith(Box::new(a.bind(resolve)?), *op, Box::new(b.bind(resolve)?))
            }
        })
    }

    /// Substitutes parameters with literal values, producing a closed
    /// expression (used when instantiating query templates for cache keys).
    pub fn substitute_params(&self, params: &[Value]) -> Expr {
        match self {
            Expr::Param(i) => match params.get(*i) {
                Some(v) => Expr::Literal(v.clone()),
                None => Expr::Param(*i),
            },
            Expr::Literal(_) | Expr::Column(_) | Expr::BoundColumn(_) => self.clone(),
            Expr::Cmp(a, op, b) => Expr::Cmp(
                Box::new(a.substitute_params(params)),
                *op,
                Box::new(b.substitute_params(params)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.substitute_params(params)),
                Box::new(b.substitute_params(params)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.substitute_params(params)),
                Box::new(b.substitute_params(params)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.substitute_params(params))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.substitute_params(params)),
                negated: *negated,
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.substitute_params(params)),
                list: list.iter().map(|e| e.substitute_params(params)).collect(),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.substitute_params(params)),
                pattern: pattern.clone(),
            },
            Expr::Arith(a, op, b) => Expr::Arith(
                Box::new(a.substitute_params(params)),
                *op,
                Box::new(b.substitute_params(params)),
            ),
        }
    }

    /// Evaluates a bound expression against `row` and `params`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Eval`] for unbound columns, out-of-range
    /// parameters, division by zero, or non-numeric arithmetic.
    pub fn eval(&self, row: &Row, params: &[Value]) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => Err(StorageError::Eval(format!(
                "unbound column {c} reached evaluation"
            ))),
            Expr::BoundColumn(i) => Ok(row.get(*i).clone()),
            Expr::Param(i) => params
                .get(*i)
                .cloned()
                .ok_or_else(|| StorageError::Eval(format!("missing parameter ${}", i + 1))),
            Expr::Cmp(a, op, b) => {
                let (va, vb) = (a.eval(row, params)?, b.eval(row, params)?);
                Ok(match va.sql_cmp(&vb) {
                    Some(ord) => Value::Bool(op.holds(ord)),
                    None => Value::Null,
                })
            }
            Expr::And(a, b) => {
                let va = a.eval(row, params)?;
                // Short circuit: FALSE AND x = FALSE regardless of x.
                if va == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(row, params)?;
                Ok(match (truth(&va), truth(&vb)) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::Or(a, b) => {
                let va = a.eval(row, params)?;
                if va == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(row, params)?;
                Ok(match (truth(&va), truth(&vb)) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Expr::Not(a) => Ok(match truth(&a.eval(row, params)?) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row, params)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(row, params)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, params)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row, params)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Text(s) => Ok(Value::Bool(like_match(&s, pattern))),
                    other => Err(StorageError::Eval(format!(
                        "LIKE applied to non-text value {other}"
                    ))),
                }
            }
            Expr::Arith(a, op, b) => {
                let (va, vb) = (a.eval(row, params)?, b.eval(row, params)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                arith(&va, *op, &vb)
            }
        }
    }

    /// Evaluates as a predicate: true only when the result is SQL TRUE.
    pub fn matches(&self, row: &Row, params: &[Value]) -> Result<bool> {
        Ok(self.eval(row, params)?.is_sql_true())
    }

    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// If this conjunct is `column = <literal or param>`, returns the pair.
    /// Used by the planner for index selection and by CacheGenie for key
    /// extraction.
    pub fn as_column_eq(&self) -> Option<(&ColumnRef, &Expr)> {
        if let Expr::Cmp(a, CmpOp::Eq, b) = self {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Column(c), v @ (Expr::Literal(_) | Expr::Param(_))) => Some((c, v)),
                (v @ (Expr::Literal(_) | Expr::Param(_)), Expr::Column(c)) => Some((c, v)),
                _ => None,
            }
        } else {
            None
        }
    }

    /// If this conjunct is `column <op> <literal or param>` for a
    /// comparison operator, returns `(column, op, rhs)` with the operator
    /// normalized to the column-on-the-left orientation (`5 < col`
    /// becomes `col > 5`).
    pub fn as_column_cmp(&self) -> Option<(&ColumnRef, CmpOp, &Expr)> {
        let Expr::Cmp(a, op, b) = self else {
            return None;
        };
        match (a.as_ref(), b.as_ref()) {
            (Expr::Column(c), v @ (Expr::Literal(_) | Expr::Param(_))) => Some((c, *op, v)),
            (v @ (Expr::Literal(_) | Expr::Param(_)), Expr::Column(c)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Ne => CmpOp::Ne,
                };
                Some((c, flipped, v))
            }
            _ => None,
        }
    }

    /// If this conjunct is `column IN (c1, c2, ...)` with every list item
    /// a literal or parameter, returns the column and the items.
    pub fn as_column_in(&self) -> Option<(&ColumnRef, &[Expr])> {
        let Expr::InList { expr, list } = self else {
            return None;
        };
        let Expr::Column(c) = expr.as_ref() else {
            return None;
        };
        if list
            .iter()
            .all(|e| matches!(e, Expr::Literal(_) | Expr::Param(_)))
        {
            Some((c, list))
        } else {
            None
        }
    }

    /// If this conjunct is a disjunction whose every arm is an equality
    /// on the *same* column (`a = 1 OR a = 2 OR a = $1`), returns the
    /// column and the right-hand sides — the planner turns this into a
    /// multi-key index lookup, exactly like `IN`.
    pub fn as_or_column_eqs(&self) -> Option<(&ColumnRef, Vec<&Expr>)> {
        if !matches!(self, Expr::Or(..)) {
            return None;
        }
        let mut arms = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut arms);
        let mut col: Option<&ColumnRef> = None;
        let mut values = Vec::with_capacity(arms.len());
        for arm in arms {
            let (c, v) = arm.as_column_eq()?;
            match col {
                None => col = Some(c),
                Some(prev) if prev == c => {}
                Some(_) => return None,
            }
            values.push(v);
        }
        col.map(|c| (c, values))
    }

    /// Collects every column referenced by the (unbound) expression.
    pub fn referenced_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) | Expr::BoundColumn(_) | Expr::Param(_) => {}
            Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(a, _, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(a) => a.referenced_columns(out),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.referenced_columns(out),
            Expr::InList { expr, list } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::BoundColumn(i) => write!(f, "#{i}"),
            Expr::Param(i) => write!(f, "${}", i + 1),
            Expr::Cmp(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Like { expr, pattern } => {
                write!(f, "({expr} LIKE '{}')", pattern.replace('\'', "''"))
            }
            Expr::Arith(a, op, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        // Non-boolean in a logical context: treat as unknown.
        _ => None,
    }
}

fn arith(a: &Value, op: ArithOp, b: &Value) -> Result<Value> {
    // Integer arithmetic stays integral; any float operand promotes.
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let r = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                ArithOp::Mul => x.checked_mul(*y),
                ArithOp::Div => {
                    if *y == 0 {
                        return Err(StorageError::Eval("division by zero".into()));
                    }
                    x.checked_div(*y)
                }
            };
            r.map(Value::Int)
                .ok_or_else(|| StorageError::Eval("integer overflow".into()))
        }
        _ => {
            let (x, y) = match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(StorageError::Eval(format!(
                        "arithmetic on non-numeric values {a} and {b}"
                    )))
                }
            };
            if matches!(op, ArithOp::Div) && y == 0.0 {
                return Err(StorageError::Eval("division by zero".into()));
            }
            Ok(Value::Float(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            }))
        }
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(&s[k..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn b(e: &Expr) -> Expr {
        // Binds bare columns a,b,c to positions 0,1,2.
        e.bind(&|c: &ColumnRef| match c.column.as_str() {
            "a" => Ok(0),
            "b" => Ok(1),
            "c" => Ok(2),
            _ => Err(StorageError::UnknownColumn {
                table: "t".into(),
                column: c.column.clone(),
            }),
        })
        .unwrap()
    }

    #[test]
    fn comparison_and_binding() {
        let e = b(&Expr::col("a").eq(Expr::lit(5i64)));
        let r = row![5i64, 0i64, 0i64];
        assert!(e.matches(&r, &[]).unwrap());
        assert!(!e.matches(&row![4i64, 0i64, 0i64], &[]).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let null = Expr::lit(Value::Null);
        let t = Expr::lit(true);
        let f_ = Expr::lit(false);
        let r = Row::default();
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        assert_eq!(
            null.clone().and(f_.clone()).eval(&r, &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            null.clone().and(t.clone()).eval(&r, &[]).unwrap(),
            Value::Null
        );
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL
        assert_eq!(null.clone().or(t).eval(&r, &[]).unwrap(), Value::Bool(true));
        assert_eq!(null.or(f_).eval(&r, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn not_of_null_is_null() {
        let e = Expr::Not(Box::new(Expr::lit(Value::Null)));
        assert_eq!(e.eval(&Row::default(), &[]).unwrap(), Value::Null);
    }

    #[test]
    fn null_comparison_never_matches() {
        let e = b(&Expr::col("a").eq(Expr::lit(Value::Null)));
        assert!(!e.matches(&row![1i64, 0i64, 0i64], &[]).unwrap());
    }

    #[test]
    fn is_null_predicate() {
        let e = b(&Expr::IsNull {
            expr: Box::new(Expr::col("a")),
            negated: false,
        });
        let null_row = Row::new(vec![Value::Null, Value::Int(1), Value::Int(2)]);
        assert!(e.matches(&null_row, &[]).unwrap());
        assert!(!e.matches(&row![3i64, 1i64, 2i64], &[]).unwrap());
        let e_not = b(&Expr::IsNull {
            expr: Box::new(Expr::col("a")),
            negated: true,
        });
        assert!(!e_not.matches(&null_row, &[]).unwrap());
        assert!(e_not.matches(&row![3i64, 1i64, 2i64], &[]).unwrap());
    }

    #[test]
    fn params_resolve() {
        let e = b(&Expr::col("b").eq(Expr::Param(0)));
        let r = row![0i64, 42i64, 0i64];
        assert!(e.matches(&r, &[Value::Int(42)]).unwrap());
        assert!(matches!(e.eval(&r, &[]), Err(StorageError::Eval(_))));
    }

    #[test]
    fn substitute_params_closes_template() {
        let e = Expr::col("a").eq(Expr::Param(0));
        let closed = e.substitute_params(&[Value::Int(7)]);
        assert_eq!(closed, Expr::col("a").eq(Expr::lit(7i64)));
    }

    #[test]
    fn in_list_semantics() {
        let e = b(&Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::lit(2i64)],
        });
        assert!(e.matches(&row![2i64, 0i64, 0i64], &[]).unwrap());
        assert!(!e.matches(&row![3i64, 0i64, 0i64], &[]).unwrap());
        // NULL in the list makes a non-match unknown, not false.
        let e2 = b(&Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::lit(1i64), Expr::lit(Value::Null)],
        });
        assert_eq!(e2.eval(&row![3i64, 0i64, 0i64], &[]).unwrap(), Value::Null);
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_l"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
    }

    #[test]
    fn like_on_non_text_errors() {
        let e = b(&Expr::Like {
            expr: Box::new(Expr::col("a")),
            pattern: "x%".into(),
        });
        assert!(e.eval(&row![1i64, 0i64, 0i64], &[]).is_err());
    }

    #[test]
    fn arithmetic() {
        let r = Row::default();
        let add = Expr::Arith(
            Box::new(Expr::lit(2i64)),
            ArithOp::Add,
            Box::new(Expr::lit(3i64)),
        );
        assert_eq!(add.eval(&r, &[]).unwrap(), Value::Int(5));
        let div = Expr::Arith(
            Box::new(Expr::lit(7i64)),
            ArithOp::Div,
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(div.eval(&r, &[]).unwrap(), Value::Int(3));
        let fdiv = Expr::Arith(
            Box::new(Expr::lit(7.0f64)),
            ArithOp::Div,
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(fdiv.eval(&r, &[]).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let r = Row::default();
        let div = Expr::Arith(
            Box::new(Expr::lit(1i64)),
            ArithOp::Div,
            Box::new(Expr::lit(0i64)),
        );
        assert!(div.eval(&r, &[]).is_err());
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        let r = Row::default();
        let e = Expr::Arith(
            Box::new(Expr::lit(1i64)),
            ArithOp::Add,
            Box::new(Expr::lit(Value::Null)),
        );
        assert_eq!(e.eval(&r, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn integer_overflow_errors() {
        let r = Row::default();
        let e = Expr::Arith(
            Box::new(Expr::lit(i64::MAX)),
            ArithOp::Add,
            Box::new(Expr::lit(1i64)),
        );
        assert!(e.eval(&r, &[]).is_err());
    }

    #[test]
    fn conjuncts_flatten() {
        let e = Expr::col("a").eq(Expr::lit(1i64)).and(
            Expr::col("b")
                .eq(Expr::lit(2i64))
                .and(Expr::col("c").eq(Expr::lit(3i64))),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn column_eq_extraction() {
        let e = Expr::col("a").eq(Expr::Param(0));
        let (c, v) = e.as_column_eq().unwrap();
        assert_eq!(c.column, "a");
        assert_eq!(v, &Expr::Param(0));
        // Reversed orientation also extracts.
        let e2 = Expr::lit(5i64).eq(Expr::col("b"));
        assert_eq!(e2.as_column_eq().unwrap().0.column, "b");
        // Non-eq does not.
        let e3 = Expr::Cmp(
            Box::new(Expr::col("a")),
            CmpOp::Lt,
            Box::new(Expr::lit(1i64)),
        );
        assert!(e3.as_column_eq().is_none());
    }

    #[test]
    fn referenced_columns_walks_tree() {
        let e = Expr::col("a")
            .eq(Expr::Param(0))
            .and(Expr::qcol("t", "b").eq(Expr::lit(2i64)));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1], ColumnRef::qualified("t", "b"));
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::col("a")
            .eq(Expr::Param(0))
            .and(Expr::col("b").eq(Expr::lit("x")));
        assert_eq!(e.to_string(), "((a = $1) AND (b = 'x'))");
    }

    #[test]
    fn unbound_column_eval_errors() {
        let e = Expr::col("a");
        assert!(e.eval(&Row::default(), &[]).is_err());
    }
}
