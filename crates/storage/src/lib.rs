//! # genie-storage
//!
//! An embedded relational engine standing in for PostgreSQL in the
//! CacheGenie reproduction. It provides exactly the database surface the
//! paper's middleware depends on:
//!
//! * typed tables with primary keys, unique/secondary B-tree indexes, and
//!   foreign-key checks ([`TableSchema`], [`Table`]);
//! * a SQL-subset parser and a planner/executor covering the query shapes
//!   a Django-style ORM emits — point lookups, index scans, inner/left
//!   joins, aggregates, `ORDER BY ... LIMIT` ([`sql`], [`Select`]) —
//!   with scan-shaped plans executed vectorized (~1024-row batches over
//!   a compiled predicate, optionally morsel-parallel across worker
//!   threads; [`Database::set_batch_scan`],
//!   [`Database::set_scan_workers`]);
//! * **row-level AFTER triggers** fired synchronously inside write
//!   statements — the primitive CacheGenie uses to keep the cache
//!   consistent ([`Trigger`], [`TriggerCtx`]);
//! * thread-scoped transactions with undo-log rollback: **MVCC snapshot
//!   reads** (readers never block and never deadlock; see
//!   [`Table::visible`] and `docs/ISOLATION.md`) over strict two-phase
//!   row/table write locking with fair FIFO waiter queues,
//!   wait-for-graph deadlock detection, and first-updater-wins
//!   write-conflict detection ([`Database::transaction`],
//!   [`Database::begin_concurrent`], [`lockmgr::LockManager`]), all
//!   running under a sharded latch hierarchy — catalog read-write latch
//!   over per-table latches — so statements on disjoint tables never
//!   serialize ([`Database::latch_stats`], `docs/ARCHITECTURE.md`);
//! * a buffer-pool *model* that classifies page touches as hits or misses
//!   and emits a per-statement [`CostReport`], which the benchmark harness
//!   prices into simulated time ([`BufferPool`]).
//!
//! # Example
//!
//! ```
//! use genie_storage::{Database, Trigger, TriggerEvent, Value};
//! use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
//!
//! # fn main() -> Result<(), genie_storage::StorageError> {
//! let db = Database::default();
//! db.execute_sql("CREATE TABLE wall (post_id INT PRIMARY KEY, user_id INT NOT NULL)", &[])?;
//!
//! // A trigger that counts inserts — CacheGenie installs triggers like
//! // this to push cache updates.
//! let fired = Arc::new(AtomicU64::new(0));
//! let fired2 = Arc::clone(&fired);
//! db.create_trigger(Trigger::new(
//!     "count_inserts",
//!     "wall",
//!     TriggerEvent::Insert,
//!     move |_ctx: &mut genie_storage::TriggerCtx<'_>| {
//!         fired2.fetch_add(1, Ordering::SeqCst);
//!         Ok(())
//!     },
//! ))?;
//!
//! db.execute_sql("INSERT INTO wall VALUES (1, 42)", &[])?;
//! assert_eq!(fired.load(Ordering::SeqCst), 1);
//! # Ok(())
//! # }
//! ```

pub mod bufferpool;
pub mod catalog;
pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub(crate) mod latch;
pub mod lockmgr;
pub mod plan;
pub mod query;
pub mod row;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod table;
pub mod trigger;
pub mod value;
pub mod wal;

pub use bufferpool::{BufferPool, PageId, PoolStats};
pub use cost::CostReport;
pub use db::{
    CommitHook, ConcurrentTxn, Database, DbConfig, DbStats, DeferredPublish, ExecOutcome,
    TxnHandle, VersionStats,
};
pub use error::{Result, StorageError};
pub use expr::{ArithOp, CmpOp, ColumnRef, Expr};
pub use lockmgr::{LatchStats, LockManager, LockMode, LockStats, TxnId};
pub use plan::{AccessPath, Bound, JoinMethod, JoinPlan, Plan, QueryPlan};
pub use query::{
    AggFunc, Delete, Insert, Join, JoinKind, OrderKey, QueryResult, Select, SelectItem, Statement,
    TableRef, Update,
};
pub use row::{Row, RowId};
pub use schema::{ColumnDef, ForeignKeyDef, IndexDef, TableSchema, TableSchemaBuilder};
pub use stats::ColumnStats;
pub use table::{Snapshot, Table};
pub use trigger::{Trigger, TriggerBody, TriggerCtx, TriggerEvent, TriggerManager};
pub use value::{Value, ValueType};
pub use wal::{CheckpointStats, RecoveryReport, SyncPolicy, WalConfig, WalStats};
