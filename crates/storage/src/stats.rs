//! Per-column statistics maintained incrementally by the table layer.
//!
//! Every [`crate::Table`] keeps one [`ColumnStats`] per column, updated on
//! insert/update/delete, so the planner ([`crate::plan`]) can replace its
//! System-R constant selectivities with numbers derived from the data:
//!
//! * **row / null counts** — exact;
//! * **distinct count** — a counting linear sketch (a fixed array of
//!   per-hash-bucket row counters). Inserts increment a bucket, deletes
//!   decrement it, and the distinct estimate is the classic linear-counting
//!   estimator over the non-empty buckets. Unlike HyperLogLog/KMV this
//!   survives deletions exactly, at the price of saturating near the
//!   bucket count (fine here: it is capped by the non-null row count and
//!   the planner only needs selectivity ratios);
//! * **equi-width histogram** — numeric columns (Int / Float / Timestamp)
//!   get a fixed number of buckets over a range that grows by doubling
//!   (merging bucket pairs), so the value→bucket mapping stays exact
//!   across widenings and deletes can decrement the right bucket.
//!
//! All estimators are deterministic: the sketch hashes with the std
//! `DefaultHasher` (fixed keys) and widening is value-driven.

use crate::value::{Value, ValueType};
use std::hash::{Hash, Hasher};

/// Buckets in the distinct-count sketch. 2^10 keeps the estimator within
/// a few percent up to ~1k distinct values and degrades gracefully (toward
/// "every value is distinct") beyond — the regime where exact precision
/// stops mattering for access-path choice.
const SKETCH_BUCKETS: usize = 1024;

/// Buckets in the equi-width histogram.
const HIST_BUCKETS: usize = 32;

fn bucket_hash(v: &Value) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    (h.finish() as usize) % SKETCH_BUCKETS
}

/// Counting linear sketch for distinct values under insert *and* delete.
#[derive(Debug, Clone)]
struct DistinctSketch {
    buckets: Vec<u32>,
    /// Number of non-empty buckets (maintained incrementally).
    occupied: usize,
}

impl DistinctSketch {
    fn new() -> Self {
        DistinctSketch {
            buckets: vec![0; SKETCH_BUCKETS],
            occupied: 0,
        }
    }

    fn add(&mut self, v: &Value) {
        let b = &mut self.buckets[bucket_hash(v)];
        if *b == 0 {
            self.occupied += 1;
        }
        *b += 1;
    }

    fn remove(&mut self, v: &Value) {
        let b = &mut self.buckets[bucket_hash(v)];
        if *b > 0 {
            *b -= 1;
            if *b == 0 {
                self.occupied -= 1;
            }
        }
    }

    fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.occupied = 0;
    }

    /// Linear-counting estimate of the number of distinct values.
    fn estimate(&self) -> f64 {
        let m = SKETCH_BUCKETS as f64;
        let empty = (SKETCH_BUCKETS - self.occupied) as f64;
        if empty <= 0.5 {
            // Saturated: every bucket hit; the caller caps by row count.
            return f64::INFINITY;
        }
        -m * (empty / m).ln()
    }
}

/// The widened numeric form histograms bucket on. Mirrors the storage
/// total order for Int/Float interleaving ([`crate::value`]).
fn numeric_key(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Timestamp(t) => Some(*t as f64),
        _ => None,
    }
}

/// Equi-width histogram whose range grows by doubling.
#[derive(Debug, Clone)]
struct Histogram {
    /// Inclusive lower edge of bucket 0; meaningless while `total == 0`
    /// and `initialized` is false.
    lo: f64,
    /// Width of one bucket (> 0 once initialized).
    width: f64,
    counts: [u64; HIST_BUCKETS],
    total: u64,
    /// Observed extremes; never shrunk on delete (estimates only).
    min: f64,
    max: f64,
    initialized: bool,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            lo: 0.0,
            width: 0.0,
            counts: [0; HIST_BUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            initialized: false,
        }
    }

    fn span(&self) -> f64 {
        self.width * HIST_BUCKETS as f64
    }

    fn bucket_of(&self, x: f64) -> usize {
        (((x - self.lo) / self.width) as usize).min(HIST_BUCKETS - 1)
    }

    /// Doubles the range upward: pairs of buckets merge into the lower
    /// half. A value's bucket index exactly halves, so counts stay exact.
    fn extend_up(&mut self) {
        for i in 0..HIST_BUCKETS / 2 {
            self.counts[i] = self.counts[2 * i] + self.counts[2 * i + 1];
        }
        for c in &mut self.counts[HIST_BUCKETS / 2..] {
            *c = 0;
        }
        self.width *= 2.0;
    }

    /// Doubles the range downward: old bucket `j` maps exactly to new
    /// bucket `HIST_BUCKETS/2 + j/2`.
    fn extend_down(&mut self) {
        let old = self.counts;
        self.counts = [0; HIST_BUCKETS];
        for (j, c) in old.iter().enumerate() {
            self.counts[HIST_BUCKETS / 2 + j / 2] += c;
        }
        self.lo -= self.span();
        self.width *= 2.0;
    }

    fn cover(&mut self, x: f64) {
        if !self.initialized {
            // Seed a unit-width-per-bucket range anchored just below x so
            // the first widenings stay cheap for clustered data.
            self.lo = x.floor();
            self.width = 1.0;
            self.initialized = true;
        }
        // The guards bound doubling on astronomically wide domains; a
        // value still outside afterwards clamps into an edge bucket in
        // add()/remove(), keeping estimates monotone.
        let mut guard = 0;
        while x < self.lo && guard < 128 {
            self.extend_down();
            guard += 1;
        }
        while x >= self.lo + self.span() && guard < 256 {
            self.extend_up();
            guard += 1;
        }
    }

    fn add(&mut self, x: f64) {
        self.cover(x);
        let b = if x < self.lo { 0 } else { self.bucket_of(x) };
        self.counts[b] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    fn remove(&mut self, x: f64) {
        if !self.initialized || self.total == 0 {
            return;
        }
        let b = if x < self.lo { 0 } else { self.bucket_of(x) };
        if self.counts[b] > 0 {
            self.counts[b] -= 1;
            self.total -= 1;
        }
    }

    fn clear(&mut self) {
        *self = Histogram::new();
    }

    /// Estimated fraction of rows with value strictly below `x`, with
    /// linear interpolation inside `x`'s bucket.
    fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return 1.0;
        }
        let mut below = 0u64;
        let b = if x < self.lo { 0 } else { self.bucket_of(x) };
        for c in &self.counts[..b] {
            below += c;
        }
        let in_bucket = self.counts[b] as f64;
        let bucket_lo = self.lo + b as f64 * self.width;
        let frac = if self.width > 0.0 {
            ((x - bucket_lo) / self.width).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (below as f64 + in_bucket * frac) / self.total as f64
    }

    /// Estimated fraction of rows inside the interval; `None` bound means
    /// unbounded on that side. The bool is "inclusive" (used only to nudge
    /// the point-mass case; interpolation already absorbs the rest).
    fn range_fraction(&self, lo: Option<(f64, bool)>, hi: Option<(f64, bool)>) -> f64 {
        let below_lo = match lo {
            None => 0.0,
            Some((x, _inclusive)) => self.fraction_below(x),
        };
        let below_hi = match hi {
            None => 1.0,
            Some((x, inclusive)) => {
                if inclusive {
                    // Include the point mass at x by stepping just past it.
                    self.fraction_below(x + self.width * 1e-9) + self.point_mass(x)
                } else {
                    self.fraction_below(x)
                }
            }
        };
        (below_hi - below_lo).clamp(0.0, 1.0)
    }

    /// Rough point-mass estimate: the bucket's density spread over its
    /// width, capped at the bucket's whole share.
    fn point_mass(&self, x: f64) -> f64 {
        if self.total == 0 || !self.initialized || x < self.min || x > self.max {
            return 0.0;
        }
        let b = if x < self.lo { 0 } else { self.bucket_of(x) };
        let share = self.counts[b] as f64 / self.total as f64;
        share / self.width.max(1.0)
    }
}

/// Incrementally-maintained statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    total: u64,
    nulls: u64,
    sketch: DistinctSketch,
    hist: Option<Histogram>,
}

impl ColumnStats {
    /// Creates stats for a column of type `ty`; numeric columns get a
    /// histogram.
    pub fn new(ty: ValueType) -> Self {
        let hist = matches!(ty, ValueType::Int | ValueType::Float | ValueType::Timestamp)
            .then(Histogram::new);
        ColumnStats {
            total: 0,
            nulls: 0,
            sketch: DistinctSketch::new(),
            hist,
        }
    }

    /// Records a stored value.
    pub fn add(&mut self, v: &Value) {
        self.total += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.sketch.add(v);
        if let (Some(h), Some(x)) = (self.hist.as_mut(), numeric_key(v)) {
            h.add(x);
        }
    }

    /// Records a value's removal.
    pub fn remove(&mut self, v: &Value) {
        self.total = self.total.saturating_sub(1);
        if v.is_null() {
            self.nulls = self.nulls.saturating_sub(1);
            return;
        }
        self.sketch.remove(v);
        if let (Some(h), Some(x)) = (self.hist.as_mut(), numeric_key(v)) {
            h.remove(x);
        }
    }

    /// Forgets everything (table truncation).
    pub fn clear(&mut self) {
        self.total = 0;
        self.nulls = 0;
        self.sketch.clear();
        if let Some(h) = self.hist.as_mut() {
            h.clear();
        }
    }

    /// Rows observed (including NULLs).
    pub fn rows(&self) -> u64 {
        self.total
    }

    /// NULL values observed.
    pub fn null_count(&self) -> u64 {
        self.nulls
    }

    /// Estimated distinct non-null values, in `[0, non-null rows]`
    /// (exactly 0 only when no non-null value is stored).
    pub fn distinct(&self) -> f64 {
        let non_null = (self.total - self.nulls) as f64;
        if non_null == 0.0 {
            return 0.0;
        }
        self.sketch.estimate().min(non_null).max(1.0)
    }

    /// Estimated selectivity of `column = <some value>`: `1 / distinct`,
    /// scaled by the non-null fraction. `None` when the column is empty.
    pub fn eq_selectivity(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let d = self.distinct();
        if d == 0.0 {
            return Some(0.0);
        }
        let non_null_frac = (self.total - self.nulls) as f64 / self.total as f64;
        Some((non_null_frac / d).clamp(0.0, 1.0))
    }

    /// Histogram-estimated fraction of rows inside a numeric interval
    /// (`None` bound = unbounded; bool = inclusive). `None` when the
    /// column has no histogram or no data — the caller falls back to the
    /// System-R constants.
    pub fn range_selectivity(
        &self,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> Option<f64> {
        let h = self.hist.as_ref()?;
        if h.total == 0 {
            return None;
        }
        let non_null_frac = if self.total == 0 {
            0.0
        } else {
            (self.total - self.nulls) as f64 / self.total as f64
        };
        Some((h.range_fraction(lo, hi) * non_null_frac).clamp(0.0, 1.0))
    }

    /// The numeric bucketing key for a value, when it has one.
    pub fn key_of(v: &Value) -> Option<f64> {
        numeric_key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_adds_and_removes() {
        let mut s = ColumnStats::new(ValueType::Int);
        for i in 0..100i64 {
            s.add(&Value::Int(i % 10));
        }
        s.add(&Value::Null);
        assert_eq!(s.rows(), 101);
        assert_eq!(s.null_count(), 1);
        let d = s.distinct();
        assert!((8.0..=12.0).contains(&d), "distinct ~10, got {d}");
        for i in 0..50i64 {
            s.remove(&Value::Int(i % 10));
        }
        assert_eq!(s.rows(), 51);
        // Still ten distinct values present.
        let d = s.distinct();
        assert!(
            (8.0..=12.0).contains(&d),
            "distinct ~10 after deletes, got {d}"
        );
    }

    #[test]
    fn distinct_drops_when_values_vanish() {
        let mut s = ColumnStats::new(ValueType::Int);
        for i in 0..40i64 {
            s.add(&Value::Int(i));
        }
        for i in 0..30i64 {
            s.remove(&Value::Int(i));
        }
        let d = s.distinct();
        assert!(d <= 14.0, "10 values remain, estimate {d}");
    }

    #[test]
    fn eq_selectivity_uses_distinct() {
        let mut s = ColumnStats::new(ValueType::Int);
        for i in 0..200i64 {
            s.add(&Value::Int(i % 20));
        }
        let sel = s.eq_selectivity().unwrap();
        assert!((0.03..=0.08).contains(&sel), "~1/20, got {sel}");
    }

    #[test]
    fn histogram_estimates_ranges() {
        let mut s = ColumnStats::new(ValueType::Timestamp);
        for t in 0..1000i64 {
            s.add(&Value::Timestamp(t));
        }
        // Upper half.
        let sel = s.range_selectivity(Some((500.0, false)), None).unwrap();
        assert!((0.4..=0.6).contains(&sel), "~0.5, got {sel}");
        // Narrow slice.
        let sel = s
            .range_selectivity(Some((100.0, true)), Some((150.0, true)))
            .unwrap();
        assert!((0.02..=0.09).contains(&sel), "~0.05, got {sel}");
        // Everything.
        let sel = s.range_selectivity(None, None).unwrap();
        assert!(sel >= 0.99, "full range ~1.0, got {sel}");
        // Out of range below.
        let sel = s.range_selectivity(None, Some((-5.0, true))).unwrap();
        assert!(sel <= 0.01, "empty range ~0, got {sel}");
    }

    #[test]
    fn histogram_widens_both_directions() {
        let mut s = ColumnStats::new(ValueType::Int);
        s.add(&Value::Int(0));
        s.add(&Value::Int(100_000));
        s.add(&Value::Int(-100_000));
        let sel = s.range_selectivity(Some((-200_000.0, true)), None).unwrap();
        assert!(sel > 0.9, "all three inside, got {sel}");
    }

    #[test]
    fn text_columns_have_no_histogram_but_distinct_works() {
        let mut s = ColumnStats::new(ValueType::Text);
        for i in 0..50 {
            s.add(&Value::Text(format!("u{}", i % 5)));
        }
        assert!(s.range_selectivity(Some((0.0, true)), None).is_none());
        let d = s.distinct();
        assert!((4.0..=7.0).contains(&d), "~5 distinct, got {d}");
    }

    #[test]
    fn clear_resets() {
        let mut s = ColumnStats::new(ValueType::Int);
        for i in 0..10i64 {
            s.add(&Value::Int(i));
        }
        s.clear();
        assert_eq!(s.rows(), 0);
        assert_eq!(s.distinct(), 0.0);
        assert!(s.eq_selectivity().is_none());
    }
}
