//! The public database facade.
//!
//! [`Database`] is a cheaply clonable handle (an `Arc` around the engine
//! state) exposing statement execution, DDL, triggers, and transactions.
//! Every call returns an [`ExecOutcome`] carrying both the logical result
//! and the physical [`CostReport`], which the benchmark harness prices into
//! simulated time.

use crate::bufferpool::{BufferPool, PoolStats};
use crate::catalog::Catalog;
use crate::cost::CostReport;
use crate::error::{Result, StorageError};
use crate::exec::{self, RowChange, UndoOp};
use crate::query::{QueryResult, Select, Statement};
use crate::schema::{IndexDef, TableSchema};
use crate::trigger::{Trigger, TriggerCtx, TriggerEvent, TriggerManager};
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Observer of the commit-time effect pipeline. Registered by middleware
/// (CacheGenie) that turns trigger work into external cache effects: the
/// engine brackets commit-time trigger firing with these callbacks so the
/// middleware can buffer effects and publish them atomically — committed
/// transactions publish exactly once, aborted ones publish nothing.
pub trait CommitHook: Send + Sync {
    /// Called before commit-time triggers fire. Effects produced by
    /// trigger bodies until the matching [`CommitHook::commit_apply`] /
    /// [`CommitHook::abort_apply`] should be buffered, not published.
    fn begin_apply(&self);

    /// Called after every commit-time trigger fired successfully. The
    /// hook publishes the buffered effects (coalescing per key) and may
    /// rewrite `cost`'s cache-op counters to the physical (coalesced)
    /// numbers. Returning an error aborts the transaction — the hook must
    /// have discarded its buffer before returning it.
    ///
    /// # Errors
    ///
    /// Any error (e.g. a strict-mode lock timeout) aborts the commit.
    fn commit_apply(&self, cost: &mut CostReport) -> Result<()>;

    /// Called when the transaction aborts after `begin_apply` (a trigger
    /// body failed). The hook discards the buffered effects.
    fn abort_apply(&self);
}

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer-pool capacity in bytes (the paper's DB machine has 2 GB for
    /// a 10 GB dataset; scaled-down experiments shrink both).
    pub buffer_pool_bytes: usize,
    /// Modelled page size in bytes.
    pub page_bytes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pool_bytes: 64 * 1024 * 1024,
            page_bytes: BufferPool::DEFAULT_PAGE_BYTES,
        }
    }
}

/// Aggregate engine statistics since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Statements executed (all kinds).
    pub statements: u64,
    /// SELECTs executed.
    pub selects: u64,
    /// Write statements executed.
    pub writes: u64,
    /// Trigger bodies fired.
    pub triggers_fired: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
}

/// Result + physical cost of one statement.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Logical result (rows or affected count).
    pub result: QueryResult,
    /// Physical work performed, including trigger work.
    pub cost: CostReport,
}

struct TxnState {
    undo: Vec<UndoOp>,
    /// Row changes buffered for commit-time trigger firing, in statement
    /// order. Coalesced per (table, pk) when the transaction commits.
    changes: Vec<RowChange>,
    /// True once any statement modified rows; commit charges its single
    /// group WAL append only then (read-only transactions write nothing).
    wrote: bool,
}

struct Inner {
    catalog: Catalog,
    pool: BufferPool,
    triggers: TriggerManager,
    txn: Option<TxnState>,
    stats: DbStats,
    commit_hook: Option<Arc<dyn CommitHook>>,
}

/// An embedded relational database with row-level triggers.
///
/// Cloning shares the underlying engine. All operations serialize on an
/// internal lock; the paper's write-write conflict prevention ("writes are
/// serialized through the database") falls out of this design.
///
/// # Example
///
/// ```
/// use genie_storage::{Database, TableSchema, ColumnDef, ValueType, Statement, Insert, Select, Expr, row, Value};
///
/// # fn main() -> Result<(), genie_storage::StorageError> {
/// let db = Database::default();
/// db.create_table(
///     TableSchema::builder("users")
///         .pk("id")
///         .column(ColumnDef::new("name", ValueType::Text).not_null())
///         .build()?,
/// )?;
/// db.execute_sql("INSERT INTO users (id, name) VALUES (1, 'alice')", &[])?;
/// let out = db.execute_sql("SELECT name FROM users WHERE id = $1", &[Value::Int(1)])?;
/// assert_eq!(out.result.rows[0].get(0), &Value::Text("alice".into()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Database {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new(DbConfig::default())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Database")
            .field("tables", &inner.catalog.table_names())
            .field("triggers", &inner.triggers.len())
            .finish()
    }
}

impl Database {
    /// Creates a database with the given configuration.
    pub fn new(config: DbConfig) -> Self {
        Database {
            inner: Arc::new(Mutex::new(Inner {
                catalog: Catalog::new(),
                pool: BufferPool::new(config.buffer_pool_bytes, config.page_bytes),
                triggers: TriggerManager::new(),
                txn: None,
                stats: DbStats::default(),
                commit_hook: None,
            })),
        }
    }

    // ----- DDL -----

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] for duplicate names.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        self.inner.lock().catalog.create_table(schema)
    }

    /// Creates a secondary index.
    ///
    /// # Errors
    ///
    /// See [`crate::Table::create_index`].
    pub fn create_index(&self, table: &str, def: IndexDef) -> Result<()> {
        self.inner.lock().catalog.create_index(table, def)
    }

    /// Registers a trigger.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] on duplicate trigger names.
    pub fn create_trigger(&self, trigger: Trigger) -> Result<()> {
        self.inner.lock().triggers.register(trigger)
    }

    /// Drops a trigger by name; returns whether it existed.
    pub fn drop_trigger(&self, name: &str) -> bool {
        self.inner.lock().triggers.drop_trigger(name)
    }

    /// Removes every trigger.
    pub fn clear_triggers(&self) {
        self.inner.lock().triggers.clear();
    }

    /// Globally enables or disables trigger firing (Experiment 5 measures
    /// the workload with triggers off).
    pub fn set_triggers_enabled(&self, enabled: bool) {
        self.inner.lock().triggers.set_enabled(enabled);
    }

    /// Number of registered triggers.
    pub fn trigger_count(&self) -> usize {
        self.inner.lock().triggers.len()
    }

    /// Registers the commit-time effect hook (CacheGenie's cache-batch
    /// pipeline). Replaces any previous hook.
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) {
        self.inner.lock().commit_hook = Some(hook);
    }

    /// True while an explicit transaction is open. Middleware uses this to
    /// defer cache publication (reads bypass the cache so uncommitted data
    /// never becomes visible to other clients).
    pub fn in_transaction(&self) -> bool {
        self.inner.lock().txn.is_some()
    }

    /// Total lines of generated trigger source attached to registered
    /// triggers (the paper's §5.2 metric).
    pub fn trigger_source_lines(&self) -> usize {
        self.inner.lock().triggers.generated_source_lines()
    }

    // ----- statements -----

    /// Executes any statement with positional parameters (`$1` = index 0).
    ///
    /// # Errors
    ///
    /// All engine errors; a failing trigger aborts the whole statement and
    /// (when autocommitted) rolls back its row changes.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<ExecOutcome> {
        let mut inner = self.inner.lock();
        inner.execute(stmt, params)
    }

    /// Parses and executes SQL text.
    ///
    /// # Errors
    ///
    /// [`StorageError::Parse`] for malformed SQL plus all execution errors.
    pub fn execute_sql(&self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt, params)
    }

    /// Convenience wrapper for SELECT statements.
    ///
    /// # Errors
    ///
    /// Same as [`Database::execute`].
    pub fn select(&self, select: &Select, params: &[Value]) -> Result<ExecOutcome> {
        self.execute(&Statement::Select(select.clone()), params)
    }

    /// Runs `f` inside a transaction, committing on `Ok` and rolling back
    /// on `Err`. The engine lock is held for the duration, serializing the
    /// transaction against all other database activity.
    ///
    /// # Errors
    ///
    /// Returns `f`'s error after rollback, or any commit-time error.
    pub fn transaction<T>(&self, f: impl FnOnce(&mut TxnHandle<'_>) -> Result<T>) -> Result<T> {
        let mut inner = self.inner.lock();
        inner.begin()?;
        let result = {
            let mut handle = TxnHandle {
                inner: &mut inner,
                cost: CostReport::new(),
            };
            f(&mut handle)
        };
        match result {
            Ok(v) => {
                inner.commit()?;
                Ok(v)
            }
            Err(e) => {
                inner.rollback()?;
                Err(e)
            }
        }
    }

    // ----- introspection -----

    /// EXPLAIN: returns the whole-query [`QueryPlan`](crate::plan::QueryPlan)
    /// the planner would choose for `select` — driving-table access path,
    /// join order and probe methods, ORDER BY / LIMIT handling — without
    /// executing anything. `params` fills `$n` holes referenced by the
    /// predicate (pass the same vector you would execute with).
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] for an unknown FROM/JOIN table, plus
    /// any predicate-evaluation error (e.g. a missing parameter).
    pub fn explain(&self, select: &Select, params: &[Value]) -> Result<crate::plan::QueryPlan> {
        let inner = self.inner.lock();
        crate::plan::plan_query(&inner.catalog, select, params)
    }

    /// Parses `sql` (a SELECT, or an `EXPLAIN SELECT`) and explains it.
    ///
    /// # Errors
    ///
    /// Parse errors, non-SELECT statements, and the errors of
    /// [`Database::explain`].
    pub fn explain_sql(&self, sql: &str, params: &[Value]) -> Result<crate::plan::QueryPlan> {
        match crate::sql::parse(sql)? {
            Statement::Select(sel) | Statement::Explain(sel) => self.explain(&sel, params),
            other => Err(StorageError::Unsupported(format!(
                "EXPLAIN of non-SELECT statement {other:?}"
            ))),
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> DbStats {
        self.inner.lock().stats
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().pool.stats()
    }

    /// Resets engine and pool statistics (between warm-up and measurement).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = DbStats::default();
        inner.pool.reset_stats();
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.lock().catalog.table_names()
    }

    /// Row count of `table`.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] if absent.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.inner.lock().catalog.table(table)?.len())
    }

    /// A clone of `table`'s schema.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] if absent.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        Ok(self.inner.lock().catalog.table(table)?.schema().clone())
    }
}

/// Handle passed to [`Database::transaction`] closures.
pub struct TxnHandle<'a> {
    inner: &'a mut Inner,
    cost: CostReport,
}

impl TxnHandle<'_> {
    /// Executes a statement inside the transaction.
    ///
    /// # Errors
    ///
    /// Engine errors; the caller's closure should propagate them so the
    /// transaction rolls back.
    pub fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<QueryResult> {
        let out = self.inner.execute(stmt, params)?;
        self.cost += out.cost;
        Ok(out.result)
    }

    /// Parses and executes SQL inside the transaction.
    ///
    /// # Errors
    ///
    /// Parse and engine errors.
    pub fn execute_sql(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt, params)
    }

    /// Physical cost accumulated by this transaction so far.
    pub fn cost(&self) -> CostReport {
        self.cost
    }
}

impl std::fmt::Debug for TxnHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnHandle")
            .field("cost", &self.cost)
            .finish()
    }
}

impl Inner {
    fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<ExecOutcome> {
        self.stats.statements += 1;
        let mut cost = CostReport::new();
        match stmt {
            Statement::Select(sel) => {
                self.stats.selects += 1;
                let result =
                    exec::run_select(&self.catalog, &mut self.pool, sel, params, &mut cost)?;
                Ok(ExecOutcome { result, cost })
            }
            Statement::Explain(sel) => {
                let plan = crate::plan::plan_query(&self.catalog, sel, params)?;
                let rows = plan
                    .lines()
                    .into_iter()
                    .map(|l| crate::row::Row::new(vec![Value::Text(l)]))
                    .collect();
                Ok(ExecOutcome {
                    result: QueryResult {
                        columns: vec!["QUERY PLAN".to_owned()],
                        rows,
                        rows_affected: 0,
                    },
                    cost,
                })
            }
            Statement::Insert(ins) => {
                self.stats.writes += 1;
                let effect =
                    exec::run_insert(&mut self.catalog, &mut self.pool, ins, params, &mut cost)?;
                self.finish_write(effect, &mut cost)
            }
            Statement::Update(upd) => {
                self.stats.writes += 1;
                let effect =
                    exec::run_update(&mut self.catalog, &mut self.pool, upd, params, &mut cost)?;
                self.finish_write(effect, &mut cost)
            }
            Statement::Delete(del) => {
                self.stats.writes += 1;
                let effect =
                    exec::run_delete(&mut self.catalog, &mut self.pool, del, params, &mut cost)?;
                self.finish_write(effect, &mut cost)
            }
            Statement::CreateTable(schema) => {
                self.catalog.create_table(schema.clone())?;
                Ok(ExecOutcome::default())
            }
            Statement::CreateIndex { table, def } => {
                self.catalog.create_index(table, def.clone())?;
                Ok(ExecOutcome::default())
            }
            Statement::Begin => {
                self.begin()?;
                Ok(ExecOutcome::default())
            }
            Statement::Commit => {
                let cost = self.commit()?;
                Ok(ExecOutcome {
                    result: QueryResult::default(),
                    cost,
                })
            }
            Statement::Rollback => {
                self.rollback()?;
                Ok(ExecOutcome::default())
            }
        }
    }

    /// Completes a write statement. Inside a transaction the row changes
    /// and undo log buffer in [`TxnState`] — triggers fire (coalesced) at
    /// COMMIT, so an aborted transaction publishes no cache effects and
    /// the WAL sees one group append per transaction. Autocommit keeps the
    /// immediate path: triggers fire now and the statement pays its own
    /// WAL append.
    fn finish_write(
        &mut self,
        effect: exec::WriteEffect,
        cost: &mut CostReport,
    ) -> Result<ExecOutcome> {
        if let Some(txn) = &mut self.txn {
            txn.undo.extend(effect.undo);
            txn.wrote |= !effect.changes.is_empty();
            txn.changes.extend(effect.changes);
            return Ok(ExecOutcome {
                result: QueryResult::affected(effect.affected),
                cost: *cost,
            });
        }
        match self.fire_triggers(&effect.changes, cost) {
            Ok(()) => {
                cost.wal_appends += 1; // autocommit
                self.flush_stats_for(&effect.changes);
                Ok(ExecOutcome {
                    result: QueryResult::affected(effect.affected),
                    cost: *cost,
                })
            }
            Err(e) => {
                // A failing trigger aborts the statement: undo its row
                // changes.
                exec::apply_undo(&mut self.catalog, effect.undo)?;
                Err(e)
            }
        }
    }

    /// Applies pending (statement/commit-batched) statistics deltas for
    /// every table named in `changes`.
    fn flush_stats_for(&mut self, changes: &[RowChange]) {
        let tables: BTreeSet<&str> = changes.iter().map(|c| c.table.as_str()).collect();
        for t in tables {
            if let Ok(table) = self.catalog.table_mut(t) {
                table.flush_stats();
            }
        }
    }

    fn fire_triggers(&mut self, changes: &[RowChange], cost: &mut CostReport) -> Result<()> {
        if changes.is_empty() || !self.triggers.is_enabled() {
            return Ok(());
        }
        for change in changes {
            let matching = self.triggers.matching(&change.table, change.event);
            for trigger in matching {
                self.stats.triggers_fired += 1;
                cost.triggers_fired += 1;
                let mut query_cost = CostReport::new();
                {
                    let catalog = &self.catalog;
                    let pool = &mut self.pool;
                    let mut query_fn = |sel: &Select, params: &[Value]| {
                        exec::run_select(catalog, pool, sel, params, &mut query_cost)
                    };
                    let mut ctx = TriggerCtx {
                        event: change.event,
                        table: &change.table,
                        old: change.old.as_ref(),
                        new: change.new.as_ref(),
                        query_fn: &mut query_fn,
                        cost,
                    };
                    trigger
                        .body
                        .fire(&mut ctx)
                        .map_err(|e| StorageError::TriggerFailed {
                            trigger: trigger.name.clone(),
                            detail: e.to_string(),
                        })?;
                }
                // Work done by trigger-issued queries counts as trigger
                // work plus real page traffic.
                cost.trigger_rows_scanned += query_cost.rows_scanned;
                cost.index_probes += query_cost.index_probes;
                cost.page_hits += query_cost.page_hits;
                cost.page_misses += query_cost.page_misses;
                cost.page_writebacks += query_cost.page_writebacks;
            }
        }
        Ok(())
    }

    fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(StorageError::TransactionAborted(
                "nested transactions are not supported".into(),
            ));
        }
        self.txn = Some(TxnState {
            undo: Vec::new(),
            changes: Vec::new(),
            wrote: false,
        });
        Ok(())
    }

    /// Commits the open transaction: coalesces its buffered row changes,
    /// fires triggers once per net change inside the commit-hook bracket,
    /// and charges one group WAL append when anything was written. A
    /// failing trigger body or hook rejection (strict-mode lock timeout)
    /// aborts the whole transaction instead — undo applied, nothing
    /// published.
    fn commit(&mut self) -> Result<CostReport> {
        let txn = self.txn.take().ok_or(StorageError::NoTransaction)?;
        let mut cost = CostReport::new();
        let changes = coalesce_changes(&self.catalog, txn.changes);
        if !changes.is_empty() {
            let hook = self.commit_hook.clone();
            if let Some(h) = &hook {
                h.begin_apply();
            }
            let fired = self.fire_triggers(&changes, &mut cost);
            let applied = match fired {
                Ok(()) => match &hook {
                    Some(h) => h.commit_apply(&mut cost),
                    None => Ok(()),
                },
                Err(e) => {
                    if let Some(h) = &hook {
                        h.abort_apply();
                    }
                    Err(e)
                }
            };
            if let Err(e) = applied {
                exec::apply_undo(&mut self.catalog, txn.undo)?;
                self.stats.rollbacks += 1;
                return Err(StorageError::TransactionAborted(e.to_string()));
            }
        }
        if txn.wrote {
            cost.wal_appends += 1;
        }
        self.flush_stats_for(&changes);
        self.stats.commits += 1;
        Ok(cost)
    }

    fn rollback(&mut self) -> Result<()> {
        match self.txn.take() {
            Some(txn) => {
                exec::apply_undo(&mut self.catalog, txn.undo)?;
                self.stats.rollbacks += 1;
                Ok(())
            }
            None => Err(StorageError::NoTransaction),
        }
    }
}

/// Coalesces a transaction's row changes to one net change per
/// (table, primary key), preserving first-touch order — N statements
/// touching the same row fire that row's triggers once at commit, and a
/// row inserted then deleted inside the transaction publishes nothing.
fn coalesce_changes(catalog: &Catalog, changes: Vec<RowChange>) -> Vec<RowChange> {
    if changes.len() <= 1 {
        return changes;
    }
    // (table, pk) -> net change; Vec keeps first-touch order and txn
    // change lists are small enough for linear lookup.
    let mut net: Vec<((String, Value), Option<RowChange>)> = Vec::with_capacity(changes.len());
    for change in changes {
        let Ok(pk_pos) = catalog
            .table(&change.table)
            .map(|t| t.schema().primary_key_pos())
        else {
            net.push(((change.table.clone(), Value::Null), Some(change)));
            continue;
        };
        let row_pk = |row: &Option<crate::row::Row>| {
            row.as_ref()
                .map(|r| r.get(pk_pos).clone())
                .unwrap_or(Value::Null)
        };
        // The key a previous change to this row lives under (its current
        // image's pk); an update may then move the row to a new key.
        let old_key = (
            change.table.clone(),
            match change.event {
                TriggerEvent::Insert => row_pk(&change.new),
                _ => row_pk(&change.old),
            },
        );
        let new_key = (
            change.table.clone(),
            match change.event {
                TriggerEvent::Delete => row_pk(&change.old),
                _ => row_pk(&change.new),
            },
        );
        // Look up the MOST RECENT entry under the key: a pk can carry two
        // histories in one transaction (row deleted at pk, another row
        // moved onto it), and only the latest entry is the live one — the
        // older Delete must survive untouched so its trigger still fires.
        let prior = net
            .iter_mut()
            .rev()
            .find(|(k, slot)| *k == old_key && slot.is_some())
            .and_then(|(_, slot)| slot.take());
        let merged = match prior {
            None => Some(change),
            Some(p) => merge_changes(p, change),
        };
        match net
            .iter_mut()
            .rev()
            .find(|(k, slot)| *k == new_key && slot.is_none())
        {
            Some((_, slot)) if merged.is_some() => *slot = merged,
            _ => net.push((new_key, merged)),
        }
    }
    net.into_iter().filter_map(|(_, c)| c).collect()
}

/// Nets two consecutive changes to the same row. `None` means the pair
/// cancels (insert followed by delete).
fn merge_changes(first: RowChange, second: RowChange) -> Option<RowChange> {
    use TriggerEvent as E;
    let table = first.table.clone();
    match (first.event, second.event) {
        (E::Insert, E::Update) => Some(RowChange {
            table,
            event: E::Insert,
            old: None,
            new: second.new,
        }),
        (E::Insert, E::Delete) => None,
        (E::Update, E::Update) => Some(RowChange {
            table,
            event: E::Update,
            old: first.old,
            new: second.new,
        }),
        (E::Update, E::Delete) => Some(RowChange {
            table,
            event: E::Delete,
            old: first.old,
            new: None,
        }),
        (E::Delete, E::Insert) => Some(RowChange {
            table,
            event: E::Update,
            old: first.old,
            new: second.new,
        }),
        // Remaining pairs (insert+insert, delete+update, ...) cannot arise
        // for one primary key; keep both defensively.
        _ => {
            // `first` was already taken out of the net list; re-emitting
            // only `second` would drop it. Fall back to the second change
            // with the first's pre-image where one exists.
            Some(RowChange {
                table,
                event: second.event,
                old: second.old.or(first.old),
                new: second.new,
            })
        }
    }
}
