//! The public database facade.
//!
//! [`Database`] is a cheaply clonable handle (an `Arc` around the engine
//! state) exposing statement execution, DDL, triggers, and transactions.
//! Every call returns an [`ExecOutcome`] carrying both the logical result
//! and the physical [`CostReport`], which the benchmark harness prices into
//! simulated time.
//!
//! # Concurrency model (latch hierarchy + MVCC + 2PL writers)
//!
//! The engine distinguishes **latches** (short-duration protection of
//! physical structures) from **locks** (transaction-duration 2PL on
//! logical rows), and **readers from writers** (see `docs/ISOLATION.md`
//! for the isolation model and `docs/ARCHITECTURE.md` for the full
//! latch-vs-lock discussion):
//!
//! * Latches form a three-level hierarchy replacing the old single
//!   engine mutex: a **catalog read-write latch** (DDL and vacuum take
//!   it exclusively; every statement takes it shared), **per-table
//!   latches** acquired in canonical sorted-name order from the
//!   statement's planned table set ([`crate::catalog::Catalog`]), and an
//!   **epoch mutex** serializing commit-epoch allocation. Statements on
//!   disjoint tables execute fully in parallel; two statements touching
//!   the same table exclude each other exactly as the old mutex did.
//!   Every thread acquires strictly downward in that order and never
//!   blocks on a lock-manager lock while holding any latch, so the
//!   hierarchy cannot deadlock.
//! * **Reads are lock-free snapshot reads.** Every transaction pins the
//!   current commit epoch at `BEGIN`; every autocommit statement pins
//!   the latest committed epoch *after* latching its tables. Scans and
//!   probes resolve row versions against that snapshot
//!   ([`crate::Table::visible`]), so readers never take lock-manager
//!   locks, never wait behind writer transactions, and can never
//!   deadlock.
//! * **Writers keep strict 2PL**: write statements take table-level
//!   intent locks plus per-`(table, pk)` exclusive row locks (escalating
//!   to a table exclusive lock when the predicate does not pin primary
//!   keys). Deadlocks among writers are detected on a waits-for graph;
//!   the youngest cycle member aborts with [`StorageError::Deadlock`].
//!   Write-write version conflicts resolve first-updater-wins: touching
//!   a row whose newest committed version postdates the transaction's
//!   snapshot aborts with [`StorageError::WriteConflict`].
//! * Transactions are **thread-scoped**: `BEGIN` binds a transaction to
//!   the calling thread, and subsequent statements from that thread join
//!   it, so N threads drive N concurrent transactions through one shared
//!   [`Database`] handle (see [`Database::begin_concurrent`]).
//! * COMMIT write-latches exactly the tables the transaction touched,
//!   fires the transaction's coalesced triggers (when any match, under
//!   the exclusive catalog latch) against the *commit-point snapshot*
//!   (latest committed state plus the transaction's own writes — never
//!   another transaction's in-flight rows), stamps every written version
//!   with the new commit epoch under the epoch mutex, publishes the
//!   epoch, and only then — after releasing its latches — runs the
//!   [`CommitHook`]'s deferred cache publication; the hook serializes
//!   per-key publication so two committing writers can never interleave
//!   physical cache operations on one key.
//! * Old row versions are reclaimed by [`Database::vacuum`] (also run
//!   inline every few hundred commits, after the committing statement
//!   has dropped all latches and locks): only versions invisible to the
//!   oldest live snapshot are pruned, so a long-running reader pins the
//!   horizon instead of ever seeing a row disappear.
//! * **Durability is optional** and changes the commit pipeline's tail:
//!   a database opened with [`Database::create_durable`] /
//!   [`Database::open_with_recovery`] serializes each writing commit's
//!   net row changes into a redo record, enqueues it on the group-commit
//!   log writer *under the epoch mutex* (so log order equals epoch
//!   order), stamps its versions, and only **publishes** the epoch to
//!   readers after the record is durable — the log's prefix-durability
//!   guarantee means no reader can ever observe a commit a crash could
//!   still lose, and the deferred cache publication runs strictly after
//!   durability. See `docs/DURABILITY.md` for the log format, the
//!   checkpoint/truncation protocol, and the recovery invariants.

use crate::bufferpool::{BufferPool, PoolStats};
use crate::catalog::Catalog;
use crate::cost::CostReport;
use crate::error::{Result, StorageError};
use crate::exec::{self, ExecView, RowChange, ScanOpts, UndoOp};
use crate::latch::{LatchPlan, TableSet};
use crate::lockmgr::{LatchCounters, LatchStats, LockManager, LockMode, LockStats, TxnId};
use crate::query::{QueryResult, Select, Statement};
use crate::row::RowId;
use crate::schema::{IndexDef, TableSchema};
use crate::table::Snapshot;
use crate::trigger::{Trigger, TriggerCtx, TriggerEvent, TriggerManager};
use crate::value::Value;
use crate::wal::{
    self, CheckpointImage, CheckpointStats, RecoveryReport, TableImage, Wal, WalConfig, WalStats,
    WalTicket,
};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

/// Inline vacuum cadence: after this many write commits the committing
/// statement sweeps all tables for versions older than the oldest live
/// snapshot (cheap when there is no history). Explicit
/// [`Database::vacuum`] calls are always available on top.
const VACUUM_COMMIT_INTERVAL: u64 = 256;

/// Deferred cache-publication step returned by [`CommitHook::commit_apply`].
/// The engine runs it after releasing its latches (but before releasing
/// the transaction's row locks), so slow external effects never
/// serialize unrelated statements.
pub type DeferredPublish = Option<Box<dyn FnOnce() + Send>>;

/// Observer of the commit-time effect pipeline. Registered by middleware
/// (CacheGenie) that turns trigger work into external cache effects: the
/// engine brackets commit-time trigger firing with these callbacks so the
/// middleware can buffer effects and publish them atomically — committed
/// transactions publish exactly once, aborted ones publish nothing.
pub trait CommitHook: Send + Sync {
    /// Called before commit-time triggers fire. Effects produced by
    /// trigger bodies until the matching [`CommitHook::commit_apply`] /
    /// [`CommitHook::abort_apply`] should be buffered, not published.
    fn begin_apply(&self);

    /// Called after every commit-time trigger fired successfully, still
    /// under the commit's latches. The hook seals the buffered effects,
    /// may rewrite `cost`'s cache-op counters to the physical (coalesced)
    /// numbers (`txn_commit` distinguishes a transaction's COMMIT from
    /// a single autocommitted statement, which keeps its per-statement
    /// accounting), and returns the deferred publication step the engine
    /// runs once the latches are released. Returning an error aborts the
    /// transaction — the hook must have discarded its buffer before
    /// returning it.
    ///
    /// # Errors
    ///
    /// Any error (e.g. a strict-mode lock timeout) aborts the commit.
    fn commit_apply(&self, cost: &mut CostReport, txn_commit: bool) -> Result<DeferredPublish>;

    /// Called when the transaction aborts after `begin_apply` (a trigger
    /// body failed). The hook discards the buffered effects.
    fn abort_apply(&self);
}

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer-pool capacity in bytes (the paper's DB machine has 2 GB for
    /// a 10 GB dataset; scaled-down experiments shrink both).
    pub buffer_pool_bytes: usize,
    /// Modelled page size in bytes.
    pub page_bytes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pool_bytes: 64 * 1024 * 1024,
            page_bytes: BufferPool::DEFAULT_PAGE_BYTES,
        }
    }
}

/// Aggregate engine statistics since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Statements executed (all kinds).
    pub statements: u64,
    /// SELECTs executed.
    pub selects: u64,
    /// Write statements executed.
    pub writes: u64,
    /// Trigger bodies fired.
    pub triggers_fired: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
}

/// Lock-free engine counters. Statements on disjoint tables run fully in
/// parallel, so bookkeeping cannot live behind any latch — each counter
/// is an independent atomic, snapshotted into [`DbStats`] on demand.
#[derive(Debug, Default)]
struct DbCounters {
    statements: AtomicU64,
    selects: AtomicU64,
    writes: AtomicU64,
    triggers_fired: AtomicU64,
    commits: AtomicU64,
    rollbacks: AtomicU64,
}

impl DbCounters {
    fn snapshot(&self) -> DbStats {
        DbStats {
            statements: self.statements.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            triggers_fired: self.triggers_fired.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.statements.store(0, Ordering::Relaxed);
        self.selects.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.triggers_fired.store(0, Ordering::Relaxed);
        self.commits.store(0, Ordering::Relaxed);
        self.rollbacks.store(0, Ordering::Relaxed);
    }
}

/// Retained MVCC version state (see [`Database::version_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Superseded committed versions still reachable by some snapshot
    /// (or awaiting vacuum).
    pub history_versions: u64,
    /// Heap rows carrying explicit version metadata (uncommitted writes
    /// plus committed rows vacuum has not yet settled).
    pub versioned_rows: u64,
}

/// Result + physical cost of one statement.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Logical result (rows or affected count).
    pub result: QueryResult,
    /// Physical work performed, including trigger work.
    pub cost: CostReport,
}

/// Per-transaction state. Lives in the engine's thread-keyed transaction
/// map, so each writer thread buffers privately — nothing here is shared
/// between concurrent transactions.
struct TxnState {
    /// Lock-manager identity (monotonic; doubles as transaction age for
    /// youngest-victim deadlock resolution).
    tid: TxnId,
    /// Commit epoch pinned at BEGIN: every read in this transaction
    /// resolves row versions at this snapshot (plus its own writes),
    /// and writes first-updater-wins-check against it. Registered in
    /// [`EngineShared::live_snaps`] so vacuum never prunes a version
    /// this transaction can still see.
    snap: u64,
    /// Every lock target this transaction's statements requested
    /// (recorded before acquisition, so an aborted acquisition is still
    /// covered; deduplicated — statements revisit the same tables and
    /// rows). Commit/rollback release exactly these resources instead of
    /// sweeping every lock-manager shard.
    targets: BTreeSet<(String, Option<Value>)>,
    undo: Vec<UndoOp>,
    /// Row changes buffered for commit-time trigger firing, in statement
    /// order. Coalesced per (table, pk) when the transaction commits.
    changes: Vec<RowChange>,
    /// True once any statement modified rows; commit charges its single
    /// group WAL append only then (read-only transactions write nothing).
    wrote: bool,
}

/// The latched engine core: catalog (tables behind per-table latch
/// cells), buffer pool (internally synchronized), triggers and the
/// commit hook (read-mostly registries behind their own `RwLock`s), and
/// the engine-wide counters. The catalog `RwLock` is the root of the
/// latch hierarchy — see the module docs.
struct Engine {
    catalog: RwLock<Catalog>,
    pool: BufferPool,
    triggers: RwLock<TriggerManager>,
    commit_hook: RwLock<Option<Arc<dyn CommitHook>>>,
    counters: DbCounters,
    /// Latch contention counters (see [`Database::latch_stats`]). The
    /// concurrency audit asserts zero table-latch waits for workloads on
    /// disjoint tables.
    latches: LatchCounters,
    /// Serializes commit-epoch allocation: two commits on disjoint
    /// tables hold no common table latch, so without this mutex both
    /// could stamp their versions at the same epoch. Taken strictly
    /// below every other latch, held only for the stamp-and-publish
    /// instant.
    epoch_mutex: Mutex<()>,
    /// Forces every statement and commit onto the exclusive catalog
    /// latch — the measurable single-latch baseline the concurrency
    /// experiments compare per-table latching against.
    serial_latch: AtomicBool,
    /// Vectorized (batch-at-a-time) scan execution; on by default. Off
    /// reverts to row-at-a-time interpretation, the measurable baseline
    /// for `exp_parallel_scan`.
    batch_scan: AtomicBool,
    /// Worker threads for morsel-driven parallel scans (1 = serial).
    scan_workers: AtomicUsize,
}

impl Engine {
    /// Shared catalog latch, counting a wait if it blocks (a DDL or
    /// vacuum holds it exclusively).
    fn catalog_read(&self) -> RwLockReadGuard<'_, Catalog> {
        match self.catalog.try_read() {
            Some(g) => g,
            None => {
                self.latches.note_catalog_read_wait();
                self.catalog.read()
            }
        }
    }

    /// Exclusive catalog latch, counting a wait if it blocks.
    fn catalog_write(&self) -> RwLockWriteGuard<'_, Catalog> {
        match self.catalog.try_write() {
            Some(g) => g,
            None => {
                self.latches.note_catalog_write_wait();
                self.catalog.write()
            }
        }
    }

    fn scan_opts(&self) -> ScanOpts {
        ScanOpts {
            batch: self.batch_scan.load(Ordering::Relaxed),
            workers: self.scan_workers.load(Ordering::Relaxed).max(1),
        }
    }
}

/// State shared outside the latches: the lock manager and the
/// thread-keyed transaction map. Taking these leaf mutexes while holding
/// a latch is allowed; the reverse order (blocking on a latch while
/// holding one of them) is not, and no code path does it.
struct EngineShared {
    locks: LockManager,
    txns: Mutex<HashMap<ThreadId, TxnState>>,
    /// Transactions killed cross-thread (a [`ConcurrentTxn`] guard
    /// committed/rolled back/dropped on another thread while the owner
    /// thread had the state checked out for an in-flight statement).
    /// Keyed by owner thread, valued by the doomed tid so a stale mark
    /// can never kill a later transaction on the same thread; the owner
    /// rolls the transaction back when its statement completes.
    doomed: Mutex<HashMap<ThreadId, TxnId>>,
    next_tid: AtomicU64,
    /// BEGIN/COMMIT/ROLLBACK statements executed — counted outside the
    /// latches so transaction control never serializes behind an
    /// unrelated statement just to bump a counter. Folded into
    /// [`DbStats::statements`] by [`Database::stats`].
    ctrl_statements: AtomicU64,
    /// Latest **published** committed epoch. Read lock-free by BEGIN and
    /// autocommit statements. Without a durable log it is bumped under
    /// the epoch mutex right after the commit stamps its versions —
    /// while the commit still write-latches every table it touched — so
    /// a snapshot at epoch E always sees a fully stamped state on any
    /// table it latches. With a log it lags [`EngineShared::next_epoch`]:
    /// each committer publishes its own epoch (`fetch_max`) only once
    /// its redo record is durable, so a snapshot can never include a
    /// commit a crash could still lose.
    commit_epoch: AtomicU64,
    /// Highest **allocated** (stamped) epoch. Epochs are allocated and
    /// stamped under the epoch mutex; publication into
    /// [`EngineShared::commit_epoch`] may trail by the log's group-commit
    /// latency. Equal to `commit_epoch` whenever the log is idle (or
    /// absent).
    next_epoch: AtomicU64,
    /// The durable redo log; `None` for a purely in-memory database.
    wal: Option<Arc<Wal>>,
    /// Refcounted epochs of open transactions' snapshots; the minimum is
    /// the vacuum horizon. Autocommit statements hold the shared catalog
    /// latch for their whole execution (which vacuum needs exclusively),
    /// so they never register.
    live_snaps: Mutex<BTreeMap<u64, u64>>,
    /// Write commits since the last inline vacuum sweep.
    commits_since_vacuum: AtomicU64,
    /// Legacy PR-4 reader behaviour: SELECT statements take table-level
    /// shared locks (and therefore block behind writer transactions).
    /// Kept as the measurable baseline for the MVCC experiments; off by
    /// default.
    reader_locks: AtomicBool,
}

impl EngineShared {
    fn alloc_tid(&self) -> TxnId {
        self.next_tid.fetch_add(1, Ordering::Relaxed)
    }
}

/// One lock request a statement needs before executing.
type LockReq = (String, Option<Value>, LockMode);

/// The table a write statement targets, if it is a write.
fn write_target(stmt: &Statement) -> Option<&str> {
    match stmt {
        Statement::Insert(i) => Some(&i.table),
        Statement::Update(u) => Some(&u.table),
        Statement::Delete(d) => Some(&d.table),
        _ => None,
    }
}

/// The table an undo record belongs to.
fn undo_table(op: &UndoOp) -> &str {
    match op {
        UndoOp::Insert { table, .. }
        | UndoOp::Delete { table, .. }
        | UndoOp::Update { table, .. } => table,
    }
}

/// An embedded relational database with row-level triggers.
///
/// Cloning shares the underlying engine. Statements from different
/// threads interleave under two-phase row/table locking (see the module
/// docs); a single thread sees strictly serial behaviour.
///
/// # Example
///
/// ```
/// use genie_storage::{Database, TableSchema, ColumnDef, ValueType, Statement, Insert, Select, Expr, row, Value};
///
/// # fn main() -> Result<(), genie_storage::StorageError> {
/// let db = Database::default();
/// db.create_table(
///     TableSchema::builder("users")
///         .pk("id")
///         .column(ColumnDef::new("name", ValueType::Text).not_null())
///         .build()?,
/// )?;
/// db.execute_sql("INSERT INTO users (id, name) VALUES (1, 'alice')", &[])?;
/// let out = db.execute_sql("SELECT name FROM users WHERE id = $1", &[Value::Int(1)])?;
/// assert_eq!(out.result.rows[0].get(0), &Value::Text("alice".into()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Database {
    engine: Arc<Engine>,
    shared: Arc<EngineShared>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new(DbConfig::default())
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let catalog = self.engine.catalog_read();
        f.debug_struct("Database")
            .field("tables", &catalog.table_names())
            .field("triggers", &self.engine.triggers.read().len())
            .finish()
    }
}

impl Database {
    /// Creates an in-memory database with the given configuration (no
    /// durability; see [`Database::create_durable`]).
    pub fn new(config: DbConfig) -> Self {
        Database::build(config, None)
    }

    fn build(config: DbConfig, wal: Option<Arc<Wal>>) -> Self {
        Database {
            engine: Arc::new(Engine {
                catalog: RwLock::new(Catalog::new()),
                pool: BufferPool::new(config.buffer_pool_bytes, config.page_bytes),
                triggers: RwLock::new(TriggerManager::new()),
                commit_hook: RwLock::new(None),
                counters: DbCounters::default(),
                latches: LatchCounters::default(),
                epoch_mutex: Mutex::new(()),
                serial_latch: AtomicBool::new(false),
                batch_scan: AtomicBool::new(true),
                scan_workers: AtomicUsize::new(1),
            }),
            shared: Arc::new(EngineShared {
                locks: LockManager::new(),
                txns: Mutex::new(HashMap::new()),
                doomed: Mutex::new(HashMap::new()),
                next_tid: AtomicU64::new(1),
                ctrl_statements: AtomicU64::new(0),
                commit_epoch: AtomicU64::new(0),
                next_epoch: AtomicU64::new(0),
                wal,
                live_snaps: Mutex::new(BTreeMap::new()),
                commits_since_vacuum: AtomicU64::new(0),
                reader_locks: AtomicBool::new(false),
            }),
        }
    }

    // ----- durable open / recovery -----

    /// Creates a **durable** database whose commits are backed by a
    /// write-ahead log in `dir` (created if absent). Every writing
    /// commit becomes durable — crash-safe — before it is reported
    /// committed or becomes visible to other snapshots.
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] when `dir` already contains a log (an
    /// existing store must go through [`Database::open_with_recovery`],
    /// never be silently overwritten) or on log I/O failure.
    pub fn create_durable(
        dir: impl AsRef<Path>,
        config: DbConfig,
        wal_config: WalConfig,
    ) -> Result<Database> {
        let wal = Wal::create(dir.as_ref(), wal_config)?;
        Ok(Database::build(config, Some(Arc::new(wal))))
    }

    /// Opens the durable database in `dir`, running crash recovery with
    /// default configuration: replay the checkpoint image plus every
    /// durable committed record, discard a torn tail, and resume
    /// logging. An empty or absent `dir` is a valid fresh start.
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] on log I/O failure or an unrecoverable
    /// (non-prefix) corruption.
    pub fn open_with_recovery(dir: impl AsRef<Path>) -> Result<Database> {
        Ok(Database::open_with(dir, DbConfig::default(), WalConfig::default())?.0)
    }

    /// [`Database::open_with_recovery`] with explicit configuration,
    /// also returning the [`RecoveryReport`] describing what replay did.
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] on log I/O failure or an unrecoverable
    /// (non-prefix) corruption; replaying a valid log never fails.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: DbConfig,
        wal_config: WalConfig,
    ) -> Result<(Database, RecoveryReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            StorageError::Wal(format!("create log directory {}: {e}", dir.display()))
        })?;
        let scan = wal::read_log(dir)?;
        // Make the torn-tail truncation durable *before* appending
        // anything new: a crash during recovery must replay to the same
        // prefix.
        wal::cleanup_log(&scan)?;
        let wal = Wal::resume(dir, wal_config, scan.next_segment)?;
        let db = Database::build(config, Some(Arc::new(wal)));
        let report = db.replay(scan)?;
        Ok((db, report))
    }

    /// Installs a recovered log scan into this freshly built (still
    /// unshared) database: the checkpoint image first, then every
    /// committed record in epoch order. Replay performs **no logging**
    /// — the surviving log already describes exactly this state, so
    /// recovery is idempotent across repeated crashes.
    fn replay(&self, scan: wal::LogScan) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            segments_scanned: scan.segments_scanned,
            bytes_scanned: scan.bytes_scanned,
            truncated: scan
                .truncate
                .as_ref()
                .map(|t| (t.segment, t.offset, t.reason.clone())),
            ..RecoveryReport::default()
        };
        let mut catalog = self.engine.catalog_write();
        let mut cursor = 0u64;
        if let Some(image) = scan.checkpoint {
            cursor = image.epoch;
            report.checkpoint_epoch = image.epoch;
            for img in image.tables {
                let name = img.schema.name().to_owned();
                catalog.create_table(img.schema)?;
                for def in img.indexes {
                    match catalog.create_index(&name, def) {
                        // Implicit unique indexes were re-derived from
                        // the schema by create_table; skip them.
                        Ok(()) | Err(StorageError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                let table = catalog.table_mut(&name)?;
                for row in img.rows {
                    table.recover_insert(row)?;
                }
            }
        }
        for rec in scan.records {
            match rec {
                // DDL may predate the checkpoint that captured its table
                // (the record lands in the post-rotation segment while
                // the capture still sees the table) — idempotent.
                wal::WalRecord::CreateTable(schema) => {
                    report.ddl_records += 1;
                    match catalog.create_table(schema) {
                        Ok(()) | Err(StorageError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                wal::WalRecord::CreateIndex { table, def } => {
                    report.ddl_records += 1;
                    match catalog.create_index(&table, def) {
                        Ok(()) | Err(StorageError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                wal::WalRecord::Commit { epoch, changes } => {
                    if epoch <= cursor {
                        // Folded into the checkpoint image already; the
                        // record survives in the post-rotation segment.
                        report.skipped_commits += 1;
                        continue;
                    }
                    if epoch != cursor + 1 {
                        // Records are enqueued in epoch order and the
                        // log is prefix-durable, so committed epochs are
                        // dense. A gap means the store is damaged.
                        return Err(StorageError::Wal(format!(
                            "commit-epoch gap in log: expected {}, found {epoch}",
                            cursor + 1
                        )));
                    }
                    // Two-phase redo: delete every pre-image, then
                    // insert every post-image. Within one committed
                    // record the pre-image pks are unique (they existed
                    // together before the commit) and so are the
                    // post-image pks — but interleaving them can trip
                    // spurious unique-violations (two rows swapping
                    // pks), so each phase runs to completion first.
                    for ch in &changes {
                        if let Some(old) = &ch.old {
                            catalog.table_mut(&ch.table)?.recover_delete(old)?;
                        }
                    }
                    for ch in &changes {
                        if let Some(new) = &ch.new {
                            catalog.table_mut(&ch.table)?.recover_insert(new.clone())?;
                        }
                    }
                    cursor = epoch;
                    report.replayed_commits += 1;
                }
            }
        }
        // Planner statistics accumulate deltas during replay; settle them
        // so the first post-recovery query plans like the pre-crash one.
        for name in catalog.table_names() {
            catalog.table_mut(&name)?.flush_stats();
        }
        drop(catalog);
        self.shared.commit_epoch.store(cursor, Ordering::Release);
        self.shared.next_epoch.store(cursor, Ordering::Release);
        report.recovered_epoch = cursor;
        Ok(report)
    }

    // ----- DDL -----

    /// Creates a table. DDL takes the exclusive catalog latch, waiting
    /// out every in-flight statement and excluded by none afterwards —
    /// safe to run concurrently with traffic on other tables. On a
    /// durable database the schema is logged (and synced) before this
    /// returns, still under the latch, so no commit record can ever
    /// precede the record of the table it writes to.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] for duplicate names;
    /// [`StorageError::Wal`] if the log rejects the append (fail-stop).
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let ticket = {
            let mut guard = self.engine.catalog_write();
            let payload = self
                .shared
                .wal
                .as_ref()
                .map(|_| wal::encode_create_table(&schema));
            guard.create_table(schema)?;
            match (&self.shared.wal, payload) {
                (Some(w), Some(p)) => Some(w.enqueue(p, 0)?),
                _ => None,
            }
        };
        match ticket {
            Some(t) => self.wait_ticket(&t).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Creates a secondary index (exclusive catalog latch, like all DDL;
    /// logged before returning on a durable database).
    ///
    /// # Errors
    ///
    /// See [`crate::Table::create_index`]; [`StorageError::Wal`] if the
    /// log rejects the append (fail-stop).
    pub fn create_index(&self, table: &str, def: IndexDef) -> Result<()> {
        let ticket = {
            let mut guard = self.engine.catalog_write();
            guard.create_index(table, def.clone())?;
            match &self.shared.wal {
                Some(w) => Some(w.enqueue(wal::encode_create_index(table, &def), 0)?),
                None => None,
            }
        };
        match ticket {
            Some(t) => self.wait_ticket(&t).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Registers a trigger.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] on duplicate trigger names.
    pub fn create_trigger(&self, trigger: Trigger) -> Result<()> {
        self.engine.triggers.write().register(trigger)
    }

    /// Drops a trigger by name; returns whether it existed.
    pub fn drop_trigger(&self, name: &str) -> bool {
        self.engine.triggers.write().drop_trigger(name)
    }

    /// Removes every trigger.
    pub fn clear_triggers(&self) {
        self.engine.triggers.write().clear();
    }

    /// Globally enables or disables trigger firing (Experiment 5 measures
    /// the workload with triggers off).
    pub fn set_triggers_enabled(&self, enabled: bool) {
        self.engine.triggers.write().set_enabled(enabled);
    }

    /// Number of registered triggers.
    pub fn trigger_count(&self) -> usize {
        self.engine.triggers.read().len()
    }

    /// Registers the commit-time effect hook (CacheGenie's cache-batch
    /// pipeline). Replaces any previous hook.
    pub fn set_commit_hook(&self, hook: Arc<dyn CommitHook>) {
        *self.engine.commit_hook.write() = Some(hook);
    }

    /// True while the **calling thread** has an explicit transaction
    /// open. Middleware uses this to defer cache publication (reads
    /// bypass the cache so uncommitted data never becomes visible to
    /// other clients); other threads' transactions do not affect the
    /// answer.
    pub fn in_transaction(&self) -> bool {
        self.shared
            .txns
            .lock()
            .contains_key(&std::thread::current().id())
    }

    /// Total lines of generated trigger source attached to registered
    /// triggers (the paper's §5.2 metric).
    pub fn trigger_source_lines(&self) -> usize {
        self.engine.triggers.read().generated_source_lines()
    }

    // ----- execution tuning knobs -----

    /// Forces every statement and commit onto the exclusive catalog
    /// latch, reproducing the old single-engine-mutex behaviour. This is
    /// the measurable baseline for the latch-sharding experiments; off
    /// by default.
    pub fn set_serial_latch(&self, enabled: bool) {
        self.engine.serial_latch.store(enabled, Ordering::Relaxed);
    }

    /// Toggles vectorized (batch-at-a-time) scan execution. On by
    /// default; off reverts to row-at-a-time interpretation, the
    /// measurable baseline for `exp_parallel_scan`.
    pub fn set_batch_scan(&self, enabled: bool) {
        self.engine.batch_scan.store(enabled, Ordering::Relaxed);
    }

    /// Sets the number of worker threads morsel-driven parallel scans
    /// may use (1 = serial; values above 1 only engage on scans large
    /// enough to amortize thread startup).
    pub fn set_scan_workers(&self, workers: usize) {
        self.engine
            .scan_workers
            .store(workers.max(1), Ordering::Relaxed);
    }

    /// Latch contention counters since the last [`Database::reset_stats`].
    pub fn latch_stats(&self) -> LatchStats {
        self.engine.latches.snapshot()
    }

    // ----- statements -----

    /// Executes any statement with positional parameters (`$1` = index 0).
    ///
    /// Statements join the calling thread's open transaction if one
    /// exists; otherwise they autocommit (locks held for the statement
    /// only, triggers fired immediately).
    ///
    /// # Errors
    ///
    /// All engine errors; a failing trigger aborts the whole statement and
    /// (when autocommitted) rolls back its row changes.
    /// [`StorageError::Deadlock`] means this transaction was chosen as a
    /// deadlock victim — roll it back and retry it.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<ExecOutcome> {
        match stmt {
            Statement::Begin => {
                self.shared.ctrl_statements.fetch_add(1, Ordering::Relaxed);
                self.begin_txn()?;
                Ok(ExecOutcome::default())
            }
            Statement::Commit => {
                self.shared.ctrl_statements.fetch_add(1, Ordering::Relaxed);
                let cost = self.commit_txn()?;
                Ok(ExecOutcome {
                    result: QueryResult::default(),
                    cost,
                })
            }
            Statement::Rollback => {
                self.shared.ctrl_statements.fetch_add(1, Ordering::Relaxed);
                self.rollback_txn()?;
                Ok(ExecOutcome::default())
            }
            other => self.run_statement(other, params),
        }
    }

    /// Parses and executes SQL text.
    ///
    /// # Errors
    ///
    /// [`StorageError::Parse`] for malformed SQL plus all execution errors.
    pub fn execute_sql(&self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt, params)
    }

    /// Convenience wrapper for SELECT statements.
    ///
    /// # Errors
    ///
    /// Same as [`Database::execute`].
    pub fn select(&self, select: &Select, params: &[Value]) -> Result<ExecOutcome> {
        self.execute(&Statement::Select(select.clone()), params)
    }

    /// Runs `f` inside a transaction on the calling thread, committing on
    /// `Ok` and rolling back on `Err`. The transaction reads a snapshot
    /// pinned at entry (plus its own writes); writers elsewhere neither
    /// block its reads nor leak in-flight rows into them, and its own
    /// writes hold 2PL row locks until commit or rollback.
    ///
    /// # Example
    ///
    /// ```
    /// use genie_storage::{Database, StorageError, Value};
    ///
    /// # fn main() -> Result<(), StorageError> {
    /// let db = Database::default();
    /// db.execute_sql("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)", &[])?;
    /// db.execute_sql("INSERT INTO acct VALUES (1, 100), (2, 100)", &[])?;
    /// db.transaction(|t| {
    ///     t.execute_sql("UPDATE acct SET bal = bal - 10 WHERE id = 1", &[])?;
    ///     t.execute_sql("UPDATE acct SET bal = bal + 10 WHERE id = 2", &[])?;
    ///     Ok(())
    /// })?;
    /// // An error rolls everything back:
    /// let r: Result<(), _> = db.transaction(|t| {
    ///     t.execute_sql("UPDATE acct SET bal = 0 WHERE id = 1", &[])?;
    ///     Err(StorageError::Eval("boom".into()))
    /// });
    /// assert!(r.is_err());
    /// let out = db.execute_sql("SELECT bal FROM acct WHERE id = 1", &[])?;
    /// assert_eq!(out.result.rows[0].get(0), &Value::Int(90));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns `f`'s error after rollback, or any commit-time error.
    /// [`StorageError::Deadlock`] and [`StorageError::WriteConflict`]
    /// mean the transaction lost a race — retry it on a fresh snapshot.
    pub fn transaction<T>(&self, f: impl FnOnce(&mut TxnHandle<'_>) -> Result<T>) -> Result<T> {
        self.begin_txn()?;
        // A panicking closure must not leak the transaction's 2PL locks:
        // other threads would block on them forever (lock waits have no
        // timeout). Roll back on unwind.
        struct RollbackOnUnwind<'a> {
            db: &'a Database,
            armed: bool,
        }
        impl Drop for RollbackOnUnwind<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let _ = self.db.rollback_txn();
                }
            }
        }
        let mut guard = RollbackOnUnwind {
            db: self,
            armed: true,
        };
        let result = {
            let mut handle = TxnHandle {
                db: self,
                cost: CostReport::new(),
            };
            f(&mut handle)
        };
        guard.armed = false;
        match result {
            Ok(v) => {
                self.commit_txn()?;
                Ok(v)
            }
            Err(e) => {
                self.rollback_txn()?;
                Err(e)
            }
        }
    }

    /// Opens an explicit transaction bound to the calling thread and
    /// returns a guard for it — the multi-writer API: clone the
    /// [`Database`] into N threads and give each its own concurrent
    /// transaction. Dropping the guard without committing rolls back.
    ///
    /// # Example
    ///
    /// ```
    /// use genie_storage::{Database, Value};
    ///
    /// # fn main() -> Result<(), genie_storage::StorageError> {
    /// let db = Database::default();
    /// db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, n INT)", &[])?;
    /// let mut txn = db.begin_concurrent()?;
    /// txn.execute_sql("INSERT INTO t VALUES (1, 10)", &[])?;
    /// txn.commit()?;
    /// assert_eq!(db.row_count("t")?, 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`StorageError::TransactionAborted`] if this thread already has a
    /// transaction open.
    pub fn begin_concurrent(&self) -> Result<ConcurrentTxn> {
        self.begin_txn()?;
        let thread = std::thread::current().id();
        let tid = self
            .shared
            .txns
            .lock()
            .get(&thread)
            .map(|t| t.tid)
            .expect("begin_txn just inserted");
        Ok(ConcurrentTxn {
            db: self.clone(),
            thread,
            tid,
            open: true,
        })
    }

    // ----- introspection -----

    /// EXPLAIN: returns the whole-query [`QueryPlan`](crate::plan::QueryPlan)
    /// the planner would choose for `select` — driving-table access path,
    /// join order and probe methods, ORDER BY / LIMIT handling — without
    /// executing anything. `params` fills `$n` holes referenced by the
    /// predicate (pass the same vector you would execute with).
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] for an unknown FROM/JOIN table, plus
    /// any predicate-evaluation error (e.g. a missing parameter).
    pub fn explain(&self, select: &Select, params: &[Value]) -> Result<crate::plan::QueryPlan> {
        let engine = &*self.engine;
        let catalog = engine.catalog_read();
        let mut names = BTreeSet::new();
        names.insert(select.from.table.clone());
        for j in &select.joins {
            names.insert(j.table.table.clone());
        }
        let tables = TableSet::latch(&catalog, &LatchPlan::reads(names), &engine.latches)?;
        crate::plan::plan_query(&tables, select, params)
    }

    /// Parses `sql` (a SELECT, or an `EXPLAIN SELECT`) and explains it.
    ///
    /// # Errors
    ///
    /// Parse errors, non-SELECT statements, and the errors of
    /// [`Database::explain`].
    pub fn explain_sql(&self, sql: &str, params: &[Value]) -> Result<crate::plan::QueryPlan> {
        match crate::sql::parse(sql)? {
            Statement::Select(sel) | Statement::Explain(sel) => self.explain(&sel, params),
            other => Err(StorageError::Unsupported(format!(
                "EXPLAIN of non-SELECT statement {other:?}"
            ))),
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> DbStats {
        let mut stats = self.engine.counters.snapshot();
        stats.statements += self.shared.ctrl_statements.load(Ordering::Relaxed);
        stats
    }

    /// Lock-manager statistics (immediate grants, waits, deadlocks).
    pub fn lock_stats(&self) -> LockStats {
        self.shared.locks.stats()
    }

    // ----- MVCC introspection & maintenance -----

    /// The latest committed epoch. Every write commit advances it by
    /// one; snapshots are pinned epochs. Middleware uses it to reason
    /// about fill freshness (a cache fill built from a read at epoch E
    /// is stale once a later commit touched its key — the lease
    /// protocol revokes it).
    pub fn commit_epoch(&self) -> u64 {
        self.shared.commit_epoch.load(Ordering::Acquire)
    }

    /// The oldest epoch a live transaction snapshot still reads at,
    /// if any transaction is open — the vacuum horizon pin.
    pub fn oldest_live_snapshot(&self) -> Option<u64> {
        self.shared.live_snaps.lock().keys().next().copied()
    }

    /// Reclaims row versions no live snapshot can see. Runs inline every
    /// few hundred commits too (after the triggering statement has
    /// dropped every latch and lock); call it explicitly after bulk
    /// churn or in tests. Returns the number of versions pruned.
    ///
    /// Takes the exclusive catalog latch, so it waits out in-flight
    /// statements and reaches all tables without touching per-table
    /// latches. A long-running reader transaction pins the horizon:
    /// versions it can still see survive any number of vacuum calls.
    ///
    /// # Example
    ///
    /// ```
    /// use genie_storage::{Database, Value};
    ///
    /// # fn main() -> Result<(), genie_storage::StorageError> {
    /// let db = Database::default();
    /// db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, n INT)", &[])?;
    /// db.execute_sql("INSERT INTO t VALUES (1, 10)", &[])?;
    /// // Each committed update supersedes a version.
    /// db.execute_sql("UPDATE t SET n = 11 WHERE id = 1", &[])?;
    /// db.execute_sql("UPDATE t SET n = 12 WHERE id = 1", &[])?;
    /// assert!(db.version_stats().history_versions > 0);
    /// db.vacuum();
    /// // No snapshot is open, so all superseded versions are gone.
    /// assert_eq!(db.version_stats().history_versions, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn vacuum(&self) -> u64 {
        let mut catalog = self.engine.catalog_write();
        self.shared.commits_since_vacuum.store(0, Ordering::Relaxed);
        let horizon = self.vacuum_horizon();
        let mut pruned = 0;
        for table in catalog.tables_mut() {
            pruned += table.vacuum(horizon);
        }
        pruned
    }

    /// Point-in-time counts of retained version state (diagnostics,
    /// vacuum tests, and the MVCC benchmark).
    pub fn version_stats(&self) -> VersionStats {
        let catalog = self.engine.catalog_read();
        let mut v = VersionStats::default();
        for (_, cell) in catalog.latches() {
            let t = cell.read();
            v.history_versions += t.history_versions() as u64;
            v.versioned_rows += t.versioned_rows() as u64;
        }
        v
    }

    /// Re-enables the legacy (pre-MVCC) reader behaviour: SELECT
    /// statements take table-level shared locks and therefore block
    /// behind writer transactions' intent locks. Readers still return
    /// correct results either way — this exists solely so the MVCC
    /// experiments can measure snapshot reads against the old blocking
    /// baseline on the same binary.
    pub fn set_reader_table_locks(&self, enabled: bool) {
        self.shared.reader_locks.store(enabled, Ordering::Relaxed);
    }

    // ----- durability -----

    /// True when commits are backed by a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.shared.wal.is_some()
    }

    /// Cumulative log-writer counters (records, bytes, syncs, leader
    /// batches, rotations, checkpoints), when the database is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.shared.wal.as_ref().map(|w| w.stats())
    }

    /// Drains and syncs every enqueued log record (shutdown/test aid —
    /// commits already wait for their own records).
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] once the log is poisoned.
    pub fn wal_flush(&self) -> Result<()> {
        if let Some(w) = &self.shared.wal {
            w.flush_all()?;
        }
        Ok(())
    }

    /// Takes a fuzzy checkpoint now, blocking if another is in flight:
    /// captures every table's committed state at a pinned epoch, writes
    /// it to the checkpoint file atomically, then truncates the log
    /// prefix the image makes redundant. Concurrent commits proceed
    /// throughout (the capture latches one table at a time).
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] if the database has no durable log, or on
    /// snapshot/truncation I/O failure.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        match self.checkpoint_with(true)? {
            Some(stats) => Ok(stats),
            None => unreachable!("a blocking checkpoint always claims the slot"),
        }
    }

    /// Runs an automatic fuzzy checkpoint when the log's commit budget
    /// is spent. Non-blocking: skips silently when another thread's
    /// checkpoint is in flight. A failed auto-checkpoint is swallowed —
    /// it leaves the previous checkpoint and the untruncated log in
    /// place, costing recovery time, never correctness (and an actual
    /// log poisoning resurfaces at the very next commit).
    fn maybe_auto_checkpoint(&self) {
        if let Some(w) = &self.shared.wal {
            if w.checkpoint_due() {
                let _ = self.checkpoint_with(false);
            }
        }
    }

    /// The checkpoint protocol. The ordering is what makes truncating
    /// the log safe:
    ///
    /// 1. **Rotate first.** Everything at or below the sealed segment is
    ///    on disk; every *later* enqueue lands in the new segment, which
    ///    truncation keeps.
    /// 2. **Pin the capture epoch `c = next_epoch` under the epoch
    ///    mutex.** Epoch allocation and log enqueue happen inside one
    ///    epoch-mutex section, so every commit whose record could live
    ///    in a sealed (about-to-be-deleted) segment has epoch `<= c` —
    ///    reading `c` without the mutex could miss a commit that is
    ///    flushed to an old segment but not yet visible in the counter,
    ///    and truncation would delete its only durable copy. The pin in
    ///    `live_snaps` keeps vacuum from pruning versions out from
    ///    under the capture.
    /// 3. **Fuzzy capture** at `Snapshot{c, None}`, one table read
    ///    latch at a time — commits keep flowing; each is either
    ///    `<= c` (inside the image) or `> c` (replayed from the
    ///    surviving log).
    /// 4. **Publish, then truncate.** The image replaces the checkpoint
    ///    file atomically (tmp + fsync + rename + dir fsync); only then
    ///    are sealed segments deleted.
    fn checkpoint_with(&self, blocking: bool) -> Result<Option<CheckpointStats>> {
        let Some(w) = self.shared.wal.clone() else {
            return Err(StorageError::Wal(
                "checkpoint requires a durable database (Database::create_durable)".into(),
            ));
        };
        let Some(_slot) = w.checkpoint_begin(blocking) else {
            return Ok(None);
        };
        let keep_from = w.rotate()?;
        let epoch = {
            let _serialize = self.engine.epoch_mutex.lock();
            let c = self.shared.next_epoch.load(Ordering::Acquire);
            *self.shared.live_snaps.lock().entry(c).or_insert(0) += 1;
            c
        };
        let result = self.capture_checkpoint(epoch, &w, keep_from);
        self.release_snapshot(epoch);
        result.map(Some)
    }

    /// Capture + publish + truncate (steps 3–4 above), with the capture
    /// epoch already pinned by the caller.
    fn capture_checkpoint(
        &self,
        epoch: u64,
        wal_handle: &Wal,
        keep_from: u64,
    ) -> Result<CheckpointStats> {
        let snap = Snapshot {
            epoch,
            writer: None,
        };
        let names = self.engine.catalog_read().table_names();
        let mut tables = Vec::with_capacity(names.len());
        let (mut total_rows, mut total_tables) = (0u64, 0u64);
        for name in names {
            // Re-take the shared catalog latch per table: the capture
            // never holds more than one table read latch (plus the
            // catalog latch) at a time, so it cannot participate in a
            // hold-and-wait cycle with committing writers.
            let catalog = self.engine.catalog_read();
            let Ok(cell) = catalog.latch(&name) else {
                continue;
            };
            let t = cell.read();
            let rows = t.snapshot_rows(&snap);
            total_tables += 1;
            total_rows += rows.len() as u64;
            tables.push(TableImage {
                schema: t.schema().clone(),
                indexes: t.indexes().iter().map(|i| i.def().clone()).collect(),
                rows,
            });
        }
        let image = CheckpointImage { epoch, tables };
        let bytes = wal::write_checkpoint(wal_handle.dir(), &image)?;
        let segments_deleted = wal_handle.delete_segments_below(keep_from)?;
        wal_handle.note_checkpoint();
        Ok(CheckpointStats {
            epoch,
            bytes,
            segments_deleted,
            tables: total_tables,
            rows: total_rows,
        })
    }

    /// An order-insensitive digest of the full **published** committed
    /// state: `commit_epoch`, every table's schema, its index
    /// definitions (sorted by name), and every visible row in
    /// primary-key order — FNV-1a over the log codec's canonical byte
    /// forms. Equal digests mean byte-identical committed states; the
    /// crash-recovery suite compares a recovered store against the
    /// pre-crash original's committed prefix.
    pub fn content_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(hash: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *hash ^= u64::from(b);
                *hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        let mut hash = FNV_OFFSET;
        let epoch = self.shared.commit_epoch.load(Ordering::Acquire);
        mix(&mut hash, &epoch.to_le_bytes());
        let snap = Snapshot {
            epoch,
            writer: None,
        };
        for name in self.engine.catalog_read().table_names() {
            let catalog = self.engine.catalog_read();
            let Ok(cell) = catalog.latch(&name) else {
                continue;
            };
            let t = cell.read();
            let mut buf = Vec::new();
            wal::put_schema(&mut buf, t.schema());
            let mut defs: Vec<&IndexDef> = t.indexes().iter().map(|i| i.def()).collect();
            defs.sort_by(|a, b| a.name.cmp(&b.name));
            for def in defs {
                wal::put_index_def(&mut buf, def);
            }
            for row in t.snapshot_rows(&snap) {
                wal::put_row(&mut buf, &row);
            }
            mix(&mut hash, &buf);
        }
        hash
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.engine.pool.stats()
    }

    /// Resets engine, pool, lock, and latch statistics (between warm-up
    /// and measurement).
    pub fn reset_stats(&self) {
        self.engine.counters.reset();
        self.engine.pool.reset_stats();
        self.engine.latches.reset();
        self.shared.locks.reset_stats();
        self.shared.ctrl_statements.store(0, Ordering::Relaxed);
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<String> {
        self.engine.catalog_read().table_names()
    }

    /// Row count of `table`.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] if absent.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let catalog = self.engine.catalog_read();
        let n = catalog.latch(table)?.read().len();
        Ok(n)
    }

    /// A clone of `table`'s schema.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] if absent.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        let catalog = self.engine.catalog_read();
        let schema = catalog.latch(table)?.read().schema().clone();
        Ok(schema)
    }

    // ----- transaction control (thread-scoped) -----

    fn begin_txn(&self) -> Result<()> {
        let thread = std::thread::current().id();
        let mut txns = self.shared.txns.lock();
        if txns.contains_key(&thread) {
            return Err(StorageError::TransactionAborted(
                "nested transactions are not supported".into(),
            ));
        }
        // Pin the snapshot and register it as live: vacuum prunes only
        // below the minimum registered epoch, so everything this
        // transaction can see stays reachable until it ends. Register,
        // then re-check the epoch: a commit (and its inline vacuum) can
        // land between the lock-free epoch read and the registration,
        // in which case versions the stale epoch needs may already be
        // gone — moving the snapshot forward to the epoch that was
        // current *after* our registration became visible makes it safe
        // (a BEGIN may linearize anywhere within its call).
        let mut snap = self.shared.commit_epoch.load(Ordering::Acquire);
        loop {
            *self.shared.live_snaps.lock().entry(snap).or_insert(0) += 1;
            let now = self.shared.commit_epoch.load(Ordering::Acquire);
            if now == snap {
                break;
            }
            self.release_snapshot(snap);
            snap = now;
        }
        txns.insert(
            thread,
            TxnState {
                tid: self.shared.alloc_tid(),
                snap,
                targets: BTreeSet::new(),
                undo: Vec::new(),
                changes: Vec::new(),
                wrote: false,
            },
        );
        Ok(())
    }

    /// Drops one reference to a pinned snapshot epoch (transaction end).
    fn release_snapshot(&self, epoch: u64) {
        let mut snaps = self.shared.live_snaps.lock();
        if let Some(n) = snaps.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                snaps.remove(&epoch);
            }
        }
    }

    fn commit_txn(&self) -> Result<CostReport> {
        self.commit_txn_for(std::thread::current().id())
    }

    /// Commits `thread`'s transaction: write-latches the tables it
    /// touched (or the whole catalog when its triggers must fire),
    /// coalesces its buffered row changes, fires triggers once per net
    /// change inside the commit-hook bracket, stamps and publishes the
    /// commit epoch, then — latches released — publishes the hook's
    /// deferred cache effects and releases the transaction's locks (2PL
    /// shrinking phase). A failing trigger body or hook rejection aborts
    /// the whole transaction instead — undo applied, nothing published.
    fn commit_txn_for(&self, thread: ThreadId) -> Result<CostReport> {
        let TxnState {
            tid,
            snap,
            targets,
            undo,
            changes,
            wrote,
        } = {
            let txn = self
                .shared
                .txns
                .lock()
                .remove(&thread)
                .ok_or(StorageError::NoTransaction)?;
            // Honor a cross-thread kill that raced an earlier statement:
            // the killer was promised a rollback, so the commit loses.
            let killed = self.shared.doomed.lock().get(&thread) == Some(&txn.tid);
            if killed {
                self.rollback_state(thread, txn)?;
                return Err(StorageError::TransactionAborted(
                    "transaction was rolled back from another thread".into(),
                ));
            }
            txn
        };
        let engine = &*self.engine;
        let mut cost = CostReport::new();
        // Decide up front whether any enabled trigger watches a changed
        // table; only then must the commit run under the exclusive
        // catalog latch (trigger queries may read arbitrary tables, and
        // the hook's effect batch must not interleave with another
        // firing commit). A trigger registered concurrently with this
        // commit does not apply to it — registration linearizes at the
        // registry lock, before or after this read.
        let fire = {
            let trg = engine.triggers.read();
            trg.is_enabled() && changes.iter().any(|c| trg.has_for_table(&c.table))
        };
        let exclusive = fire || engine.serial_latch.load(Ordering::Relaxed);
        let result = if exclusive {
            let mut guard = engine.catalog_write();
            let mut tables = TableSet::exclusive(&mut guard);
            self.commit_latched(&mut tables, tid, undo, changes, wrote, &mut cost, fire)
        } else {
            let catalog = engine.catalog_read();
            let names: BTreeSet<String> = undo
                .iter()
                .map(|op| undo_table(op).to_owned())
                .chain(changes.iter().map(|c| c.table.clone()))
                .collect();
            let latched =
                match TableSet::latch(&catalog, &LatchPlan::writes(names), &engine.latches) {
                    Ok(mut tables) => self.commit_latched(
                        &mut tables,
                        tid,
                        undo,
                        changes,
                        wrote,
                        &mut cost,
                        false,
                    ),
                    Err(e) => Err(e),
                };
            latched
        };
        match result {
            Ok((publish, ticket, vacuum_due)) => {
                self.release_snapshot(snap);
                if let Some(t) = &ticket {
                    match self.wait_ticket(t) {
                        Ok(syncs) => {
                            cost.wal_bytes += t.bytes;
                            cost.wal_syncs += syncs;
                        }
                        Err(e) => {
                            // The log poisoned mid-batch: this commit's
                            // durability is unknown and its epoch stays
                            // unpublished (invisible to every snapshot).
                            // Release the locks so other threads hit the
                            // same fail-stop error instead of hanging.
                            self.release_txn_locks(tid, &targets);
                            return Err(e);
                        }
                    }
                }
                if let Some(p) = publish {
                    p();
                }
                self.release_txn_locks(tid, &targets);
                if vacuum_due {
                    self.vacuum();
                }
                if ticket.is_some() {
                    self.maybe_auto_checkpoint();
                }
                Ok(cost)
            }
            Err(e) => {
                // commit_latched already applied the undo log; finish
                // the abort bookkeeping (mirrors rollback_state).
                {
                    let mut d = self.shared.doomed.lock();
                    if d.get(&thread) == Some(&tid) {
                        d.remove(&thread);
                    }
                }
                engine.counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                self.release_snapshot(snap);
                self.release_txn_locks(tid, &targets);
                Err(e)
            }
        }
    }

    /// The latched portion of COMMIT, shared by the per-table and
    /// exclusive paths. Returns the deferred publication step and
    /// whether an inline vacuum is due (run by the caller after all
    /// latches drop — vacuum needs the exclusive catalog latch).
    #[allow(clippy::too_many_arguments)] // the full TxnState payload plus latch context
    fn commit_latched(
        &self,
        tables: &mut TableSet<'_>,
        tid: TxnId,
        undo: Vec<UndoOp>,
        changes: Vec<RowChange>,
        wrote: bool,
        cost: &mut CostReport,
        fire: bool,
    ) -> Result<(DeferredPublish, Option<WalTicket>, bool)> {
        let engine = &*self.engine;
        let mut publish: DeferredPublish = None;
        let changes = coalesce_changes(tables, changes);
        if !changes.is_empty() {
            // Commit-point snapshot: triggers see every committed state
            // plus this transaction's own (still uncommitted) writes —
            // never another transaction's in-flight rows. The commit is
            // the transaction's serialization point, so cache effects
            // computed here agree with the post-commit database. The
            // snapshot reads at `next_epoch`, not the published
            // `commit_epoch`: an earlier commit on these tables may be
            // stamped but still waiting on the log, and its rows are
            // committed state this commit must see (safe — this commit's
            // record can only become durable after that one, log order
            // being epoch order).
            let trigger_snap = Snapshot {
                epoch: self.shared.next_epoch.load(Ordering::Acquire),
                writer: Some(tid),
            };
            match self.run_commit_bracket(tables, &changes, cost, true, &trigger_snap, fire) {
                Ok(p) => publish = p,
                Err(e) => {
                    exec::apply_undo(tables, undo, tid)?;
                    return Err(StorageError::TransactionAborted(e.to_string()));
                }
            }
        }
        let mut vacuum_due = false;
        let mut ticket = None;
        if wrote {
            cost.wal_appends += 1;
            // Install every version this transaction wrote at the next
            // epoch — all while this commit still write-latches every
            // table it touched, so readers (who latch per statement)
            // see the flip atomically. Without a log the epoch is
            // published here too; with one, publication waits for the
            // redo record (enqueued inside stamp_commit) to be durable.
            let redo = self
                .shared
                .wal
                .as_ref()
                .map(|_| wal::encode_commit(&changes));
            match self.stamp_commit(tables, &undo, tid, redo) {
                Ok(t) => ticket = t,
                Err(e) => {
                    // The log rejected the append (fail-stop poison):
                    // nothing was stamped — abort cleanly. The sealed
                    // cache publication is dropped unpublished.
                    exec::apply_undo(tables, undo, tid)?;
                    return Err(StorageError::TransactionAborted(e.to_string()));
                }
            }
            vacuum_due = self.note_commit_for_vacuum();
        }
        flush_stats_for(tables, &changes);
        engine.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok((publish, ticket, vacuum_due))
    }

    /// Stamps every row version `tid` wrote (derived from its undo log)
    /// with the next commit epoch. On a durable database the redo
    /// record is enqueued **first**, while nothing is stamped yet — a
    /// rejected append is then a clean abort — and the caller publishes
    /// the epoch only after [`Database::wait_ticket`] reports the
    /// record durable. Without a log the epoch publishes immediately.
    /// The caller write-latches every touched table; the epoch mutex
    /// serializes epoch allocation (and log-append order) against
    /// commits on disjoint tables.
    fn stamp_commit(
        &self,
        tables: &mut TableSet<'_>,
        undo: &[UndoOp],
        tid: TxnId,
        redo: Option<Vec<u8>>,
    ) -> Result<Option<WalTicket>> {
        let _serialize = self.engine.epoch_mutex.lock();
        let epoch = self.shared.next_epoch.load(Ordering::Acquire) + 1;
        let ticket = match (&self.shared.wal, redo) {
            (Some(w), Some(mut payload)) => {
                wal::patch_epoch(&mut payload, epoch);
                // Pure memory (the enqueue never blocks on I/O); holding
                // the epoch mutex across it makes log order = epoch
                // order, which is what lets recovery treat any durable
                // prefix as a dense epoch prefix.
                Some(w.enqueue(payload, epoch)?)
            }
            _ => None,
        };
        let mut touched: BTreeMap<&str, Vec<RowId>> = BTreeMap::new();
        for op in undo {
            let (table, rid) = match op {
                UndoOp::Insert { table, rid } => (table.as_str(), *rid),
                UndoOp::Delete { table, rid, .. } => (table.as_str(), *rid),
                UndoOp::Update { table, rid, .. } => (table.as_str(), *rid),
            };
            touched.entry(table).or_default().push(rid);
        }
        for (table, mut rids) in touched {
            rids.sort_unstable();
            rids.dedup();
            if let Ok(t) = tables.table_mut(table) {
                t.commit_rows(rids, tid, epoch);
            }
        }
        self.shared.next_epoch.store(epoch, Ordering::Release);
        if ticket.is_none() {
            self.shared.commit_epoch.store(epoch, Ordering::Release);
        }
        Ok(ticket)
    }

    /// Parks on the log until `ticket`'s record is durable, then (for a
    /// commit record) publishes its epoch to readers. Returns the
    /// physical syncs this thread performed — `0` when it rode another
    /// leader's batch, the amortization group commit exists for.
    fn wait_ticket(&self, ticket: &WalTicket) -> Result<u64> {
        let wal = self.shared.wal.as_ref().expect("wal ticket without a log");
        let syncs = wal.wait_durable(ticket)?;
        if ticket.epoch > 0 {
            // fetch_max, not store: a later commit's waiter may already
            // have published past this epoch (group commit wakes a whole
            // batch at once). Log-prefix durability means every epoch up
            // to the maximum published one is durable.
            self.shared
                .commit_epoch
                .fetch_max(ticket.epoch, Ordering::AcqRel);
        }
        Ok(syncs)
    }

    /// Books one write commit toward the inline-vacuum cadence; true
    /// when the caller should run [`Database::vacuum`] after dropping
    /// its latches and locks.
    fn note_commit_for_vacuum(&self) -> bool {
        let n = self
            .shared
            .commits_since_vacuum
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        if n < VACUUM_COMMIT_INTERVAL {
            return false;
        }
        self.shared.commits_since_vacuum.store(0, Ordering::Relaxed);
        true
    }

    /// The oldest epoch any live snapshot still reads at (the newest
    /// committed epoch when no transaction is open).
    fn vacuum_horizon(&self) -> u64 {
        let snaps = self.shared.live_snaps.lock();
        snaps
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.shared.commit_epoch.load(Ordering::Acquire))
    }

    /// 2PL shrinking phase: releases exactly the resources the
    /// transaction's statements requested (tracked in
    /// [`TxnState::targets`]) plus its wait-graph residue, instead of
    /// sweeping every lock-manager shard.
    fn release_txn_locks(&self, tid: TxnId, targets: &BTreeSet<(String, Option<Value>)>) {
        self.shared
            .locks
            .release_resources(tid, targets.iter().map(|(t, pk)| (t.as_str(), pk.as_ref())));
        self.shared.locks.clear_waiter(tid);
    }

    fn rollback_txn(&self) -> Result<()> {
        self.rollback_txn_for(std::thread::current().id())
    }

    fn rollback_txn_for(&self, thread: ThreadId) -> Result<()> {
        let txn = self
            .shared
            .txns
            .lock()
            .remove(&thread)
            .ok_or(StorageError::NoTransaction)?;
        self.rollback_state(thread, txn)
    }

    /// The one rollback sequence: applies the undo log under write
    /// latches on the written tables, books the rollback, releases the
    /// transaction's locks, and clears a matching cross-thread doom
    /// mark. Every abort path funnels here.
    fn rollback_state(&self, thread: ThreadId, txn: TxnState) -> Result<()> {
        {
            let mut d = self.shared.doomed.lock();
            if d.get(&thread) == Some(&txn.tid) {
                d.remove(&thread);
            }
        }
        let engine = &*self.engine;
        let undone = if engine.serial_latch.load(Ordering::Relaxed) {
            let mut guard = engine.catalog_write();
            let mut tables = TableSet::exclusive(&mut guard);
            exec::apply_undo(&mut tables, txn.undo, txn.tid)
        } else {
            let catalog = engine.catalog_read();
            let names: BTreeSet<String> = txn
                .undo
                .iter()
                .map(|op| undo_table(op).to_owned())
                .collect();
            let applied =
                match TableSet::latch(&catalog, &LatchPlan::writes(names), &engine.latches) {
                    Ok(mut tables) => exec::apply_undo(&mut tables, txn.undo, txn.tid),
                    Err(e) => Err(e),
                };
            applied
        };
        engine.counters.rollbacks.fetch_add(1, Ordering::Relaxed);
        self.release_snapshot(txn.snap);
        self.release_txn_locks(txn.tid, &txn.targets);
        undone
    }

    /// Marks `tid` (owned by `thread`, currently checked out for an
    /// in-flight statement) for rollback by its owner; see
    /// [`EngineShared::doomed`]. No-op if the transaction meanwhile
    /// completed — tids are unique, so a stale mark can never kill a
    /// later transaction.
    fn doom_txn(&self, thread: ThreadId, tid: TxnId) {
        loop {
            // Fast path: the state is (back) in the map — take it down
            // directly.
            if self.rollback_named(thread, tid).is_ok() {
                return;
            }
            // Checked out (or already gone): leave the mark and
            // re-check. The owner's TxnSlot drop may have read the
            // doomed map *before* our insert and reinstated the state —
            // in that case retract the mark and retry the direct
            // rollback, so the transaction can never stay open with the
            // mark unseen.
            self.shared.doomed.lock().insert(thread, tid);
            let present = self
                .shared
                .txns
                .lock()
                .get(&thread)
                .is_some_and(|t| t.tid == tid);
            if !present {
                // Mark stands: either the owner will honor it at
                // statement completion, or the transaction is already
                // finished (unique tids make a stale mark inert).
                return;
            }
            let mut d = self.shared.doomed.lock();
            if d.get(&thread) == Some(&tid) {
                d.remove(&thread);
            }
            drop(d);
        }
    }

    /// Rolls back `thread`'s transaction only if it is still `tid`.
    fn rollback_named(&self, thread: ThreadId, tid: TxnId) -> Result<()> {
        let txn = {
            let mut txns = self.shared.txns.lock();
            match txns.get(&thread) {
                Some(t) if t.tid == tid => txns.remove(&thread),
                _ => None,
            }
        };
        let Some(txn) = txn else {
            return Err(StorageError::NoTransaction);
        };
        self.rollback_state(thread, txn)
    }

    /// Commits `thread`'s transaction only if it is still `tid` — the
    /// guard-facing variant, so a stale [`ConcurrentTxn`] can never
    /// commit a later, unrelated transaction on the same thread.
    fn commit_txn_named(&self, thread: ThreadId, tid: TxnId) -> Result<CostReport> {
        {
            let txns = self.shared.txns.lock();
            match txns.get(&thread) {
                Some(t) if t.tid == tid => {}
                _ => return Err(StorageError::NoTransaction),
            }
        }
        // The tid matched moments ago; commit_txn_for re-removes it. A
        // racing SQL COMMIT/ROLLBACK on the owner thread between the two
        // locks surfaces as NoTransaction, which is the right answer.
        self.commit_txn_for(thread)
    }

    // ----- statement execution -----

    /// Executes one non-transaction-control statement: plans its lock
    /// set, acquires it (fast path under the shared catalog latch;
    /// blocking path with every latch released), latches the statement's
    /// tables, runs the statement body, then publishes deferred effects
    /// and releases statement-duration locks.
    ///
    /// The calling thread's [`TxnState`] (if any) is *removed* from the
    /// transaction map for the statement's duration and reinstated at
    /// the end — so a [`ConcurrentTxn::commit`]/`rollback` racing an
    /// in-flight statement from another thread fails cleanly with
    /// [`StorageError::NoTransaction`] instead of corrupting the
    /// transaction mid-statement.
    fn run_statement(&self, stmt: &Statement, params: &[Value]) -> Result<ExecOutcome> {
        let thread = std::thread::current().id();
        // The slot guard reinstates the checked-out state on every exit —
        // normal return, error, or unwind — unless a cross-thread kill
        // doomed the transaction meanwhile, in which case it rolls the
        // transaction back instead of orphaning its locks.
        struct TxnSlot<'a> {
            db: &'a Database,
            thread: ThreadId,
            state: Option<TxnState>,
        }
        impl Drop for TxnSlot<'_> {
            fn drop(&mut self) {
                let Some(state) = self.state.take() else {
                    return;
                };
                let doomed = {
                    let mut d = self.db.shared.doomed.lock();
                    if d.get(&self.thread) == Some(&state.tid) {
                        d.remove(&self.thread);
                        true
                    } else {
                        false
                    }
                };
                if doomed {
                    let _ = self.db.rollback_state(self.thread, state);
                } else {
                    self.db.shared.txns.lock().insert(self.thread, state);
                }
            }
        }
        let mut slot = TxnSlot {
            db: self,
            thread,
            state: self.shared.txns.lock().remove(&thread),
        };
        self.run_statement_locked(stmt, params, slot.state.as_mut())
    }

    fn run_statement_locked(
        &self,
        stmt: &Statement,
        params: &[Value],
        mut txn: Option<&mut TxnState>,
    ) -> Result<ExecOutcome> {
        let autocommit = txn.is_none();
        let tid = match &txn {
            Some(t) => t.tid,
            None => self.shared.alloc_tid(),
        };
        // Statement-duration (autocommit) locks must release on every
        // exit, including a panic unwinding out of the executor — leaked
        // locks block other threads forever.
        struct AutoRelease<'a> {
            locks: &'a LockManager,
            tid: TxnId,
            armed: bool,
        }
        impl Drop for AutoRelease<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.locks.release_all(self.tid);
                }
            }
        }
        let mut auto_release = AutoRelease {
            locks: &self.shared.locks,
            tid,
            armed: autocommit,
        };

        let engine = &*self.engine;
        let mut catalog = engine.catalog_read();
        let reqs = plan_locks(
            &catalog,
            stmt,
            params,
            self.shared.reader_locks.load(Ordering::Relaxed),
            &engine.latches,
        )?;
        if let Some(t) = txn.as_deref_mut() {
            // Record before acquiring: even an acquisition aborted by
            // deadlock leaves its partial grants covered at release.
            t.targets
                .extend(reqs.iter().map(|(tb, pk, _)| (tb.clone(), pk.clone())));
        }
        let blocked_from = reqs.iter().position(|(t, pk, m)| {
            self.shared
                .locks
                .try_acquire(tid, t, pk.as_ref(), *m)
                .is_none()
        });
        if let Some(first) = blocked_from {
            // Contended: never wait on a lock while holding any latch
            // (the lock holder may need our tables' latches to finish
            // its own commit). The granted prefix stays held; only the
            // remainder (still in canonical order) is acquired
            // blockingly, then the catalog latch is re-taken.
            drop(catalog);
            for (t, pk, m) in &reqs[first..] {
                // On failure, `auto_release` (autocommit) frees the
                // partial grants; a transaction keeps its locks until
                // its own rollback.
                self.shared.locks.acquire(tid, t, pk.as_ref(), *m)?;
            }
            catalog = engine.catalog_read();
        }

        // Escalate to the exclusive catalog latch when per-table
        // latching cannot carry the statement: DDL restructures the
        // catalog itself; the serial-latch baseline serializes
        // everything by design; and an autocommit write whose target
        // table has an enabled trigger fires that trigger immediately —
        // trigger queries may read arbitrary tables, and the commit
        // hook's effect batch must not interleave with another firing
        // statement.
        let exclusive = matches!(
            stmt,
            Statement::CreateTable(_) | Statement::CreateIndex { .. }
        ) || engine.serial_latch.load(Ordering::Relaxed)
            || (autocommit && stmt.is_write() && {
                let trg = engine.triggers.read();
                trg.is_enabled() && write_target(stmt).is_some_and(|t| trg.has_for_table(t))
            });

        let result = if exclusive {
            drop(catalog);
            let mut guard = engine.catalog_write();
            match stmt {
                Statement::CreateTable(schema) => {
                    engine.counters.statements.fetch_add(1, Ordering::Relaxed);
                    guard.create_table(schema.clone()).and_then(|()| {
                        let ticket = match &self.shared.wal {
                            Some(w) => Some(w.enqueue(wal::encode_create_table(schema), 0)?),
                            None => None,
                        };
                        Ok((ExecOutcome::default(), None, false, ticket))
                    })
                }
                Statement::CreateIndex { table, def } => {
                    engine.counters.statements.fetch_add(1, Ordering::Relaxed);
                    guard.create_index(table, def.clone()).and_then(|()| {
                        let ticket = match &self.shared.wal {
                            Some(w) => Some(w.enqueue(wal::encode_create_index(table, def), 0)?),
                            None => None,
                        };
                        Ok((ExecOutcome::default(), None, false, ticket))
                    })
                }
                _ => {
                    let mut tables = TableSet::exclusive(&mut guard);
                    self.execute_body(&mut tables, stmt, params, txn, tid, true)
                }
            }
        } else {
            let r = LatchPlan::for_statement(&catalog, stmt, &engine.latches).and_then(|plan| {
                let mut tables = TableSet::latch(&catalog, &plan, &engine.latches)?;
                self.execute_body(&mut tables, stmt, params, txn, tid, false)
            });
            drop(catalog);
            r
        };

        match result {
            Ok((mut outcome, publish, vacuum_due, ticket)) => {
                if let Some(t) = &ticket {
                    // Durability wait, strictly after every latch above
                    // dropped — an fsync must never serialize unrelated
                    // statements. An error here fail-stops the statement
                    // (autocommit locks release via the drop guard).
                    let syncs = self.wait_ticket(t)?;
                    outcome.cost.wal_bytes += t.bytes;
                    outcome.cost.wal_syncs += syncs;
                }
                if let Some(p) = publish {
                    p();
                }
                if autocommit {
                    // The statement's lock set is known exactly: release
                    // just those resources instead of sweeping every
                    // shard (the read path runs this per SELECT).
                    auto_release.armed = false;
                    if !reqs.is_empty() {
                        self.shared.locks.release_resources(
                            tid,
                            reqs.iter().map(|(t, pk, _)| (t.as_str(), pk.as_ref())),
                        );
                    }
                }
                if vacuum_due {
                    self.vacuum();
                }
                if ticket.is_some() {
                    self.maybe_auto_checkpoint();
                }
                Ok(outcome)
            }
            Err(e) => Err(e),
        }
    }

    /// The latched portion of statement execution, running against the
    /// statement's [`TableSet`]. Reads resolve against the transaction's
    /// pinned snapshot (or the latest committed epoch for autocommit —
    /// loaded *after* latching, so the epoch's versions are fully
    /// visible on every latched table); writes carry an [`ExecView`]
    /// pairing that snapshot with the latest epoch for constraint
    /// probes. `fire` says whether autocommit triggers may fire here
    /// (true only on the exclusive-latch path).
    fn execute_body(
        &self,
        tables: &mut TableSet<'_>,
        stmt: &Statement,
        params: &[Value],
        txn: Option<&mut TxnState>,
        tid: TxnId,
        fire: bool,
    ) -> Result<(ExecOutcome, DeferredPublish, bool, Option<WalTicket>)> {
        let engine = &*self.engine;
        engine.counters.statements.fetch_add(1, Ordering::Relaxed);
        let latest = self.shared.commit_epoch.load(Ordering::Acquire);
        let (read_snap, txn_snap_epoch) = match &txn {
            Some(t) => (
                Snapshot {
                    epoch: t.snap,
                    writer: Some(t.tid),
                },
                t.snap,
            ),
            None => (
                Snapshot {
                    epoch: latest,
                    writer: None,
                },
                latest,
            ),
        };
        let view = ExecView {
            snap: Snapshot {
                epoch: txn_snap_epoch,
                writer: Some(tid),
            },
            latest_epoch: latest,
        };
        let mut cost = CostReport::new();
        match stmt {
            Statement::Select(sel) => {
                engine.counters.selects.fetch_add(1, Ordering::Relaxed);
                let result = exec::run_select(
                    tables,
                    &engine.pool,
                    sel,
                    params,
                    &mut cost,
                    &read_snap,
                    &engine.scan_opts(),
                )?;
                Ok((ExecOutcome { result, cost }, None, false, None))
            }
            Statement::Explain(sel) => {
                let plan = crate::plan::plan_query(tables, sel, params)?;
                let rows = plan
                    .lines()
                    .into_iter()
                    .map(|l| crate::row::Row::new(vec![Value::Text(l)]))
                    .collect();
                Ok((
                    ExecOutcome {
                        result: QueryResult {
                            columns: vec!["QUERY PLAN".to_owned()],
                            rows,
                            rows_affected: 0,
                        },
                        cost,
                    },
                    None,
                    false,
                    None,
                ))
            }
            Statement::Insert(ins) => {
                engine.counters.writes.fetch_add(1, Ordering::Relaxed);
                let effect = exec::run_insert(tables, &engine.pool, ins, params, &mut cost, &view)?;
                self.finish_write(tables, effect, &mut cost, txn, &view, fire)
            }
            Statement::Update(upd) => {
                engine.counters.writes.fetch_add(1, Ordering::Relaxed);
                let effect = exec::run_update(tables, &engine.pool, upd, params, &mut cost, &view)?;
                self.finish_write(tables, effect, &mut cost, txn, &view, fire)
            }
            Statement::Delete(del) => {
                engine.counters.writes.fetch_add(1, Ordering::Relaxed);
                let effect = exec::run_delete(tables, &engine.pool, del, params, &mut cost, &view)?;
                self.finish_write(tables, effect, &mut cost, txn, &view, fire)
            }
            Statement::CreateTable(_) | Statement::CreateIndex { .. } => {
                unreachable!("DDL runs under the exclusive catalog latch")
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                unreachable!("transaction control handled in execute()")
            }
        }
    }

    /// Completes a write statement. Inside a transaction the row changes
    /// and undo log buffer in [`TxnState`] — triggers fire (coalesced) at
    /// COMMIT, so an aborted transaction publishes no cache effects and
    /// the WAL sees one group append per transaction. Autocommit keeps the
    /// immediate path: the hook bracket runs now (with triggers firing
    /// when `fire` — the exclusive-latch path — otherwise provably no
    /// trigger matches), and the statement pays its own WAL append — but
    /// only when it actually changed rows; a write matching nothing
    /// appends nothing.
    fn finish_write(
        &self,
        tables: &mut TableSet<'_>,
        effect: exec::WriteEffect,
        cost: &mut CostReport,
        txn: Option<&mut TxnState>,
        view: &ExecView,
        fire: bool,
    ) -> Result<(ExecOutcome, DeferredPublish, bool, Option<WalTicket>)> {
        if let Some(txn) = txn {
            txn.undo.extend(effect.undo);
            txn.wrote |= !effect.changes.is_empty();
            txn.changes.extend(effect.changes);
            return Ok((
                ExecOutcome {
                    result: QueryResult::affected(effect.affected),
                    cost: *cost,
                },
                None,
                false,
                None,
            ));
        }
        // Autocommit: triggers fire now, against the latest committed
        // state plus this statement's own rows (the statement is its own
        // commit point). `next_epoch`, not `commit_epoch`: a stamped but
        // not-yet-durable commit on these tables is committed state this
        // statement must see (see commit_latched).
        let trigger_snap = Snapshot {
            epoch: self.shared.next_epoch.load(Ordering::Acquire),
            writer: view.snap.writer,
        };
        match self.run_commit_bracket(tables, &effect.changes, cost, false, &trigger_snap, fire) {
            Ok(publish) => {
                let mut vacuum_due = false;
                let mut ticket = None;
                if !effect.undo.is_empty() {
                    cost.wal_appends += 1; // the statement is its own commit point
                    let redo = self
                        .shared
                        .wal
                        .as_ref()
                        .map(|_| wal::encode_commit(&effect.changes));
                    match self.stamp_commit(tables, &effect.undo, view.tid(), redo) {
                        Ok(t) => ticket = t,
                        Err(e) => {
                            // Poisoned log: nothing stamped, roll the
                            // statement's rows back, publish nothing.
                            exec::apply_undo(tables, effect.undo, view.tid())?;
                            return Err(e);
                        }
                    }
                    vacuum_due = self.note_commit_for_vacuum();
                }
                flush_stats_for(tables, &effect.changes);
                Ok((
                    ExecOutcome {
                        result: QueryResult::affected(effect.affected),
                        cost: *cost,
                    },
                    publish,
                    vacuum_due,
                    ticket,
                ))
            }
            Err(e) => {
                // A failing trigger (or hook rejection) aborts the
                // statement: undo its row changes, publish nothing.
                exec::apply_undo(tables, effect.undo, view.tid())?;
                Err(e)
            }
        }
    }

    /// The commit-hook bracket shared by transaction COMMIT and
    /// autocommitted write statements: open the effect buffer, fire
    /// triggers over `changes` (when `fire`; per-table-latched commits
    /// run with `fire == false` because no enabled trigger matches any
    /// changed table, so the bracket is empty and interleaving with a
    /// concurrent firing commit is harmless), then either seal the
    /// buffered effects (returning the deferred publication step) or
    /// discard them on a trigger failure. The caller handles undo and
    /// error wrapping.
    fn run_commit_bracket(
        &self,
        tables: &TableSet<'_>,
        changes: &[RowChange],
        cost: &mut CostReport,
        txn_commit: bool,
        trigger_snap: &Snapshot,
        fire: bool,
    ) -> Result<DeferredPublish> {
        let hook = self.engine.commit_hook.read().clone();
        if let Some(h) = &hook {
            h.begin_apply();
        }
        let fired = if fire {
            self.fire_triggers(tables, changes, cost, trigger_snap)
        } else {
            Ok(())
        };
        match fired {
            Ok(()) => match &hook {
                Some(h) => h.commit_apply(cost, txn_commit),
                None => Ok(None),
            },
            Err(e) => {
                if let Some(h) = &hook {
                    h.abort_apply();
                }
                Err(e)
            }
        }
    }

    /// Fires commit-time triggers. Their queries read `trigger_snap`:
    /// the latest committed state plus the committing transaction's own
    /// writes — never another transaction's uncommitted rows. Runs only
    /// on the exclusive-latch path, where `tables` covers every table a
    /// trigger query might read; trigger queries run serially (no
    /// vectorized parallel scans inside a commit).
    fn fire_triggers(
        &self,
        tables: &TableSet<'_>,
        changes: &[RowChange],
        cost: &mut CostReport,
        trigger_snap: &Snapshot,
    ) -> Result<()> {
        let engine = &*self.engine;
        let triggers = engine.triggers.read();
        if changes.is_empty() || !triggers.is_enabled() {
            return Ok(());
        }
        let opts = ScanOpts::serial();
        for change in changes {
            let matching = triggers.matching(&change.table, change.event);
            for trigger in matching {
                engine
                    .counters
                    .triggers_fired
                    .fetch_add(1, Ordering::Relaxed);
                cost.triggers_fired += 1;
                let mut query_cost = CostReport::new();
                {
                    let pool = &engine.pool;
                    let mut query_fn = |sel: &Select, params: &[Value]| {
                        exec::run_select(
                            tables,
                            pool,
                            sel,
                            params,
                            &mut query_cost,
                            trigger_snap,
                            &opts,
                        )
                    };
                    let mut ctx = TriggerCtx {
                        event: change.event,
                        table: &change.table,
                        old: change.old.as_ref(),
                        new: change.new.as_ref(),
                        query_fn: &mut query_fn,
                        cost,
                    };
                    trigger
                        .body
                        .fire(&mut ctx)
                        .map_err(|e| StorageError::TriggerFailed {
                            trigger: trigger.name.clone(),
                            detail: e.to_string(),
                        })?;
                }
                // Work done by trigger-issued queries counts as trigger
                // work plus real page traffic.
                cost.trigger_rows_scanned += query_cost.rows_scanned;
                cost.index_probes += query_cost.index_probes;
                cost.page_hits += query_cost.page_hits;
                cost.page_misses += query_cost.page_misses;
                cost.page_writebacks += query_cost.page_writebacks;
            }
        }
        Ok(())
    }
}

/// Plans the lock set a statement needs, in canonical order (table name,
/// then table-level before row-level, then row key): pk-targeted writes
/// take a table intent lock plus exclusive row locks; writes whose
/// predicate does not pin primary keys escalate to a table-level
/// exclusive lock. **Scans take no locks at all** — they read a version
/// snapshot — unless `lock_reads` re-enables the legacy table-shared
/// lock behaviour (the measurable pre-MVCC baseline). DDL relies on the
/// exclusive catalog latch alone. Runs under the shared catalog latch,
/// taking brief counted per-table read latches to extract primary keys.
fn plan_locks(
    catalog: &Catalog,
    stmt: &Statement,
    params: &[Value],
    lock_reads: bool,
    counters: &LatchCounters,
) -> Result<Vec<LockReq>> {
    let mut reqs: Vec<LockReq> = Vec::new();
    match stmt {
        Statement::Select(sel) => {
            let mut tables: BTreeSet<&str> = BTreeSet::new();
            tables.insert(sel.from.table.as_str());
            for j in &sel.joins {
                tables.insert(j.table.table.as_str());
            }
            for t in tables {
                catalog.latch(t)?;
                if lock_reads {
                    reqs.push((t.to_owned(), None, LockMode::Shared));
                }
            }
        }
        Statement::Insert(ins) => {
            let guard = crate::latch::read_counted(catalog.latch(&ins.table)?, counters);
            let table = &*guard;
            let schema = table.schema();
            let pk_pos = if ins.columns.is_empty() {
                Some(schema.primary_key_pos())
            } else {
                ins.columns.iter().position(|c| c == schema.primary_key())
            };
            let mut keys = Vec::with_capacity(ins.rows.len());
            let mut resolved = true;
            for row in &ins.rows {
                let key = pk_pos
                    .and_then(|p| row.get(p))
                    .and_then(|e| crate::plan::eval_const(e, params).ok())
                    .and_then(|v| crate::plan::coerce_for_column(table, schema.primary_key(), &v));
                match key {
                    Some(k) => keys.push(k),
                    None => {
                        resolved = false;
                        break;
                    }
                }
            }
            push_write_locks(
                &mut reqs,
                &ins.table,
                if resolved { Some(keys) } else { None },
            );
        }
        Statement::Update(upd) => {
            let guard = crate::latch::read_counted(catalog.latch(&upd.table)?, counters);
            let table = &*guard;
            let mut keys =
                crate::plan::pk_target_keys(table, &upd.table, upd.predicate.as_ref(), params)?;
            // An assignment to the pk column moves the row; lock the
            // destination key too (escalate when it is not constant).
            if let Some(ks) = &mut keys {
                let pk = table.schema().primary_key();
                for (col, e) in &upd.sets {
                    if col == pk {
                        match crate::plan::eval_const(e, params)
                            .ok()
                            .and_then(|v| crate::plan::coerce_for_column(table, pk, &v))
                        {
                            Some(v) => ks.push(v),
                            None => {
                                keys = None;
                                break;
                            }
                        }
                    }
                }
            }
            push_write_locks(&mut reqs, &upd.table, keys);
        }
        Statement::Delete(del) => {
            let guard = crate::latch::read_counted(catalog.latch(&del.table)?, counters);
            let table = &*guard;
            let keys =
                crate::plan::pk_target_keys(table, &del.table, del.predicate.as_ref(), params)?;
            push_write_locks(&mut reqs, &del.table, keys);
        }
        // EXPLAIN only plans; DDL and transaction control use the latch.
        Statement::Explain(_)
        | Statement::CreateTable(_)
        | Statement::CreateIndex { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => {}
    }
    reqs.sort_by(|a, b| (&a.0, &a.1, a.2).cmp(&(&b.0, &b.1, b.2)));
    reqs.dedup();
    Ok(reqs)
}

fn push_write_locks(reqs: &mut Vec<LockReq>, table: &str, keys: Option<Vec<Value>>) {
    match keys {
        Some(keys) => {
            reqs.push((table.to_owned(), None, LockMode::IntentExclusive));
            for k in keys {
                reqs.push((table.to_owned(), Some(k), LockMode::Exclusive));
            }
        }
        None => reqs.push((table.to_owned(), None, LockMode::Exclusive)),
    }
}

/// Guard for one thread-scoped concurrent transaction (see
/// [`Database::begin_concurrent`]). All methods must be called on the
/// thread that opened it.
pub struct ConcurrentTxn {
    db: Database,
    thread: ThreadId,
    tid: TxnId,
    open: bool,
}

impl std::fmt::Debug for ConcurrentTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentTxn")
            .field("open", &self.open)
            .finish()
    }
}

impl ConcurrentTxn {
    fn check_thread(&self) -> Result<()> {
        if std::thread::current().id() != self.thread {
            return Err(StorageError::Unsupported(
                "ConcurrentTxn used from a thread other than its owner".into(),
            ));
        }
        Ok(())
    }

    /// Executes a statement inside this transaction.
    ///
    /// # Errors
    ///
    /// Engine errors; on [`StorageError::Deadlock`] call
    /// [`ConcurrentTxn::rollback`] and retry the whole transaction.
    pub fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<ExecOutcome> {
        self.check_thread()?;
        self.db.execute(stmt, params)
    }

    /// Parses and executes SQL inside this transaction.
    ///
    /// # Errors
    ///
    /// Parse and engine errors.
    pub fn execute_sql(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        self.check_thread()?;
        self.db.execute_sql(sql, params)
    }

    /// Commits; returns the commit-time cost (trigger firing, WAL).
    /// Works from any thread — the transaction's state is keyed by its
    /// owner thread, which this guard remembers.
    ///
    /// # Errors
    ///
    /// [`StorageError::TransactionAborted`] when a commit-time trigger or
    /// hook aborts the transaction (already rolled back).
    pub fn commit(mut self) -> Result<CostReport> {
        self.open = false;
        let r = self.db.commit_txn_named(self.thread, self.tid);
        if matches!(r, Err(StorageError::NoTransaction)) {
            // Raced a statement in flight on the owner thread: the state
            // is checked out of the map. Doom the transaction so the
            // owner rolls it back (releasing its locks) when the
            // statement completes; the commit itself fails.
            self.db.doom_txn(self.thread, self.tid);
        }
        r
    }

    /// Rolls back explicitly (dropping the guard does the same). Works
    /// from any thread.
    ///
    /// # Errors
    ///
    /// Undo-application errors (engine corruption; should not happen).
    pub fn rollback(mut self) -> Result<()> {
        self.open = false;
        let r = self.db.rollback_named(self.thread, self.tid);
        if matches!(r, Err(StorageError::NoTransaction)) {
            self.db.doom_txn(self.thread, self.tid);
            return Ok(()); // the owner thread completes the rollback
        }
        r
    }
}

impl Drop for ConcurrentTxn {
    fn drop(&mut self) {
        if self.open {
            // Keyed by the owner thread, so a guard dropped on another
            // thread still rolls back — never leaking the transaction's
            // locks. If a statement holds the state checked out right
            // now, doom the transaction instead: the owner thread rolls
            // it back the moment the statement completes.
            if matches!(
                self.db.rollback_named(self.thread, self.tid),
                Err(StorageError::NoTransaction)
            ) {
                self.db.doom_txn(self.thread, self.tid);
            }
        }
    }
}

/// Handle passed to [`Database::transaction`] closures.
pub struct TxnHandle<'a> {
    db: &'a Database,
    cost: CostReport,
}

impl TxnHandle<'_> {
    /// Executes a statement inside the transaction.
    ///
    /// # Errors
    ///
    /// Engine errors; the caller's closure should propagate them so the
    /// transaction rolls back.
    pub fn execute(&mut self, stmt: &Statement, params: &[Value]) -> Result<QueryResult> {
        let out = self.db.execute(stmt, params)?;
        self.cost += out.cost;
        Ok(out.result)
    }

    /// Parses and executes SQL inside the transaction.
    ///
    /// # Errors
    ///
    /// Parse and engine errors.
    pub fn execute_sql(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt, params)
    }

    /// Physical cost accumulated by this transaction so far.
    pub fn cost(&self) -> CostReport {
        self.cost
    }
}

impl std::fmt::Debug for TxnHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnHandle")
            .field("cost", &self.cost)
            .finish()
    }
}

/// Applies pending (statement/commit-batched) statistics deltas for
/// every table named in `changes`.
fn flush_stats_for(tables: &TableSet<'_>, changes: &[RowChange]) {
    let names: BTreeSet<&str> = changes.iter().map(|c| c.table.as_str()).collect();
    for t in names {
        if let Ok(table) = tables.table(t) {
            table.flush_stats();
        }
    }
}

/// Coalesces a transaction's row changes to one net change per
/// (table, primary key), preserving first-touch order — N statements
/// touching the same row fire that row's triggers once at commit, and a
/// row inserted then deleted inside the transaction publishes nothing.
fn coalesce_changes(tables: &TableSet<'_>, changes: Vec<RowChange>) -> Vec<RowChange> {
    if changes.len() <= 1 {
        return changes;
    }
    // (table, pk) -> net change; Vec keeps first-touch order and txn
    // change lists are small enough for linear lookup.
    let mut net: Vec<((String, Value), Option<RowChange>)> = Vec::with_capacity(changes.len());
    for change in changes {
        let Ok(pk_pos) = tables
            .table(&change.table)
            .map(|t| t.schema().primary_key_pos())
        else {
            net.push(((change.table.clone(), Value::Null), Some(change)));
            continue;
        };
        let row_pk = |row: &Option<crate::row::Row>| {
            row.as_ref()
                .map(|r| r.get(pk_pos).clone())
                .unwrap_or(Value::Null)
        };
        // The key a previous change to this row lives under (its current
        // image's pk); an update may then move the row to a new key.
        let old_key = (
            change.table.clone(),
            match change.event {
                TriggerEvent::Insert => row_pk(&change.new),
                _ => row_pk(&change.old),
            },
        );
        let new_key = (
            change.table.clone(),
            match change.event {
                TriggerEvent::Delete => row_pk(&change.old),
                _ => row_pk(&change.new),
            },
        );
        // Look up the MOST RECENT entry under the key: a pk can carry two
        // histories in one transaction (row deleted at pk, another row
        // moved onto it), and only the latest entry is the live one — the
        // older Delete must survive untouched so its trigger still fires.
        let prior = net
            .iter_mut()
            .rev()
            .find(|(k, slot)| *k == old_key && slot.is_some())
            .and_then(|(_, slot)| slot.take());
        let merged = match prior {
            None => Some(change),
            Some(p) => merge_changes(p, change),
        };
        match net
            .iter_mut()
            .rev()
            .find(|(k, slot)| *k == new_key && slot.is_none())
        {
            Some((_, slot)) if merged.is_some() => *slot = merged,
            _ => net.push((new_key, merged)),
        }
    }
    net.into_iter().filter_map(|(_, c)| c).collect()
}

/// Nets two consecutive changes to the same row. `None` means the pair
/// cancels (insert followed by delete).
fn merge_changes(first: RowChange, second: RowChange) -> Option<RowChange> {
    use TriggerEvent as E;
    let table = first.table.clone();
    match (first.event, second.event) {
        (E::Insert, E::Update) => Some(RowChange {
            table,
            event: E::Insert,
            old: None,
            new: second.new,
        }),
        (E::Insert, E::Delete) => None,
        (E::Update, E::Update) => Some(RowChange {
            table,
            event: E::Update,
            old: first.old,
            new: second.new,
        }),
        (E::Update, E::Delete) => Some(RowChange {
            table,
            event: E::Delete,
            old: first.old,
            new: None,
        }),
        (E::Delete, E::Insert) => Some(RowChange {
            table,
            event: E::Update,
            old: first.old,
            new: second.new,
        }),
        // Remaining pairs (insert+insert, delete+update, ...) cannot arise
        // for one primary key; keep both defensively.
        _ => {
            // `first` was already taken out of the net list; re-emitting
            // only `second` would drop it. Fall back to the second change
            // with the first's pre-image where one exists.
            Some(RowChange {
                table,
                event: second.event,
                old: second.old.or(first.old),
                new: second.new,
            })
        }
    }
}

/// Internal invariants that need access to engine private state: the
/// checkpoint's capture pin must hold the vacuum horizon exactly like a
/// live transaction snapshot does.
#[cfg(test)]
mod durability_internal_tests {
    use super::*;

    #[test]
    fn pinned_capture_epoch_blocks_vacuum() {
        let db = Database::default();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, n INT)", &[])
            .unwrap();
        db.execute_sql("INSERT INTO t VALUES (1, 0)", &[]).unwrap();
        // Pin the current epoch the way checkpoint_with does.
        let pin = {
            let _serialize = db.engine.epoch_mutex.lock();
            let c = db.shared.next_epoch.load(Ordering::Acquire);
            *db.shared.live_snaps.lock().entry(c).or_insert(0) += 1;
            c
        };
        // Churn far past the inline-vacuum cadence: the sweep runs but
        // must not prune the version the pinned capture still reads.
        for i in 1..(VACUUM_COMMIT_INTERVAL + 50) {
            db.execute_sql("UPDATE t SET n = $1 WHERE id = 1", &[Value::Int(i as i64)])
                .unwrap();
        }
        db.vacuum();
        assert!(
            db.version_stats().history_versions > 0,
            "vacuum outran a pinned capture epoch"
        );
        assert!(db.vacuum_horizon() <= pin, "horizon passed the pin");
        db.release_snapshot(pin);
        db.vacuum();
        assert_eq!(
            db.version_stats().history_versions,
            0,
            "released pin must unblock pruning"
        );
    }

    #[test]
    fn published_epoch_never_leads_allocated() {
        let db = Database::default();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY)", &[])
            .unwrap();
        for i in 0..10 {
            db.execute_sql("INSERT INTO t VALUES ($1)", &[Value::Int(i)])
                .unwrap();
            let published = db.shared.commit_epoch.load(Ordering::Acquire);
            let allocated = db.shared.next_epoch.load(Ordering::Acquire);
            assert!(published <= allocated);
            // In-memory databases publish immediately.
            assert_eq!(published, allocated);
        }
    }
}
