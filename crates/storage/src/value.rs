//! Typed values stored in tables and passed through queries.
//!
//! [`Value`] is the dynamic value type of the engine. It has *two*
//! comparison notions, mirroring real SQL engines:
//!
//! * **SQL comparison** ([`Value::sql_cmp`]): `NULL` compares as unknown
//!   (`None`), numeric types compare cross-type (`Int(1) == Float(1.0)`).
//!   Used by expression evaluation (`WHERE` clauses).
//! * **Storage order** (the `Ord` impl): a total order used for index keys
//!   and `ORDER BY`, where `NULL` sorts first and floats use IEEE total
//!   ordering. This is what lets B-tree indexes hold any value.

use std::cmp::Ordering;
use std::fmt;

/// The dynamic type tag of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (also used for booleans' backing type).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Microseconds since the Unix epoch; the engine's timestamp type.
    Timestamp,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Text => "TEXT",
            ValueType::Bool => "BOOL",
            ValueType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float content, widening `Int` to float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The text content, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The timestamp content (microseconds), if this is `Timestamp`.
    pub fn as_timestamp(&self) -> Option<i64> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// SQL truthiness: `Bool(b)` is `b`, everything else (incl. NULL) is
    /// "not true". Matches `WHERE` semantics where only TRUE selects a row.
    pub fn is_sql_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Whether the value is storable in a column of type `ty`.
    ///
    /// NULL is compatible with every type; `Int` is accepted by `Float` and
    /// `Timestamp` columns (widening), mirroring lenient ORM bindings.
    pub fn compatible_with(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ValueType::Int)
                | (Value::Int(_), ValueType::Float)
                | (Value::Int(_), ValueType::Timestamp)
                | (Value::Float(_), ValueType::Float)
                | (Value::Text(_), ValueType::Text)
                | (Value::Bool(_), ValueType::Bool)
                | (Value::Timestamp(_), ValueType::Timestamp)
        )
    }

    /// Coerces the value for storage in a column of type `ty`, widening
    /// integers where allowed. Returns `None` when incompatible.
    pub fn coerce_to(&self, ty: ValueType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(v), ValueType::Float) => Some(Value::Float(*v as f64)),
            (Value::Int(v), ValueType::Timestamp) => Some(Value::Timestamp(*v)),
            _ if self.compatible_with(ty) => Some(self.clone()),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Timestamp(b)) | (Value::Timestamp(a), Value::Int(b)) => {
                Some(a.cmp(b))
            }
            _ => None,
        }
    }

    /// SQL equality as three-valued logic (`None` = unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Approximate in-memory footprint in bytes, used by the cache codec
    /// and the buffer-pool row-size model.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Timestamp(_) => 9,
            Value::Float(_) => 9,
            Value::Bool(_) => 2,
            Value::Text(s) => 5 + s.len(),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics interleave in storage order
            Value::Timestamp(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

/// Storage (total) equality: NULL == NULL, floats by bit-pattern class via
/// total ordering. Distinct from [`Value::sql_eq`].
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Storage (total) order: NULL < Bool < numerics < Timestamp < Text; floats
/// use IEEE `total_cmp` so NaN has a defined position.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => unreachable!("type ranks matched but variants did not"),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Numerics hash through the f64 bit pattern of their widened
            // form so Int(1) and Float(1.0) (equal in storage order when
            // exactly representable) hash identically.
            Value::Int(v) => (*v as f64).to_bits().hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Timestamp(t) => t.hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Timestamp(t) => write!(f, "TS({t})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(
            Value::Float(0.5).sql_cmp(&Value::Int(1)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn storage_order_is_total() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Int(3),
            Value::Bool(false),
            Value::Timestamp(5),
            Value::Float(-1.0),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        // NaN sorts after all finite numerics under total_cmp.
        assert_eq!(vals[2], Value::Float(-1.0));
        assert_eq!(vals[3], Value::Int(3));
    }

    #[test]
    fn storage_eq_treats_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn hash_consistent_with_storage_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn coercion_widens_ints() {
        assert_eq!(
            Value::Int(3).coerce_to(ValueType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(
            Value::Int(99).coerce_to(ValueType::Timestamp),
            Some(Value::Timestamp(99))
        );
        assert_eq!(Value::Text("x".into()).coerce_to(ValueType::Int), None);
        assert_eq!(Value::Null.coerce_to(ValueType::Text), Some(Value::Null));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_sql_true());
        assert!(!Value::Bool(false).is_sql_true());
        assert!(!Value::Null.is_sql_true());
        assert!(!Value::Int(1).is_sql_true());
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::Text("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn byte_size_scales_with_text() {
        assert!(Value::Text("hello".into()).byte_size() > Value::Text("".into()).byte_size());
        assert_eq!(Value::Int(0).byte_size(), 9);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }
}
