//! MVCC snapshot-read tests: reader/writer non-blocking, snapshot
//! pinning across commits, first-updater-wins write conflicts, vacuum
//! horizon discipline, and read-only serializability under real OS
//! threads.

use genie_storage::{Database, Snapshot, StorageError, Value};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration;

fn counters(n: i64) -> Database {
    let db = Database::default();
    db.execute_sql("CREATE TABLE c (id INT PRIMARY KEY, n INT NOT NULL)", &[])
        .unwrap();
    for id in 1..=n {
        db.execute_sql("INSERT INTO c VALUES ($1, 0)", &[Value::Int(id)])
            .unwrap();
    }
    db
}

fn read_n(db: &Database, id: i64) -> i64 {
    db.execute_sql("SELECT n FROM c WHERE id = $1", &[Value::Int(id)])
        .unwrap()
        .result
        .rows[0]
        .get(0)
        .as_int()
        .unwrap()
}

/// The headline property: a reader proceeds, with a correct answer,
/// while another thread's transaction holds an uncommitted write (and
/// its row locks) on the same table. Under the PR-4 locking scheme the
/// reader's table-S lock would block behind the writer's IX until
/// commit; under MVCC it resolves the committed version immediately.
#[test]
fn readers_do_not_block_behind_open_writer_transactions() {
    let db = counters(2);
    let (writer_ready_tx, writer_ready) = mpsc::channel::<()>();
    let (release_tx, release) = mpsc::channel::<()>();
    let db_w = db.clone();
    let writer = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("UPDATE c SET n = 99 WHERE id = 1", &[])
            .unwrap();
        writer_ready_tx.send(()).unwrap();
        release.recv().unwrap(); // hold the row lock + uncommitted row
        db_w.execute_sql("COMMIT", &[]).unwrap();
    });
    writer_ready.recv().unwrap();
    // The writer transaction is open with an uncommitted update. A
    // blocking reader would hang here forever; the snapshot reader
    // returns the committed value at once.
    assert_eq!(read_n(&db, 1), 0, "uncommitted write must be invisible");
    let waits_before = db.lock_stats().waits;
    release_tx.send(()).unwrap();
    writer.join().unwrap();
    assert_eq!(read_n(&db, 1), 99, "committed write becomes visible");
    assert_eq!(
        db.lock_stats().waits,
        waits_before,
        "the reader acquired no locks and waited on none"
    );
}

/// A transaction's snapshot is pinned at BEGIN: commits landing after
/// it see none of their effects inside the transaction, all of them
/// after it ends.
#[test]
fn read_transaction_pins_its_snapshot_across_commits() {
    let db = counters(1);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0);
    // Another thread commits an update meanwhile.
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("UPDATE c SET n = 7 WHERE id = 1", &[])
            .unwrap();
    })
    .join()
    .unwrap();
    // Same transaction: still the old snapshot — repeatable reads.
    assert_eq!(read_n(&db, 1), 0);
    let count = db
        .execute_sql("SELECT COUNT(*) FROM c WHERE n = 7", &[])
        .unwrap()
        .result
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert_eq!(count, 0, "COUNT pushdown honors the snapshot too");
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 7, "fresh snapshot after commit");
}

/// First-updater-wins: a transaction whose snapshot predates a
/// concurrent committed update aborts with WriteConflict when it
/// touches the same row — the lost update the check exists to prevent.
#[test]
fn write_conflict_aborts_the_second_updater() {
    let db = counters(1);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0); // snapshot taken
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("UPDATE c SET n = n + 10 WHERE id = 1", &[])
            .unwrap();
    })
    .join()
    .unwrap();
    let r = db.execute_sql("UPDATE c SET n = n + 1 WHERE id = 1", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "expected WriteConflict, got {r:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 10, "only the first updater's write stands");
}

/// Deleted rows stay visible to older snapshots until they end; a pk
/// re-insert after a committed delete serves each snapshot its own row.
#[test]
fn delete_and_pk_reuse_respect_snapshots() {
    let db = counters(1);
    db.execute_sql("UPDATE c SET n = 1 WHERE id = 1", &[])
        .unwrap();
    // Old snapshot opens before the delete.
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 1);
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("DELETE FROM c WHERE id = 1", &[]).unwrap();
        db2.execute_sql("INSERT INTO c VALUES (1, 42)", &[])
            .unwrap();
    })
    .join()
    .unwrap();
    // The old snapshot still sees its version of pk 1.
    assert_eq!(read_n(&db, 1), 1);
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(
        read_n(&db, 1),
        42,
        "new row visible after the snapshot ends"
    );
}

/// A foreign-key check must not accept a parent row another transaction
/// inserted but has not committed (it may roll back, leaving a dangling
/// reference).
#[test]
fn fk_checks_ignore_other_transactions_uncommitted_parents() {
    use genie_storage::{ColumnDef, TableSchema, ValueType};
    let db = Database::default();
    db.execute_sql("CREATE TABLE p (id INT PRIMARY KEY)", &[])
        .unwrap();
    db.create_table(
        TableSchema::builder("child")
            .pk("id")
            .column(ColumnDef::new("pid", ValueType::Int))
            .foreign_key("pid", "p", "id")
            .build()
            .unwrap(),
    )
    .unwrap();
    let (parent_pending_tx, parent_pending) = mpsc::channel::<()>();
    let (done_tx, done) = mpsc::channel::<()>();
    let db_w = db.clone();
    let writer = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("INSERT INTO p VALUES (5)", &[]).unwrap();
        parent_pending_tx.send(()).unwrap();
        done.recv().unwrap();
        db_w.execute_sql("ROLLBACK", &[]).unwrap();
    });
    parent_pending.recv().unwrap();
    let r = db.execute_sql("INSERT INTO child VALUES (1, 5)", &[]);
    assert!(
        matches!(r, Err(StorageError::ForeignKeyViolation { .. })),
        "uncommitted parent must not satisfy the FK: {r:?}"
    );
    done_tx.send(()).unwrap();
    writer.join().unwrap();
}

/// Vacuum prunes only versions past the oldest live snapshot: a
/// long-running reader pins the horizon, and releasing it lets the
/// whole history go.
#[test]
fn vacuum_respects_the_oldest_live_snapshot() {
    let db = counters(1);
    // Reader pins the pre-churn snapshot from another thread (it stays
    // parked inside an open transaction).
    let db_r = db.clone();
    let (pinned_tx, pinned) = mpsc::channel::<()>();
    let (release_tx, release) = mpsc::channel::<()>();
    let reader = std::thread::spawn(move || {
        db_r.execute_sql("BEGIN", &[]).unwrap();
        assert_eq!(read_n(&db_r, 1), 0);
        pinned_tx.send(()).unwrap();
        release.recv().unwrap();
        // The pinned snapshot still resolves after heavy churn + vacuum.
        assert_eq!(read_n(&db_r, 1), 0);
        db_r.execute_sql("COMMIT", &[]).unwrap();
    });
    pinned.recv().unwrap();
    for i in 1..=10 {
        db.execute_sql("UPDATE c SET n = $1 WHERE id = 1", &[Value::Int(i)])
            .unwrap();
    }
    assert_eq!(db.version_stats().history_versions, 10);
    let pruned_while_pinned = db.vacuum();
    // Only versions wholly invisible to the pinned snapshot can go; the
    // version the reader still sees (and everything it needs) survives.
    assert!(
        db.version_stats().history_versions >= 1,
        "the pinned snapshot's version chain must survive: {:?}",
        db.version_stats()
    );
    assert_eq!(read_n(&db, 1), 10, "latest state unaffected by vacuum");
    release_tx.send(()).unwrap();
    reader.join().unwrap();
    let pruned_after = db.vacuum();
    assert_eq!(
        db.version_stats().history_versions,
        0,
        "with no live snapshot every superseded version is reclaimed"
    );
    assert!(pruned_while_pinned + pruned_after >= 10);
    assert_eq!(read_n(&db, 1), 10);
    // Settled rows collapse back to the implicit committed state.
    assert_eq!(db.version_stats().versioned_rows, 0);
}

/// Secondary-index scans resolve versions too: a row whose indexed
/// column moved must appear exactly once, under the key its visible
/// version carries.
#[test]
fn index_scans_resolve_versions_without_duplicates() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, grp INT NOT NULL)", &[])
        .unwrap();
    db.execute_sql("CREATE INDEX t_grp ON t (grp)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1, 10), (2, 10), (3, 20)", &[])
        .unwrap();
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(
        db.execute_sql("SELECT id FROM t WHERE grp = 10", &[])
            .unwrap()
            .result
            .rows
            .len(),
        2
    );
    let db2 = db.clone();
    std::thread::spawn(move || {
        // Move row 1 from group 10 to group 20: both index keys now
        // carry entries for row 1 until vacuum.
        db2.execute_sql("UPDATE t SET grp = 20 WHERE id = 1", &[])
            .unwrap();
    })
    .join()
    .unwrap();
    // Old snapshot: still 2 rows in group 10, 1 in group 20.
    assert_eq!(
        db.execute_sql("SELECT id FROM t WHERE grp = 10", &[])
            .unwrap()
            .result
            .rows
            .len(),
        2
    );
    let g20: Vec<i64> = db
        .execute_sql("SELECT id FROM t WHERE grp IN (10, 20) ORDER BY id", &[])
        .unwrap()
        .result
        .rows
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    assert_eq!(g20, vec![1, 2, 3], "no duplicates from the stale entry");
    db.execute_sql("COMMIT", &[]).unwrap();
    // Fresh snapshot: the move is visible, still no duplicates.
    let all: Vec<i64> = db
        .execute_sql("SELECT id FROM t WHERE grp IN (10, 20) ORDER BY id", &[])
        .unwrap()
        .result
        .rows
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    assert_eq!(all, vec![1, 2, 3]);
    assert_eq!(
        db.execute_sql("SELECT id FROM t WHERE grp = 20", &[])
            .unwrap()
            .result
            .rows
            .len(),
        2
    );
}

/// `Snapshot` is part of the public API surface; pin one shape check so
/// downstream crates can rely on it.
#[test]
fn snapshot_type_is_exported() {
    let s = Snapshot {
        epoch: 3,
        writer: None,
    };
    assert_eq!(s.epoch, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Read-only serializability: each writer appends ITS OWN
    /// monotonically numbered rows, one committed transaction per row,
    /// while reader transactions concurrently take two reads each.
    /// Because a single writer's commits are ordered, any state some
    /// serial order of the committed transactions produces shows a
    /// *contiguous per-writer prefix*. Every reader transaction must
    /// observe (a) exactly such a prefix for every writer, (b) the
    /// identical answer when re-read inside the same transaction, and
    /// (c) monotonically non-decreasing totals across successive
    /// transactions. (A global contiguity check would be wrong: seq
    /// allocation across writers is not atomic with commit order.)
    #[test]
    fn snapshot_reads_equal_a_serial_prefix_of_committed_writers(
        writers in 1usize..4,
        per_writer in 3usize..12,
        readers in 1usize..3,
    ) {
        const BASE: i64 = 100_000;
        let db = Database::default();
        db.execute_sql("CREATE TABLE log (seq INT PRIMARY KEY)", &[]).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(writers + readers));

        let writer_handles: Vec<_> = (0..writers).map(|w| {
            let db = db.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 1..=per_writer as i64 {
                    let seq = (w as i64 + 1) * BASE + i;
                    db.transaction(|t| {
                        t.execute_sql("INSERT INTO log VALUES ($1)", &[Value::Int(seq)])?;
                        Ok(())
                    }).unwrap();
                }
            })
        }).collect();

        let reader_handles: Vec<_> = (0..readers).map(|_| {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut last_total = 0i64;
                let mut checks = 0u64;
                let observe = |db: &Database| -> Vec<(i64, i64)> {
                    (0..writers).map(|w| {
                        let lo = (w as i64 + 1) * BASE;
                        let hi = lo + BASE;
                        let params = [Value::Int(lo), Value::Int(hi)];
                        let c = db.execute_sql(
                            "SELECT COUNT(*) FROM log WHERE seq > $1 AND seq < $2", &params)
                            .unwrap().result.rows[0].get(0).as_int().unwrap();
                        let m = db.execute_sql(
                            "SELECT MAX(seq) FROM log WHERE seq > $1 AND seq < $2", &params)
                            .unwrap().result.rows[0].get(0).as_int().unwrap_or(lo);
                        (c, m - lo)
                    }).collect()
                };
                while !stop.load(Ordering::Relaxed) {
                    db.execute_sql("BEGIN", &[]).unwrap();
                    let first = observe(&db);
                    std::thread::yield_now();
                    let second = observe(&db);
                    db.execute_sql("COMMIT", &[]).unwrap();
                    // (b) repeatable within the transaction.
                    assert_eq!(first, second, "snapshot changed mid-transaction");
                    // (a) a contiguous prefix per writer: max == count.
                    for (w, (c, m)) in first.iter().enumerate() {
                        assert_eq!(c, m, "writer {w}'s rows are not a committed prefix");
                    }
                    // (c) snapshots move forward across transactions.
                    let total: i64 = first.iter().map(|(c, _)| c).sum();
                    assert!(total >= last_total, "snapshot went backwards");
                    last_total = total;
                    checks += 1;
                }
                checks
            })
        }).collect();

        for h in writer_handles { h.join().unwrap(); }
        stop.store(true, Ordering::Relaxed);
        let mut total_checks = 0;
        for h in reader_handles { total_checks += h.join().unwrap(); }
        prop_assert!(total_checks > 0, "readers made progress");
        // Final state: the full serial history.
        let total = (writers * per_writer) as i64;
        let final_count = db.execute_sql("SELECT COUNT(*) FROM log", &[])
            .unwrap().result.rows[0].get(0).as_int().unwrap();
        prop_assert_eq!(final_count, total);
        // Readers are gone: vacuum reclaims everything.
        db.vacuum();
        prop_assert_eq!(db.version_stats().history_versions, 0);
    }
}

/// A statement that fails part-way (here: a duplicate key on the second
/// row of a multi-row INSERT) must undo the rows it already wrote —
/// leaked uncommitted versions would wedge their keys forever.
#[test]
fn failed_statement_undoes_its_partial_writes() {
    let db = counters(0);
    let r = db.execute_sql("INSERT INTO c VALUES (7, 1), (7, 2)", &[]);
    assert!(
        matches!(r, Err(StorageError::UniqueViolation { .. })),
        "{r:?}"
    );
    // The first (7, 1) row must be fully gone: a fresh insert of pk 7
    // succeeds (a leaked version would raise WriteConflict forever).
    db.execute_sql("INSERT INTO c VALUES (7, 3)", &[]).unwrap();
    assert_eq!(read_n(&db, 7), 3);
    db.vacuum();
    assert_eq!(db.version_stats().versioned_rows, 0);
    assert_eq!(db.version_stats().history_versions, 0);

    // Same property mid-UPDATE: rows 1 and 2 exist; a conflicting txn
    // supersedes row 2, then our snapshot updates both — row 1 is
    // applied first and must roll back when row 2 conflicts.
    let db = counters(2);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0); // pin snapshot
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("UPDATE c SET n = 50 WHERE id = 2", &[])
            .unwrap();
    })
    .join()
    .unwrap();
    let r = db.execute_sql("UPDATE c SET n = n + 1", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "{r:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0, "row 1's partial update rolled back");
    assert_eq!(read_n(&db, 2), 50, "the first updater's write stands");
    db.vacuum();
    assert_eq!(db.version_stats().versioned_rows, 0, "no leaked versions");
}

/// Writing a row that a newer committed transaction deleted is a
/// write conflict (retryable), not an internal error.
#[test]
fn write_to_committed_deleted_row_is_a_conflict_not_an_error() {
    let db = counters(2);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0); // snapshot sees both rows
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("DELETE FROM c WHERE id = 1", &[]).unwrap();
    })
    .join()
    .unwrap();
    let upd = db.execute_sql("UPDATE c SET n = 1 WHERE id = 1", &[]);
    assert!(
        matches!(upd, Err(StorageError::WriteConflict { .. })),
        "{upd:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 2), 0);
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("DELETE FROM c WHERE id = 2", &[]).unwrap();
    })
    .join()
    .unwrap();
    let del = db.execute_sql("DELETE FROM c WHERE id = 2", &[]);
    assert!(
        matches!(del, Err(StorageError::WriteConflict { .. })),
        "{del:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
}

/// Re-inserting a primary key whose row was deleted by a transaction
/// that committed *after* this snapshot conflicts — otherwise one
/// snapshot would see two rows carrying the same key.
#[test]
fn pk_reinsert_over_snapshot_visible_ghost_conflicts() {
    let db = counters(1);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0); // snapshot still sees pk 1
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("DELETE FROM c WHERE id = 1", &[]).unwrap();
    })
    .join()
    .unwrap();
    let r = db.execute_sql("INSERT INTO c VALUES (1, 9)", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "{r:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    // A fresh snapshot no longer sees the ghost: the insert lands.
    db.execute_sql("INSERT INTO c VALUES (1, 9)", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 9);
    // And delete + re-insert of the same pk inside ONE transaction
    // still works (the transaction's own delete is not a ghost to it).
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("DELETE FROM c WHERE id = 1", &[]).unwrap();
    db.execute_sql("INSERT INTO c VALUES (1, 11)", &[]).unwrap();
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 11);
}

/// A unique secondary key held by a row under another transaction's
/// *uncommitted* delete is still blocked: the delete may roll back,
/// which would otherwise leave two committed rows sharing one unique
/// key. Once the delete commits and the snapshot is fresh, the key is
/// reusable.
#[test]
fn unique_key_blocked_while_owner_delete_is_pending() {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE u (id INT PRIMARY KEY, email TEXT UNIQUE)",
        &[],
    )
    .unwrap();
    db.execute_sql("INSERT INTO u VALUES (1, 'k@x')", &[])
        .unwrap();
    let (pending_tx, pending) = mpsc::channel::<()>();
    let (verdict_tx, verdict) = mpsc::channel::<bool>();
    let db_w = db.clone();
    let deleter = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("DELETE FROM u WHERE id = 1", &[]).unwrap();
        pending_tx.send(()).unwrap();
        // Roll back iff the racing insert was (correctly) refused.
        let refused = verdict.recv().unwrap();
        assert!(
            refused,
            "insert must not reuse a pending-deleted unique key"
        );
        db_w.execute_sql("ROLLBACK", &[]).unwrap();
    });
    pending.recv().unwrap();
    let r = db.execute_sql("INSERT INTO u VALUES (2, 'k@x')", &[]);
    let refused = matches!(r, Err(StorageError::WriteConflict { .. }));
    verdict_tx.send(refused).unwrap();
    deleter.join().unwrap();
    assert!(refused, "got {r:?}");
    // After the rollback the original row still owns the key — and a
    // *different* key inserts fine.
    db.execute_sql("INSERT INTO u VALUES (2, 'other@x')", &[])
        .unwrap();
    let dup = db.execute_sql("INSERT INTO u VALUES (3, 'k@x')", &[]);
    assert!(
        matches!(dup, Err(StorageError::UniqueViolation { .. })),
        "{dup:?}"
    );
}

/// A parent row under another transaction's uncommitted delete does not
/// satisfy a foreign key (the delete may commit, leaving the child
/// dangling) — and because the delete may equally roll back, the
/// refusal is a *retryable* WriteConflict, not a permanent violation.
/// After the delete rolls back, the retry inserts fine.
#[test]
fn fk_checks_reject_pending_deleted_parents() {
    use genie_storage::{ColumnDef, TableSchema, ValueType};
    let db = Database::default();
    db.execute_sql("CREATE TABLE p (id INT PRIMARY KEY)", &[])
        .unwrap();
    db.create_table(
        TableSchema::builder("child")
            .pk("id")
            .column(ColumnDef::new("pid", ValueType::Int))
            .foreign_key("pid", "p", "id")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.execute_sql("INSERT INTO p VALUES (5)", &[]).unwrap();
    let (pending_tx, pending) = mpsc::channel::<()>();
    let (done_tx, done) = mpsc::channel::<()>();
    let db_w = db.clone();
    let deleter = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("DELETE FROM p WHERE id = 5", &[]).unwrap();
        pending_tx.send(()).unwrap();
        done.recv().unwrap();
        db_w.execute_sql("ROLLBACK", &[]).unwrap();
    });
    pending.recv().unwrap();
    let r = db.execute_sql("INSERT INTO child VALUES (1, 5)", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "a parent under a pending delete must refuse retryably: {r:?}"
    );
    done_tx.send(()).unwrap();
    deleter.join().unwrap();
    db.execute_sql("INSERT INTO child VALUES (1, 5)", &[])
        .unwrap();
}

/// Moving a row onto a primary key whose deleted version is still
/// visible to this snapshot conflicts, exactly like an insert would —
/// otherwise the transaction's own scans would see two rows with one
/// key.
#[test]
fn pk_move_onto_snapshot_visible_ghost_conflicts() {
    let db = counters(2);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 2), 0); // snapshot sees pk 2
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("DELETE FROM c WHERE id = 2", &[]).unwrap();
    })
    .join()
    .unwrap();
    let r = db.execute_sql("UPDATE c SET id = 2 WHERE id = 1", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "{r:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    // Fresh snapshot: the ghost is gone, the move lands.
    db.execute_sql("UPDATE c SET id = 2 WHERE id = 1", &[])
        .unwrap();
    assert_eq!(read_n(&db, 2), 0);
}

/// A unique-key collision with another transaction's *uncommitted* row
/// is a retryable WriteConflict, not a permanent UniqueViolation — the
/// holder may roll back, as it does here, after which the retry lands.
#[test]
fn unique_collision_with_uncommitted_row_is_retryable() {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE u (id INT PRIMARY KEY, email TEXT UNIQUE)",
        &[],
    )
    .unwrap();
    let (pending_tx, pending) = mpsc::channel::<()>();
    let (done_tx, done) = mpsc::channel::<()>();
    let db_w = db.clone();
    let first = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("INSERT INTO u VALUES (1, 'race@x')", &[])
            .unwrap();
        pending_tx.send(()).unwrap();
        done.recv().unwrap();
        db_w.execute_sql("ROLLBACK", &[]).unwrap();
    });
    pending.recv().unwrap();
    let r = db.execute_sql("INSERT INTO u VALUES (2, 'race@x')", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "collision with an uncommitted row must be retryable: {r:?}"
    );
    done_tx.send(()).unwrap();
    first.join().unwrap();
    // The holder rolled back: the retry succeeds.
    db.execute_sql("INSERT INTO u VALUES (2, 'race@x')", &[])
        .unwrap();
    // A committed duplicate is still a genuine UniqueViolation.
    let dup = db.execute_sql("INSERT INTO u VALUES (3, 'race@x')", &[]);
    assert!(
        matches!(dup, Err(StorageError::UniqueViolation { .. })),
        "{dup:?}"
    );
}

/// A parent whose primary key is being moved away by another
/// transaction's uncommitted UPDATE must not satisfy a foreign key —
/// that move may commit, orphaning the child.
#[test]
fn fk_checks_reject_parents_under_pending_pk_moves() {
    use genie_storage::{ColumnDef, TableSchema, ValueType};
    let db = Database::default();
    db.execute_sql("CREATE TABLE p (id INT PRIMARY KEY)", &[])
        .unwrap();
    db.create_table(
        TableSchema::builder("child")
            .pk("id")
            .column(ColumnDef::new("pid", ValueType::Int))
            .foreign_key("pid", "p", "id")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.execute_sql("INSERT INTO p VALUES (1)", &[]).unwrap();
    let (pending_tx, pending) = mpsc::channel::<()>();
    let (done_tx, done) = mpsc::channel::<()>();
    let db_w = db.clone();
    let mover = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        db_w.execute_sql("UPDATE p SET id = 2 WHERE id = 1", &[])
            .unwrap();
        pending_tx.send(()).unwrap();
        done.recv().unwrap();
        db_w.execute_sql("COMMIT", &[]).unwrap();
    });
    pending.recv().unwrap();
    let r = db.execute_sql("INSERT INTO child VALUES (1, 1)", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "a parent under a pending pk move must refuse retryably: {r:?}"
    );
    done_tx.send(()).unwrap();
    mover.join().unwrap();
    // The move committed: pk 1 is genuinely gone, pk 2 satisfies.
    let still_gone = db.execute_sql("INSERT INTO child VALUES (1, 1)", &[]);
    assert!(matches!(
        still_gone,
        Err(StorageError::ForeignKeyViolation { .. })
    ));
    db.execute_sql("INSERT INTO child VALUES (1, 2)", &[])
        .unwrap();
}

/// A pk move whose target key was taken by a transaction that
/// committed *after* this snapshot is a retryable WriteConflict (the
/// snapshot is stale); the retry on a fresh snapshot then reports the
/// genuine duplicate. (An *uncommitted* holder never reaches the check
/// at all: the mover's destination row lock waits for it.)
#[test]
fn pk_move_onto_newer_committed_key_is_retryable() {
    let db = counters(1); // row pk=1 exists
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 0); // snapshot pinned before the insert
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("INSERT INTO c VALUES (2, 7)", &[]).unwrap();
    })
    .join()
    .unwrap();
    let r = db.execute_sql("UPDATE c SET id = 2 WHERE id = 1", &[]);
    assert!(
        matches!(r, Err(StorageError::WriteConflict { .. })),
        "a stale snapshot must retry, not report a permanent duplicate: {r:?}"
    );
    db.execute_sql("ROLLBACK", &[]).unwrap();
    // Fresh snapshot: the duplicate is genuine now.
    let dup = db.execute_sql("UPDATE c SET id = 2 WHERE id = 1", &[]);
    assert!(
        matches!(dup, Err(StorageError::UniqueViolation { .. })),
        "{dup:?}"
    );
}

/// An index created while an older snapshot is live also backfills the
/// retained history versions, so that snapshot's scans through the new
/// index agree with a full scan.
#[test]
fn index_created_mid_snapshot_serves_history_versions() {
    let db = counters(1);
    db.execute_sql("UPDATE c SET n = 30 WHERE id = 1", &[])
        .unwrap();
    db.execute_sql("BEGIN", &[]).unwrap();
    assert_eq!(read_n(&db, 1), 30); // snapshot pinned before the churn
    let db2 = db.clone();
    std::thread::spawn(move || {
        db2.execute_sql("UPDATE c SET n = 31 WHERE id = 1", &[])
            .unwrap();
        db2.execute_sql("CREATE INDEX c_n ON c (n)", &[]).unwrap();
    })
    .join()
    .unwrap();
    // The pinned snapshot still finds its version through the new index.
    let rows = db
        .execute_sql("SELECT id FROM c WHERE n = 30", &[])
        .unwrap()
        .result
        .rows;
    assert_eq!(rows.len(), 1, "history version reachable via the new index");
    let none = db
        .execute_sql("SELECT id FROM c WHERE n = 31", &[])
        .unwrap()
        .result
        .rows;
    assert!(
        none.is_empty(),
        "newer version invisible to the old snapshot"
    );
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(
        db.execute_sql("SELECT id FROM c WHERE n = 31", &[])
            .unwrap()
            .result
            .rows
            .len(),
        1
    );
}

/// Autocommit statements read the latest committed epoch, so a
/// single-statement read after a commit always sees it (read-your-
/// committed-writes without any transaction).
#[test]
fn autocommit_reads_are_read_committed() {
    let db = counters(1);
    for i in 1..=5 {
        db.execute_sql("UPDATE c SET n = $1 WHERE id = 1", &[Value::Int(i)])
            .unwrap();
        assert_eq!(read_n(&db, 1), i);
    }
}

/// The inline vacuum keeps version history bounded without any explicit
/// vacuum call: enough committed churn triggers it.
#[test]
fn inline_vacuum_bounds_history_growth() {
    let db = counters(1);
    for i in 0..600i64 {
        db.execute_sql("UPDATE c SET n = $1 WHERE id = 1", &[Value::Int(i)])
            .unwrap();
    }
    // 600 updates = 600 superseded versions without vacuum; the inline
    // sweep (every 256 write commits) must have pruned most of them.
    assert!(
        db.version_stats().history_versions < 300,
        "inline vacuum did not run: {:?}",
        db.version_stats()
    );
    assert_eq!(read_n(&db, 1), 599);
}

/// Writers still exclude each other: two concurrent transactions on the
/// same row serialize via the row lock, and the loser's conflict abort
/// leaves no trace.
#[test]
fn writer_writer_exclusion_still_holds() {
    let db = counters(1);
    let barrier = Arc::new(Barrier::new(2));
    let conflicts = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let barrier = Arc::clone(&barrier);
            let conflicts = Arc::clone(&conflicts);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..20 {
                    let r = db.transaction(|t| {
                        t.execute_sql("UPDATE c SET n = n + 1 WHERE id = 1", &[])?;
                        Ok(())
                    });
                    match r {
                        Ok(()) => {}
                        Err(StorageError::WriteConflict { .. } | StorageError::Deadlock { .. }) => {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let lost = conflicts.load(Ordering::Relaxed) as i64;
    assert_eq!(
        read_n(&db, 1),
        40 - lost,
        "every committed increment landed exactly once"
    );
}

/// Checkpoint and vacuum interplay: a long reader pins the vacuum
/// horizon while a fuzzy checkpoint captures and truncates the log.
/// Neither may break the other — the pinned snapshot must keep reading
/// its version after both run, the checkpoint must capture the *latest*
/// committed state regardless of the pin, and a crash image taken after
/// vacuum+checkpoint must recover to exactly the live state (truncation
/// never outran the records the image did not cover).
#[test]
fn checkpoint_and_vacuum_preserve_each_other() {
    use genie_storage::{DbConfig, WalConfig};
    let dir = std::env::temp_dir().join(format!("genie-mvcc-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::create_durable(&dir, DbConfig::default(), WalConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE c (id INT PRIMARY KEY, n INT NOT NULL)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO c VALUES (1, 0)", &[]).unwrap();

    // Reader pins the pre-churn snapshot from another thread.
    let db_r = db.clone();
    let (pinned_tx, pinned) = mpsc::channel::<()>();
    let (release_tx, release) = mpsc::channel::<()>();
    let reader = std::thread::spawn(move || {
        db_r.execute_sql("BEGIN", &[]).unwrap();
        assert_eq!(read_n(&db_r, 1), 0);
        pinned_tx.send(()).unwrap();
        release.recv().unwrap();
        assert_eq!(
            read_n(&db_r, 1),
            0,
            "pinned snapshot must survive vacuum + checkpoint"
        );
        db_r.execute_sql("COMMIT", &[]).unwrap();
    });
    pinned.recv().unwrap();

    for i in 1..=50 {
        db.execute_sql("UPDATE c SET n = $1 WHERE id = 1", &[Value::Int(i)])
            .unwrap();
    }
    db.vacuum();
    // The fuzzy checkpoint runs while the reader still pins history: it
    // captures the latest committed state, not the pinned one.
    let stats = db.checkpoint().unwrap();
    assert_eq!(stats.rows, 1);
    db.vacuum();
    assert!(
        db.version_stats().history_versions >= 1,
        "checkpoint/vacuum destroyed the pinned snapshot's chain: {:?}",
        db.version_stats()
    );

    release_tx.send(()).unwrap();
    reader.join().unwrap();
    db.vacuum();
    assert_eq!(read_n(&db, 1), 50);

    // Crash image after the dust settles: checkpoint image + log tail
    // reconstruct the live state bit-for-bit.
    let digest = db.content_digest();
    let copy = std::env::temp_dir().join(format!("genie-mvcc-ckpt-copy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&copy);
    std::fs::create_dir_all(&copy).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, copy.join(p.file_name().unwrap())).unwrap();
    }
    let recovered = Database::open_with_recovery(&copy).unwrap();
    assert_eq!(recovered.content_digest(), digest);
    assert_eq!(recovered.commit_epoch(), db.commit_epoch());
    drop(recovered);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
}
