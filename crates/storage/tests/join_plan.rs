//! Whole-query planner tests: join-order costing, ORDER BY survival
//! across single-row joins, LIMIT-aware early termination, the
//! `a = ? AND b IN (...)` multi-range path, and statistics-driven cost
//! estimates — plus property tests that every join order returns row-sets
//! identical to the index-free nested-loop baseline.

use genie_storage::plan::AccessPath;
use genie_storage::{
    ColumnDef, Database, Expr, IndexDef, Row, Select, TableRef, TableSchema, Value, ValueType,
};
use proptest::prelude::*;

/// authors (10 rows) and posts (300 rows, FK author_id, composite
/// (author_id, created) index).
fn blog_db(indexed: bool) -> Database {
    let db = Database::default();
    db.execute_sql("CREATE TABLE authors (id INT PRIMARY KEY, name TEXT)", &[])
        .unwrap();
    db.execute_sql(
        "CREATE TABLE posts (id INT PRIMARY KEY, author_id INT NOT NULL, \
         created TIMESTAMP NOT NULL, score INT NOT NULL)",
        &[],
    )
    .unwrap();
    if indexed {
        db.execute_sql(
            "CREATE INDEX posts_author_created ON posts (author_id, created)",
            &[],
        )
        .unwrap();
        db.execute_sql("CREATE INDEX posts_score ON posts (score)", &[])
            .unwrap();
    }
    for a in 0..10i64 {
        db.execute_sql(
            "INSERT INTO authors VALUES ($1, $2)",
            &[Value::Int(a), Value::Text(format!("a{a}"))],
        )
        .unwrap();
    }
    for p in 0..300i64 {
        db.execute_sql(
            "INSERT INTO posts VALUES ($1, $2, $3, $4)",
            &[
                Value::Int(p),
                Value::Int(p % 10),
                Value::Timestamp(1000 + p),
                Value::Int(p % 7),
            ],
        )
        .unwrap();
    }
    db
}

fn sorted_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by_key(|r| r.values().to_vec());
    rows
}

#[test]
fn join_order_rotates_to_the_selective_table() {
    let db = blog_db(true);
    // Syntactically authors drives, but the WHERE pins posts.id: the
    // cost-ranked order must drive from posts (a pk point lookup) and
    // pk-probe authors, instead of scanning authors and probing posts.
    let sql = "SELECT * FROM authors JOIN posts ON posts.author_id = authors.id \
               WHERE posts.id = 5";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert_eq!(plan.base.table, "posts", "driving table rotated: {plan}");
    assert_eq!(
        plan.base.path,
        AccessPath::PkEq { key: Value::Int(5) },
        "{plan}"
    );
    assert_eq!(plan.joins.len(), 1);
    assert_eq!(plan.joins[0].table, "authors");
    assert!(plan.joins[0].single_row, "pk probe matches at most one row");

    // Execution returns columns in *syntactic* order despite the rotated
    // pipeline: authors columns first.
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 1);
    let row = &out.result.rows[0];
    assert_eq!(row.get(0), &Value::Int(5), "authors.id of post 5's author");
    assert_eq!(row.get(2), &Value::Int(5), "posts.id");
    // And the rotated pipeline reads 2 rows, not 10 + probes.
    assert!(
        out.cost.rows_scanned <= 2,
        "rotation should touch 2 rows, got {}",
        out.cost.rows_scanned
    );
}

#[test]
fn join_order_costing_prefers_filtered_driving_table() {
    let db = blog_db(true);
    // Equality on posts.author_id (30 rows) vs no constraint on authors
    // (10 rows): driving from authors would scan all 10 and probe; the
    // planner must drive from the filtered posts side or authors — either
    // way the measured plan beats a cartesian scan, and the join method
    // must be an index or pk probe, never NestedScan.
    let sql = "SELECT * FROM posts JOIN authors ON authors.id = posts.author_id \
               WHERE posts.author_id = 3";
    let plan = db.explain_sql(sql, &[]).unwrap();
    for j in &plan.joins {
        assert_ne!(j.method.kind(), "NestedScan", "{plan}");
    }
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 30);
    assert!(
        out.cost.rows_scanned <= 61,
        "30 posts + 30 author probes + base, got {}",
        out.cost.rows_scanned
    );
}

#[test]
fn order_by_survives_single_row_join() {
    let db = blog_db(true);
    // Ordered index scan on posts + pk probe into authors: the pipeline
    // emits exactly one row per post in index order, so the sort is
    // skipped and rows come back newest-first.
    let sql = "SELECT * FROM posts JOIN authors ON authors.id = posts.author_id \
               WHERE posts.author_id = 4 ORDER BY posts.created DESC";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert!(plan.order_satisfied, "{plan}");
    assert!(plan.joins.iter().all(|j| j.single_row), "{plan}");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.cost.sorts, 0, "index order must skip the sort");
    let ts: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(2).as_timestamp().unwrap())
        .collect();
    let mut expect = ts.clone();
    expect.sort_by(|a, b| b.cmp(a));
    assert_eq!(ts, expect);
    assert_eq!(ts.len(), 30);
}

#[test]
fn order_does_not_survive_multi_row_join() {
    let db = blog_db(true);
    // Reverse join fanning out (one author row -> 30 posts): the base
    // order on authors cannot be claimed, so the executor sorts — and the
    // result matches the index-free baseline exactly.
    let sql = "SELECT * FROM authors JOIN posts ON posts.author_id = authors.id \
               WHERE posts.score = 3 ORDER BY posts.created ASC";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert!(!plan.order_satisfied, "{plan}");
    let a = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(a.cost.sorts, 1);
    let b = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert_eq!(a.result.rows, b.result.rows, "order must match baseline");
}

#[test]
fn top_k_ordered_scan_stops_after_k_rows() {
    let db = blog_db(true);
    // Author 2 owns 30 posts; LIMIT 5 with an order-satisfying plan must
    // stop the scan after 5 rows instead of materializing all 30 — the
    // CostReport counters are the proof.
    let sql = "SELECT * FROM posts WHERE author_id = 2 \
               ORDER BY created DESC LIMIT 5";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert!(plan.order_satisfied, "{plan}");
    assert_eq!(plan.fetch_limit, Some(5), "{plan}");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 5);
    assert_eq!(
        out.cost.rows_scanned, 5,
        "ordered scan must terminate after LIMIT rows"
    );
    assert_eq!(out.cost.sorts, 0);
    // Same rows as the index-free engine (which scans everything).
    let base = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert!(base.cost.rows_scanned >= 300);
    assert_eq!(out.result.rows, base.result.rows);
}

#[test]
fn top_k_early_stop_survives_single_row_joins() {
    let db = blog_db(true);
    // The join pipeline preserves order (pk probe), so the LIMIT still
    // bounds the base scan: 5 posts + 5 author probes.
    let sql = "SELECT * FROM posts JOIN authors ON authors.id = posts.author_id \
               WHERE posts.author_id = 2 ORDER BY posts.created DESC LIMIT 5";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert!(plan.order_satisfied, "{plan}");
    assert_eq!(plan.fetch_limit, Some(5), "{plan}");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 5);
    assert_eq!(
        out.cost.rows_scanned, 10,
        "5 base rows + 5 joined rows, got {}",
        out.cost.rows_scanned
    );
    let base = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows, base.result.rows);
}

#[test]
fn unordered_limit_also_stops_early() {
    let db = blog_db(true);
    // No ORDER BY: any-k semantics still must match the heap-order
    // contract, but the scan may stop at k.
    let sql = "SELECT * FROM posts WHERE score = 3 LIMIT 4";
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 4);
    assert!(
        out.cost.rows_scanned <= 4,
        "unordered LIMIT must stop early, scanned {}",
        out.cost.rows_scanned
    );
    let base = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows, base.result.rows);
}

#[test]
fn eq_prefix_plus_in_uses_multi_range_scan() {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE ev (id INT PRIMARY KEY, user_id INT NOT NULL, kind INT NOT NULL, \
         note TEXT)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX ev_user_kind ON ev (user_id, kind)", &[])
        .unwrap();
    // 40 users x 20 rows, kinds cycling 0..9 within each user, so
    // `kind IN (1, 7)` keeps 4 of a user's 20 rows — the multi-range
    // scan must beat the bare user_id prefix scan.
    for i in 0..800i64 {
        db.execute_sql(
            "INSERT INTO ev VALUES ($1, $2, $3, $4)",
            &[
                Value::Int(i),
                Value::Int(i % 40),
                Value::Int((i / 40) % 10),
                Value::Text(format!("n{i}")),
            ],
        )
        .unwrap();
    }
    let sql = "SELECT * FROM ev WHERE user_id = 11 AND kind IN (1, 7)";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert_eq!(
        plan.base.path,
        AccessPath::IndexInList {
            index: "ev_user_kind".into(),
            eq_prefix: vec![Value::Int(11)],
            keys: vec![Value::Int(1), Value::Int(7)],
        },
        "{plan}"
    );
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 4);
    assert_eq!(
        out.cost.rows_scanned, 4,
        "multi-range scan reads only matching rows"
    );
    assert_eq!(out.cost.index_probes, 2, "one probe per IN key");

    // Order satisfaction: sorted IN keys + trailing coverage yields
    // (kind) order under the pinned user_id prefix.
    let sql = "SELECT * FROM ev WHERE user_id = 11 AND kind IN (7, 1) ORDER BY kind ASC";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert!(plan.order_satisfied, "{plan}");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.cost.sorts, 0);
    let kinds: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(2).as_int().unwrap())
        .collect();
    assert_eq!(kinds, vec![1, 1, 7, 7]);
}

#[test]
fn wide_in_list_falls_back_to_single_probe_prefix_scan() {
    // Same shape as above, but the IN list covers every kind: k probes
    // buy nothing over one prefix scan of the same 20-row block, so the
    // prefix path must stay in the running and win on cost.
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE ev (id INT PRIMARY KEY, user_id INT NOT NULL, kind INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX ev_user_kind ON ev (user_id, kind)", &[])
        .unwrap();
    for i in 0..800i64 {
        db.execute_sql(
            "INSERT INTO ev VALUES ($1, $2, $3)",
            &[Value::Int(i), Value::Int(i % 40), Value::Int((i / 40) % 10)],
        )
        .unwrap();
    }
    let sql = "SELECT * FROM ev WHERE user_id = 11 AND kind IN (0,1,2,3,4,5,6,7,8,9)";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert_eq!(
        plan.base.path,
        AccessPath::IndexPrefixRange {
            index: "ev_user_kind".into(),
            prefix: vec![Value::Int(11)],
        },
        "{plan}"
    );
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 20);
    assert_eq!(out.cost.index_probes, 1, "one probe, not one per IN key");
}

#[test]
fn histogram_replaces_system_r_range_constants() {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE m (id INT PRIMARY KEY, t TIMESTAMP NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX m_t ON m (t)", &[]).unwrap();
    for i in 0..1000i64 {
        db.execute_sql(
            "INSERT INTO m VALUES ($1, $2)",
            &[Value::Int(i), Value::Timestamp(i)],
        )
        .unwrap();
    }
    // A half-bounded range covering ~95% of rows: the System-R constant
    // would guess 330; the histogram must see ~950.
    let plan = db
        .explain_sql("SELECT * FROM m WHERE t > TS(50)", &[])
        .unwrap();
    assert!(
        plan.base.estimated_rows > 800.0,
        "histogram should estimate ~950 rows, got {}",
        plan.base.estimated_rows
    );
    // A narrow range covering 1%: far below the 250-row constant guess.
    let plan = db
        .explain_sql("SELECT * FROM m WHERE t BETWEEN TS(100) AND TS(110)", &[])
        .unwrap();
    assert!(
        plan.base.estimated_rows < 60.0,
        "histogram should estimate ~10 rows, got {}",
        plan.base.estimated_rows
    );
}

#[test]
fn prefix_cardinality_uses_distinct_stats_not_geometric_guess() {
    let db = Database::default();
    // Composite (a, b) index where a has 5 distinct values but b has 200:
    // the geometric guess for prefix `a` would be sqrt(1000) ~ 32 keys
    // (rows ~ 31); per-column distinct stats know it is ~5 (rows ~ 200).
    db.execute_sql(
        "CREATE TABLE g (id INT PRIMARY KEY, a INT NOT NULL, b INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX g_ab ON g (a, b)", &[])
        .unwrap();
    for i in 0..1000i64 {
        db.execute_sql(
            "INSERT INTO g VALUES ($1, $2, $3)",
            &[Value::Int(i), Value::Int(i % 5), Value::Int(i % 200)],
        )
        .unwrap();
    }
    let plan = db.explain_sql("SELECT * FROM g WHERE a = 3", &[]).unwrap();
    assert_eq!(
        plan.base.path,
        AccessPath::IndexPrefixRange {
            index: "g_ab".into(),
            prefix: vec![Value::Int(3)],
        }
    );
    assert!(
        (150.0..=260.0).contains(&plan.base.estimated_rows),
        "distinct-driven estimate ~200, got {}",
        plan.base.estimated_rows
    );
}

#[test]
fn explain_statement_returns_plan_rows() {
    let db = blog_db(true);
    let out = db
        .execute_sql(
            "EXPLAIN SELECT * FROM posts JOIN authors ON authors.id = posts.author_id \
             WHERE posts.author_id = 1 ORDER BY posts.created DESC LIMIT 3",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.columns, vec!["QUERY PLAN".to_string()]);
    let text: Vec<String> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(0).to_string())
        .collect();
    let joined = text.join("\n");
    assert!(joined.contains("posts_author_created"), "{joined}");
    assert!(joined.contains("PkProbe(authors)"), "{joined}");
    assert!(joined.contains("ordered"), "{joined}");
    assert!(joined.contains("fetch_limit=3"), "{joined}");
    // EXPLAIN itself executes nothing.
    assert_eq!(out.cost.rows_scanned, 0);
}

#[test]
fn unqualified_ambiguous_where_pins_syntactic_resolution() {
    let db = blog_db(true);
    // `id` exists in both tables; the executor resolves it to authors
    // (syntactic first match), so the planner must not rotate posts into
    // the driving seat or fold `id = 5` into posts' probe key — author
    // 5's 30 posts must all come back.
    let sql = "SELECT * FROM authors JOIN posts ON posts.author_id = authors.id \
               WHERE id = 5";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert_eq!(
        plan.base.table, "authors",
        "ambiguous WHERE pins the syntactic order: {plan}"
    );
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 30);
    let base = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert_eq!(sorted_rows(out.result.rows), sorted_rows(base.result.rows));
}

#[test]
fn unqualified_on_column_shared_with_left_table_is_not_a_probe_key() {
    // Both tables carry a column `k`; `ON k = l.id` resolves `k` to the
    // *left* table (executor first-match), so it is a left-side filter,
    // not an equi-join key — probing r's index on k would drop rows, and
    // results would depend on index presence.
    let make = |indexed: bool| {
        let db = Database::default();
        db.execute_sql("CREATE TABLE l (id INT PRIMARY KEY, k INT NOT NULL)", &[])
            .unwrap();
        db.execute_sql("CREATE TABLE r (rid INT PRIMARY KEY, k INT NOT NULL)", &[])
            .unwrap();
        if indexed {
            db.execute_sql("CREATE INDEX r_k ON r (k)", &[]).unwrap();
        }
        for (id, k) in [(1i64, 1i64), (2, 5), (3, 3)] {
            db.execute_sql(
                "INSERT INTO l VALUES ($1, $2)",
                &[Value::Int(id), Value::Int(k)],
            )
            .unwrap();
        }
        for (rid, k) in [(10i64, 1i64), (11, 2), (12, 3), (13, 9)] {
            db.execute_sql(
                "INSERT INTO r VALUES ($1, $2)",
                &[Value::Int(rid), Value::Int(k)],
            )
            .unwrap();
        }
        db
    };
    let sql = "SELECT * FROM l JOIN r ON k = l.id";
    let with_idx = make(true).execute_sql(sql, &[]).unwrap();
    let without_idx = make(false).execute_sql(sql, &[]).unwrap();
    // l.k = l.id holds for rows 1 and 3 -> each pairs with all 4 r rows.
    assert_eq!(with_idx.result.rows.len(), 8);
    assert_eq!(
        sorted_rows(with_idx.result.rows),
        sorted_rows(without_idx.result.rows),
        "index presence must never change join results"
    );
}

#[test]
fn left_joins_keep_syntactic_order_and_pad_nulls() {
    let db = blog_db(true);
    // An author with no posts in score band 99: LEFT JOIN must null-pad,
    // and the planner must not rotate a LEFT join.
    let sql = "SELECT * FROM authors LEFT JOIN posts \
               ON posts.author_id = authors.id AND posts.score = 99";
    let plan = db.explain_sql(sql, &[]).unwrap();
    assert_eq!(plan.base.table, "authors", "LEFT joins never rotate");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 10, "one padded row per author");
    assert!(out.result.rows.iter().all(|r| r.get(2).is_null()));
    let base = blog_db(false).execute_sql(sql, &[]).unwrap();
    assert_eq!(sorted_rows(out.result.rows), sorted_rows(base.result.rows));
}

// ---------------------------------------------------------------------
// Property tests: every join order/method returns the nested-loop rows.
// ---------------------------------------------------------------------

fn two_table_db(indexed: bool, users: &[(i64, i64)], items: &[(i64, i64, i64)]) -> Database {
    let db = Database::default();
    db.create_table(
        TableSchema::builder("u")
            .pk("id")
            .column(ColumnDef::new("grp", ValueType::Int))
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("it")
            .pk("id")
            .column(ColumnDef::new("uid", ValueType::Int))
            .column(ColumnDef::new("v", ValueType::Int))
            .build()
            .unwrap(),
    )
    .unwrap();
    if indexed {
        db.create_index(
            "it",
            IndexDef {
                name: "it_uid".into(),
                columns: vec!["uid".into()],
                unique: false,
            },
        )
        .unwrap();
        db.create_index(
            "u",
            IndexDef {
                name: "u_grp".into(),
                columns: vec!["grp".into()],
                unique: false,
            },
        )
        .unwrap();
    }
    for (id, grp) in users {
        let _ = db.execute_sql(
            "INSERT INTO u VALUES ($1, $2)",
            &[Value::Int(*id), Value::Int(*grp)],
        );
    }
    for (id, uid, v) in items {
        let _ = db.execute_sql(
            "INSERT INTO it VALUES ($1, $2, $3)",
            &[Value::Int(*id), Value::Int(*uid), Value::Int(*v)],
        );
    }
    db
}

fn join_select(filter_grp: i64, filter_v: Option<i64>) -> (Select, Vec<Value>) {
    let mut sel = Select::star("u").join(
        TableRef::new("it"),
        Expr::qcol("it", "uid").eq(Expr::qcol("u", "id")),
    );
    let mut pred = Expr::qcol("u", "grp").eq(Expr::Param(0));
    let mut params = vec![Value::Int(filter_grp)];
    if let Some(v) = filter_v {
        params.push(Value::Int(v));
        pred = pred.and(Expr::qcol("it", "v").eq(Expr::Param(1)));
    }
    sel = sel.filter(pred);
    (sel, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever join order and probe method the planner picks, the row
    /// *set* must equal the index-free nested-loop baseline's.
    #[test]
    fn planned_joins_match_nested_loop_baseline(
        users in proptest::collection::vec((0..20i64, 0..4i64), 1..20),
        items in proptest::collection::vec((0..60i64, 0..25i64, 0..5i64), 0..60),
        grp in 0..4i64,
        v in proptest::option::of(0..5i64),
    ) {
        let fast = two_table_db(true, &users, &items);
        let slow = two_table_db(false, &users, &items);
        let (sel, params) = join_select(grp, v);
        let a = fast.select(&sel, &params).unwrap();
        let b = slow.select(&sel, &params).unwrap();
        prop_assert_eq!(
            sorted_rows(a.result.rows),
            sorted_rows(b.result.rows),
            "planned join order/method changed the row set"
        );
    }

    /// Ordered joined queries return *sequences* identical to the
    /// baseline, with or without indexes (order survival must never
    /// change visible order, only skip the sort).
    #[test]
    fn ordered_joins_match_baseline_sequence(
        users in proptest::collection::vec((0..12i64, 0..3i64), 1..12),
        items in proptest::collection::vec((0..40i64, 0..15i64, 0..4i64), 0..40),
        uid in 0..12i64,
    ) {
        let fast = two_table_db(true, &users, &items);
        let slow = two_table_db(false, &users, &items);
        // it filtered by uid, ordered by v, pk-joined to u.
        let sql = "SELECT * FROM it JOIN u ON u.id = it.uid \
                   WHERE it.uid = $1 ORDER BY it.v ASC, it.id ASC LIMIT 7";
        let a = fast.execute_sql(sql, &[Value::Int(uid)]).unwrap();
        let b = slow.execute_sql(sql, &[Value::Int(uid)]).unwrap();
        prop_assert_eq!(a.result.rows, b.result.rows);
    }
}
