//! End-to-end tests of the storage engine through the public [`Database`]
//! API: DDL, DML, joins, aggregates, triggers, transactions, cost reports.

use genie_storage::{
    row, ColumnDef, Database, DbConfig, Expr, Select, SelectItem, StorageError, TableRef,
    TableSchema, Trigger, TriggerEvent, Value, ValueType,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn social_db() -> Database {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE wall (post_id INT PRIMARY KEY, user_id INT NOT NULL, \
         content TEXT, sender_id INT, date_posted TIMESTAMP, \
         FOREIGN KEY (user_id) REFERENCES users (id))",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX wall_user ON wall (user_id)", &[])
        .unwrap();
    for i in 1..=5i64 {
        db.execute_sql(
            "INSERT INTO users VALUES ($1, $2)",
            &[Value::Int(i), Value::Text(format!("user{i}"))],
        )
        .unwrap();
    }
    db
}

fn post(db: &Database, post_id: i64, user_id: i64, sender: i64, ts: i64) {
    db.execute_sql(
        "INSERT INTO wall VALUES ($1, $2, $3, $4, $5)",
        &[
            Value::Int(post_id),
            Value::Int(user_id),
            Value::Text(format!("post {post_id}")),
            Value::Int(sender),
            Value::Timestamp(ts),
        ],
    )
    .unwrap();
}

#[test]
fn point_lookup_via_pk() {
    let db = social_db();
    let out = db
        .execute_sql("SELECT name FROM users WHERE id = $1", &[Value::Int(3)])
        .unwrap();
    assert_eq!(out.result.rows.len(), 1);
    assert_eq!(out.result.rows[0].get(0), &Value::Text("user3".into()));
    // PK probe, not a full scan: exactly one row visited.
    assert_eq!(out.cost.rows_scanned, 1);
    assert_eq!(out.cost.index_probes, 1);
}

#[test]
fn secondary_index_scan() {
    let db = social_db();
    for p in 0..10 {
        post(&db, p, 1 + (p % 2), 2, p);
    }
    let out = db
        .execute_sql("SELECT * FROM wall WHERE user_id = $1", &[Value::Int(1)])
        .unwrap();
    assert_eq!(out.result.rows.len(), 5);
    assert_eq!(out.cost.rows_scanned, 5, "index scan visits only matches");
    assert_eq!(out.cost.index_probes, 1);
}

#[test]
fn full_scan_when_no_index_applies() {
    let db = social_db();
    for p in 0..10 {
        post(&db, p, 1, 2, p);
    }
    let out = db
        .execute_sql("SELECT * FROM wall WHERE sender_id = 2", &[])
        .unwrap();
    assert_eq!(out.result.rows.len(), 10);
    assert_eq!(out.cost.rows_scanned, 10);
    assert_eq!(out.cost.index_probes, 0);
}

#[test]
fn top_k_query_shape() {
    let db = social_db();
    for p in 0..30 {
        post(&db, p, 1, 2, p * 10);
    }
    let out = db
        .execute_sql(
            "SELECT * FROM wall WHERE user_id = $1 ORDER BY date_posted DESC LIMIT 20",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 20);
    // Newest first.
    assert_eq!(out.result.rows[0].get(4), &Value::Timestamp(290));
    assert_eq!(out.result.rows[19].get(4), &Value::Timestamp(100));
    assert_eq!(out.cost.sorts, 1);
}

#[test]
fn join_wall_with_users() {
    let db = social_db();
    post(&db, 1, 2, 3, 100);
    post(&db, 2, 2, 4, 200);
    let sel = Select::star("wall")
        .join(
            TableRef::new("users"),
            Expr::qcol("users", "id").eq(Expr::qcol("wall", "sender_id")),
        )
        .filter(Expr::qcol("wall", "user_id").eq(Expr::Param(0)))
        .project(vec![
            SelectItem::Expr {
                expr: Expr::qcol("wall", "content"),
                alias: None,
            },
            SelectItem::Expr {
                expr: Expr::qcol("users", "name"),
                alias: Some("sender_name".into()),
            },
        ])
        .order("post_id", false);
    let out = db.select(&sel, &[Value::Int(2)]).unwrap();
    assert_eq!(out.result.columns, vec!["content", "sender_name"]);
    assert_eq!(out.result.rows.len(), 2);
    assert_eq!(out.result.rows[0].get(1), &Value::Text("user3".into()));
    assert_eq!(out.result.rows[1].get(1), &Value::Text("user4".into()));
}

#[test]
fn join_on_primary_key_uses_pk_index() {
    let db = social_db();
    post(&db, 1, 2, 3, 100);
    // wall JOIN users ON users.id = wall.sender_id — the join key is the
    // users PK, so the executor must probe, not scan all users per row.
    let out = db
        .execute_sql(
            "SELECT * FROM wall JOIN users ON users.id = wall.sender_id",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 1);
    assert!(
        out.cost.rows_scanned <= 3,
        "PK join must not scan the users table: {:?}",
        out.cost
    );
    assert!(out.cost.index_probes >= 1);
}

#[test]
fn left_join_pads_nulls() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE a (id INT PRIMARY KEY)", &[])
        .unwrap();
    db.execute_sql("CREATE TABLE b (id INT PRIMARY KEY, a_id INT)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO a VALUES (1), (2)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO b VALUES (10, 1)", &[]).unwrap();
    let out = db
        .execute_sql(
            "SELECT * FROM a LEFT JOIN b ON b.a_id = a.id ORDER BY a.id ASC",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 2);
    assert_eq!(out.result.rows[0].get(1), &Value::Int(10));
    assert!(out.result.rows[1].get(1).is_null());
    assert!(out.result.rows[1].get(2).is_null());
}

#[test]
fn count_and_group_by() {
    let db = social_db();
    for p in 0..9 {
        post(&db, p, 1 + (p % 3), 2, p);
    }
    let out = db
        .execute_sql(
            "SELECT COUNT(*) FROM wall WHERE user_id = $1",
            &[Value::Int(2)],
        )
        .unwrap();
    assert_eq!(out.result.scalar(), Some(&Value::Int(3)));

    let out = db
        .execute_sql(
            "SELECT user_id, COUNT(*) AS n FROM wall GROUP BY user_id",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 3);
    for row in &out.result.rows {
        assert_eq!(row.get(1), &Value::Int(3));
    }
}

#[test]
fn aggregate_functions() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE m (id INT PRIMARY KEY, v FLOAT)", &[])
        .unwrap();
    for (i, v) in [1.0, 2.0, 3.0, 6.0].iter().enumerate() {
        db.execute_sql(
            "INSERT INTO m VALUES ($1, $2)",
            &[Value::Int(i as i64), Value::Float(*v)],
        )
        .unwrap();
    }
    let out = db
        .execute_sql(
            "SELECT SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi, COUNT(v) AS n FROM m",
            &[],
        )
        .unwrap();
    let r = &out.result.rows[0];
    assert_eq!(r.get(0), &Value::Float(12.0));
    assert_eq!(r.get(1), &Value::Float(3.0));
    assert_eq!(r.get(2), &Value::Float(1.0));
    assert_eq!(r.get(3), &Value::Float(6.0));
    assert_eq!(r.get(4), &Value::Int(4));
}

#[test]
fn aggregates_over_empty_input() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE m (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    let out = db
        .execute_sql(
            "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo FROM m",
            &[],
        )
        .unwrap();
    let r = &out.result.rows[0];
    assert_eq!(r.get(0), &Value::Int(0));
    assert!(r.get(1).is_null());
    assert!(r.get(2).is_null());
}

#[test]
fn update_and_delete_with_predicates() {
    let db = social_db();
    for p in 0..4 {
        post(&db, p, 1, 2, p);
    }
    let out = db
        .execute_sql("UPDATE wall SET content = 'edited' WHERE post_id < 2", &[])
        .unwrap();
    assert_eq!(out.result.rows_affected, 2);
    let out = db
        .execute_sql("DELETE FROM wall WHERE post_id = 3", &[])
        .unwrap();
    assert_eq!(out.result.rows_affected, 1);
    let out = db
        .execute_sql("SELECT COUNT(*) FROM wall WHERE content = 'edited'", &[])
        .unwrap();
    assert_eq!(out.result.scalar(), Some(&Value::Int(2)));
    assert_eq!(db.row_count("wall").unwrap(), 3);
}

#[test]
fn foreign_key_enforced() {
    let db = social_db();
    let err = db
        .execute_sql("INSERT INTO wall VALUES (1, 999, 'x', 1, TS(0))", &[])
        .unwrap_err();
    assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
    // Null FK is allowed at the FK level (NOT NULL would catch separately).
    post(&db, 1, 2, 3, 0);
    let err = db
        .execute_sql("UPDATE wall SET user_id = 777 WHERE post_id = 1", &[])
        .unwrap_err();
    assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
}

#[test]
fn triggers_fire_per_row_with_images() {
    let db = social_db();
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&seen);
    db.create_trigger(Trigger::new(
        "wall_ins",
        "wall",
        TriggerEvent::Insert,
        move |ctx: &mut genie_storage::TriggerCtx<'_>| {
            assert_eq!(ctx.event, TriggerEvent::Insert);
            assert!(ctx.old.is_none());
            let new = ctx.new.expect("insert has NEW");
            s2.fetch_add(new.get(1).as_int().unwrap() as u64, Ordering::SeqCst);
            Ok(())
        },
    ))
    .unwrap();
    post(&db, 1, 2, 3, 0);
    post(&db, 2, 5, 3, 0);
    assert_eq!(seen.load(Ordering::SeqCst), 7);
    assert_eq!(db.stats().triggers_fired, 2);
}

#[test]
fn update_trigger_sees_old_and_new() {
    let db = social_db();
    post(&db, 1, 2, 3, 10);
    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = Arc::clone(&ok);
    db.create_trigger(Trigger::new(
        "wall_upd",
        "wall",
        TriggerEvent::Update,
        move |ctx: &mut genie_storage::TriggerCtx<'_>| {
            let old = ctx.old.unwrap();
            let new = ctx.new.unwrap();
            if old.get(4) == &Value::Timestamp(10) && new.get(4) == &Value::Timestamp(99) {
                ok2.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        },
    ))
    .unwrap();
    db.execute_sql(
        "UPDATE wall SET date_posted = TS(99) WHERE post_id = 1",
        &[],
    )
    .unwrap();
    assert_eq!(ok.load(Ordering::SeqCst), 1);
}

#[test]
fn trigger_can_query_database() {
    let db = social_db();
    let count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&count);
    db.create_trigger(Trigger::new(
        "wall_count",
        "wall",
        TriggerEvent::Insert,
        move |ctx: &mut genie_storage::TriggerCtx<'_>| {
            let sel = Select::star("wall").project(vec![SelectItem::count_star()]);
            let r = ctx.query(&sel, &[])?;
            c2.store(
                r.scalar().unwrap().as_int().unwrap() as u64,
                Ordering::SeqCst,
            );
            Ok(())
        },
    ))
    .unwrap();
    post(&db, 1, 2, 3, 0);
    post(&db, 2, 2, 3, 0);
    // AFTER semantics: the second trigger run sees both rows.
    assert_eq!(count.load(Ordering::SeqCst), 2);
}

#[test]
fn failing_trigger_aborts_statement() {
    let db = social_db();
    db.create_trigger(Trigger::new(
        "wall_fail",
        "wall",
        TriggerEvent::Insert,
        |_: &mut genie_storage::TriggerCtx<'_>| Err(StorageError::Eval("boom".into())),
    ))
    .unwrap();
    let err = db
        .execute_sql("INSERT INTO wall VALUES (1, 2, 'x', 3, TS(0))", &[])
        .unwrap_err();
    assert!(matches!(err, StorageError::TriggerFailed { .. }));
    // Statement rolled back: no row remains.
    assert_eq!(db.row_count("wall").unwrap(), 0);
}

#[test]
fn disabled_triggers_do_not_fire() {
    let db = social_db();
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    db.create_trigger(Trigger::new(
        "t",
        "wall",
        TriggerEvent::Insert,
        move |_: &mut genie_storage::TriggerCtx<'_>| {
            f2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        },
    ))
    .unwrap();
    db.set_triggers_enabled(false);
    post(&db, 1, 2, 3, 0);
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    db.set_triggers_enabled(true);
    post(&db, 2, 2, 3, 0);
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn transaction_commit_and_rollback() {
    let db = social_db();
    // Committed transaction persists.
    db.transaction(|tx| {
        tx.execute_sql("INSERT INTO wall VALUES (1, 2, 'a', 3, TS(0))", &[])?;
        tx.execute_sql("INSERT INTO wall VALUES (2, 2, 'b', 3, TS(1))", &[])?;
        Ok(())
    })
    .unwrap();
    assert_eq!(db.row_count("wall").unwrap(), 2);

    // Failed transaction rolls everything back.
    let err = db.transaction(|tx| {
        tx.execute_sql("INSERT INTO wall VALUES (3, 2, 'c', 3, TS(2))", &[])?;
        tx.execute_sql("UPDATE wall SET content = 'zap' WHERE post_id = 1", &[])?;
        tx.execute_sql("DELETE FROM wall WHERE post_id = 2", &[])?;
        // Duplicate PK fails the transaction.
        tx.execute_sql("INSERT INTO wall VALUES (1, 2, 'dup', 3, TS(3))", &[])?;
        Ok(())
    });
    assert!(err.is_err());
    assert_eq!(db.row_count("wall").unwrap(), 2, "insert rolled back");
    let out = db
        .execute_sql("SELECT content FROM wall WHERE post_id = 1", &[])
        .unwrap();
    assert_eq!(
        out.result.rows[0].get(0),
        &Value::Text("a".into()),
        "update rolled back"
    );
    let out = db
        .execute_sql("SELECT COUNT(*) FROM wall WHERE post_id = 2", &[])
        .unwrap();
    assert_eq!(
        out.result.scalar(),
        Some(&Value::Int(1)),
        "delete rolled back"
    );
    assert_eq!(db.stats().rollbacks, 1);
    assert_eq!(db.stats().commits, 1);
}

#[test]
fn rollback_restores_index_consistency() {
    let db = social_db();
    post(&db, 1, 2, 3, 0);
    let _ = db.transaction(|tx| -> genie_storage::Result<()> {
        tx.execute_sql("UPDATE wall SET user_id = 5 WHERE post_id = 1", &[])?;
        Err(StorageError::Eval("force rollback".into()))
    });
    // Index on user_id must still find the row under the old key.
    let out = db
        .execute_sql("SELECT * FROM wall WHERE user_id = $1", &[Value::Int(2)])
        .unwrap();
    assert_eq!(out.result.rows.len(), 1);
    let out = db
        .execute_sql("SELECT * FROM wall WHERE user_id = $1", &[Value::Int(5)])
        .unwrap();
    assert_eq!(out.result.rows.len(), 0);
}

#[test]
fn sql_begin_commit_statements() {
    let db = social_db();
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("INSERT INTO wall VALUES (1, 2, 'x', 3, TS(0))", &[])
        .unwrap();
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(db.row_count("wall").unwrap(), 1);
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("DELETE FROM wall", &[]).unwrap();
    db.execute_sql("ROLLBACK", &[]).unwrap();
    assert_eq!(db.row_count("wall").unwrap(), 1);
    assert!(matches!(
        db.execute_sql("COMMIT", &[]),
        Err(StorageError::NoTransaction)
    ));
}

#[test]
fn txn_triggers_fire_once_at_commit_coalesced() {
    let db = social_db();
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    db.create_trigger(Trigger::new(
        "wall_upd",
        "wall",
        TriggerEvent::Update,
        move |ctx: &mut genie_storage::TriggerCtx<'_>| {
            // The coalesced change carries the FIRST pre-image and the
            // LAST post-image of the whole transaction.
            assert_eq!(ctx.old.unwrap().get(4), &Value::Timestamp(0));
            assert_eq!(ctx.new.unwrap().get(4), &Value::Timestamp(30));
            f2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        },
    ))
    .unwrap();
    post(&db, 1, 2, 3, 0);
    db.execute_sql("BEGIN", &[]).unwrap();
    for ts in [10i64, 20, 30] {
        db.execute_sql(
            "UPDATE wall SET date_posted = $1 WHERE post_id = 1",
            &[Value::Timestamp(ts)],
        )
        .unwrap();
        // Nothing fires per statement inside the transaction.
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }
    let out = db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1, "three updates, one firing");
    assert_eq!(out.cost.triggers_fired, 1);
    assert_eq!(out.cost.wal_appends, 1, "one group WAL append");
}

#[test]
fn txn_rollback_fires_no_triggers() {
    let db = social_db();
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    for event in [
        TriggerEvent::Insert,
        TriggerEvent::Update,
        TriggerEvent::Delete,
    ] {
        let f3 = Arc::clone(&f2);
        db.create_trigger(Trigger::new(
            format!("t_{event}"),
            "wall",
            event,
            move |_: &mut genie_storage::TriggerCtx<'_>| {
                f3.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        ))
        .unwrap();
    }
    post(&db, 1, 2, 3, 0);
    fired.store(0, Ordering::SeqCst);
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("INSERT INTO wall VALUES (2, 2, 'x', 3, TS(1))", &[])
        .unwrap();
    db.execute_sql("UPDATE wall SET content = 'y' WHERE post_id = 1", &[])
        .unwrap();
    db.execute_sql("DELETE FROM wall WHERE post_id = 1", &[])
        .unwrap();
    db.execute_sql("ROLLBACK", &[]).unwrap();
    assert_eq!(
        fired.load(Ordering::SeqCst),
        0,
        "aborted txn publishes nothing"
    );
    assert_eq!(db.row_count("wall").unwrap(), 1);
}

#[test]
fn txn_insert_then_delete_is_invisible_to_triggers() {
    let db = social_db();
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fired);
    for event in [TriggerEvent::Insert, TriggerEvent::Delete] {
        let f3 = Arc::clone(&f2);
        db.create_trigger(Trigger::new(
            format!("t_{event}"),
            "wall",
            event,
            move |_: &mut genie_storage::TriggerCtx<'_>| {
                f3.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        ))
        .unwrap();
    }
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("INSERT INTO wall VALUES (9, 2, 'ghost', 3, TS(5))", &[])
        .unwrap();
    db.execute_sql("DELETE FROM wall WHERE post_id = 9", &[])
        .unwrap();
    let out = db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(
        fired.load(Ordering::SeqCst),
        0,
        "a row never visible outside the txn fires no triggers"
    );
    assert_eq!(out.cost.triggers_fired, 0);
}

#[test]
fn txn_delete_survives_pk_reuse_by_moved_row() {
    // DELETE pk=1, move pk=2 onto pk=1, then touch it again: the original
    // row's Delete must still fire at commit (two histories share one pk).
    let db = social_db();
    post(&db, 1, 2, 3, 10);
    post(&db, 2, 2, 3, 20);
    let events = Arc::new(parking_lot_like_log());
    for event in [
        TriggerEvent::Insert,
        TriggerEvent::Update,
        TriggerEvent::Delete,
    ] {
        let log = Arc::clone(&events);
        db.create_trigger(Trigger::new(
            format!("log_{event}"),
            "wall",
            event,
            move |ctx: &mut genie_storage::TriggerCtx<'_>| {
                log.lock().unwrap().push(format!(
                    "{}({:?}->{:?})",
                    ctx.event,
                    ctx.old.map(|r| r.get(0).clone()),
                    ctx.new.map(|r| r.get(0).clone()),
                ));
                Ok(())
            },
        ))
        .unwrap();
    }
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("DELETE FROM wall WHERE post_id = 1", &[])
        .unwrap();
    db.execute_sql("UPDATE wall SET post_id = 1 WHERE post_id = 2", &[])
        .unwrap();
    db.execute_sql("UPDATE wall SET content = 'x' WHERE post_id = 1", &[])
        .unwrap();
    db.execute_sql("COMMIT", &[]).unwrap();
    let fired = events.lock().unwrap().clone();
    assert!(
        fired.iter().any(|e| e.starts_with("DELETE")),
        "original row's delete must publish: {fired:?}"
    );
    assert!(
        fired.iter().any(|e| e.starts_with("UPDATE")),
        "moved row's update must publish: {fired:?}"
    );
    assert_eq!(fired.len(), 2, "one net change per row history: {fired:?}");
}

fn parking_lot_like_log() -> std::sync::Mutex<Vec<String>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn failing_trigger_at_commit_aborts_whole_txn() {
    let db = social_db();
    db.create_trigger(Trigger::new(
        "boom",
        "wall",
        TriggerEvent::Insert,
        |_: &mut genie_storage::TriggerCtx<'_>| Err(StorageError::Eval("boom".into())),
    ))
    .unwrap();
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("INSERT INTO wall VALUES (1, 2, 'a', 3, TS(0))", &[])
        .unwrap();
    db.execute_sql("INSERT INTO wall VALUES (2, 2, 'b', 3, TS(1))", &[])
        .unwrap();
    let err = db.execute_sql("COMMIT", &[]).unwrap_err();
    assert!(matches!(err, StorageError::TransactionAborted(_)), "{err}");
    assert_eq!(db.row_count("wall").unwrap(), 0, "both inserts undone");
    assert_eq!(db.stats().rollbacks, 1);
    assert_eq!(db.stats().commits, 0);
    assert!(!db.in_transaction());
}

#[test]
fn read_only_txn_commit_charges_no_wal() {
    let db = social_db();
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("SELECT * FROM users", &[]).unwrap();
    let out = db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(out.cost.wal_appends, 0, "read-only commit writes nothing");
    // A writing transaction pays exactly one group append.
    db.execute_sql("BEGIN", &[]).unwrap();
    post(&db, 1, 2, 3, 0);
    post(&db, 2, 2, 3, 1);
    let out = db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(out.cost.wal_appends, 1);
}

#[test]
fn count_pushdown_answers_from_index_with_explain_marker() {
    let db = social_db();
    for i in 1..=8 {
        post(&db, i, 1 + i % 3, 3, i);
    }
    db.reset_stats();
    let out = db
        .execute_sql(
            "SELECT COUNT(*) FROM wall WHERE user_id = $1",
            &[Value::Int(2)],
        )
        .unwrap();
    let truth = db
        .execute_sql("SELECT * FROM wall WHERE user_id = $1", &[Value::Int(2)])
        .unwrap()
        .result
        .rows
        .len() as i64;
    assert_eq!(out.result.scalar(), Some(&Value::Int(truth)));
    assert_eq!(out.cost.rows_scanned, 0, "no heap rows visited");
    assert_eq!(out.cost.page_touches(), 0);
    let plan = db
        .explain_sql(
            "SELECT COUNT(*) FROM wall WHERE user_id = $1",
            &[Value::Int(2)],
        )
        .unwrap();
    assert!(plan.count_only);
    assert!(plan.shape().contains("count-only"), "{}", plan.shape());
    // A predicate the key does not absorb falls back to scanning.
    let plan = db
        .explain_sql(
            "SELECT COUNT(*) FROM wall WHERE user_id = $1 AND content = 'x'",
            &[Value::Int(2)],
        )
        .unwrap();
    assert!(!plan.count_only);
}

#[test]
fn top_k_bounded_heap_matches_full_sort() {
    let db = social_db();
    // date_posted has no index; ORDER BY date_posted DESC LIMIT k takes
    // the bounded top-k path.
    for i in 1..=40 {
        post(&db, i, 1 + i % 5, 3, (i * 7919) % 101);
    }
    let limited = db
        .execute_sql(
            "SELECT post_id, date_posted FROM wall ORDER BY date_posted DESC LIMIT 5",
            &[],
        )
        .unwrap();
    let full = db
        .execute_sql(
            "SELECT post_id, date_posted FROM wall ORDER BY date_posted DESC",
            &[],
        )
        .unwrap();
    assert_eq!(limited.result.rows, full.result.rows[..5].to_vec());
    assert_eq!(limited.cost.sorts, 1);
    assert!(
        limited.cost.sort_rows < full.cost.sort_rows,
        "bounded heap does less sort work: {} vs {}",
        limited.cost.sort_rows,
        full.cost.sort_rows
    );
    // OFFSET composes.
    let offset = db
        .execute_sql(
            "SELECT post_id FROM wall ORDER BY date_posted DESC LIMIT 3 OFFSET 2",
            &[],
        )
        .unwrap();
    let full_ids: Vec<_> = full.result.rows[2..5].iter().map(|r| r.get(0)).collect();
    let got_ids: Vec<_> = offset.result.rows.iter().map(|r| r.get(0)).collect();
    assert_eq!(got_ids, full_ids);
}

#[test]
fn stat_deltas_cancel_on_rollback() {
    let db = social_db();
    post(&db, 1, 2, 3, 0);
    let _ = db.transaction(|tx| -> genie_storage::Result<()> {
        for i in 10..30i64 {
            tx.execute_sql(
                "INSERT INTO wall VALUES ($1, 2, 'x', 3, TS(0))",
                &[Value::Int(i)],
            )?;
        }
        Err(StorageError::Eval("force rollback".into()))
    });
    // The rolled-back inserts and their undo deletes cancelled in the
    // pending queue; planning still sees the single committed row.
    let plan = db
        .explain_sql("SELECT * FROM wall WHERE user_id = $1", &[Value::Int(2)])
        .unwrap();
    assert!(plan.base.estimated_rows <= 1.5, "{plan:?}");
}

#[test]
fn buffer_pool_pressure_creates_misses() {
    // Tiny pool: 4 pages of 1 KiB.
    let db = Database::new(DbConfig {
        buffer_pool_bytes: 4 * 1024,
        page_bytes: 1024,
    });
    db.create_table(
        TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("v", ValueType::Int))
            .rows_per_page(1) // one row per page: maximal pressure
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 0..64i64 {
        db.execute(
            &genie_storage::Statement::Insert(genie_storage::Insert {
                table: "t".into(),
                columns: vec![],
                rows: vec![vec![Expr::lit(i), Expr::lit(i)]],
            }),
            &[],
        )
        .unwrap();
    }
    db.reset_stats();
    // COUNT(*) no longer proves pool pressure: the planner answers it
    // from table metadata without touching the heap. Scan real rows.
    let out = db.execute_sql("SELECT * FROM t", &[]).unwrap();
    assert_eq!(out.result.rows.len(), 64);
    assert!(
        out.cost.page_misses > 50,
        "sequential scan of 64 one-row pages through a 4-page pool must miss: {:?}",
        out.cost
    );
    // The pushdown itself: exact count, zero page traffic, zero scans.
    let out = db.execute_sql("SELECT COUNT(*) FROM t", &[]).unwrap();
    assert_eq!(out.result.scalar(), Some(&Value::Int(64)));
    assert_eq!(out.cost.page_touches(), 0);
    assert_eq!(out.cost.rows_scanned, 0);
}

#[test]
fn repeated_point_reads_hit_pool() {
    let db = social_db();
    post(&db, 1, 2, 3, 0);
    db.reset_stats();
    for _ in 0..10 {
        db.execute_sql("SELECT * FROM wall WHERE post_id = 1", &[])
            .unwrap();
    }
    let ps = db.pool_stats();
    assert!(ps.hits >= 9, "expected warm reads, got {ps:?}");
}

#[test]
fn unique_index_via_sql() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE b (id INT PRIMARY KEY, url TEXT UNIQUE)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO b VALUES (1, 'http://x')", &[])
        .unwrap();
    let err = db
        .execute_sql("INSERT INTO b VALUES (2, 'http://x')", &[])
        .unwrap_err();
    assert!(matches!(err, StorageError::UniqueViolation { .. }));
}

#[test]
fn create_index_unique_via_sql_then_enforced() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, k INT)", &[])
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX t_k ON t (k)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1, 7)", &[]).unwrap();
    assert!(db.execute_sql("INSERT INTO t VALUES (2, 7)", &[]).is_err());
}

#[test]
fn in_list_and_like_filters() {
    let db = social_db();
    let out = db
        .execute_sql(
            "SELECT * FROM users WHERE id IN (1, 3, 5) ORDER BY id ASC",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 3);
    let out = db
        .execute_sql("SELECT * FROM users WHERE name LIKE 'user_'", &[])
        .unwrap();
    assert_eq!(out.result.rows.len(), 5);
    let out = db
        .execute_sql("SELECT * FROM users WHERE name LIKE 'user1%'", &[])
        .unwrap();
    assert_eq!(out.result.rows.len(), 1);
}

#[test]
fn offset_pagination() {
    let db = social_db();
    let out = db
        .execute_sql("SELECT id FROM users ORDER BY id ASC LIMIT 2 OFFSET 2", &[])
        .unwrap();
    assert_eq!(out.result.rows.len(), 2);
    assert_eq!(out.result.rows[0].get(0), &Value::Int(3));
}

#[test]
fn multi_row_insert() {
    let db = social_db();
    let out = db
        .execute_sql(
            "INSERT INTO wall VALUES (1, 1, 'a', 2, TS(0)), (2, 1, 'b', 2, TS(1)), (3, 1, 'c', 2, TS(2))",
            &[],
        )
        .unwrap();
    assert_eq!(out.result.rows_affected, 3);
}

#[test]
fn database_handle_is_cloneable_and_shared() {
    let db = social_db();
    let db2 = db.clone();
    post(&db, 1, 2, 3, 0);
    assert_eq!(db2.row_count("wall").unwrap(), 1);
}

#[test]
fn database_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
}

#[test]
fn order_by_null_sorts_first_asc() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1, 5), (2, NULL), (3, 1)", &[])
        .unwrap();
    let out = db
        .execute_sql("SELECT id FROM t ORDER BY v ASC", &[])
        .unwrap();
    let ids: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![2, 3, 1]);
}

#[test]
fn update_with_self_reference() {
    let db = Database::default();
    db.execute_sql("CREATE TABLE c (id INT PRIMARY KEY, n INT)", &[])
        .unwrap();
    db.execute_sql("INSERT INTO c VALUES (1, 10)", &[]).unwrap();
    db.execute_sql("UPDATE c SET n = n + 1 WHERE id = 1", &[])
        .unwrap();
    let out = db.execute_sql("SELECT n FROM c WHERE id = 1", &[]).unwrap();
    assert_eq!(out.result.rows[0].get(0), &Value::Int(11));
}

#[test]
fn row_macro_usable_downstream() {
    let r = row![1i64, "x", true];
    assert_eq!(r.arity(), 3);
}
