//! Planner behaviour tests: which access path gets chosen, what it costs,
//! and that every path returns exactly what a full scan would.

use genie_storage::plan::{AccessPath, Bound};
use genie_storage::{ColumnDef, Database, Expr, IndexDef, Select, TableSchema, Value, ValueType};

/// A wall-like table: pk `post_id`, FK `user_id`, timestamp `date_posted`,
/// composite index (user_id, date_posted) plus a single-column status
/// index.
fn wall_db(rows: i64) -> Database {
    let db = Database::default();
    db.create_table(
        TableSchema::builder("wall")
            .pk("post_id")
            .column(ColumnDef::new("user_id", ValueType::Int).not_null())
            .column(ColumnDef::new("date_posted", ValueType::Timestamp).not_null())
            .column(ColumnDef::new("status", ValueType::Int).not_null())
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_index(
        "wall",
        IndexDef {
            name: "wall_user_date".into(),
            columns: vec!["user_id".into(), "date_posted".into()],
            unique: false,
        },
    )
    .unwrap();
    db.create_index(
        "wall",
        IndexDef {
            name: "wall_status".into(),
            columns: vec!["status".into()],
            unique: false,
        },
    )
    .unwrap();
    for i in 0..rows {
        db.execute_sql(
            "INSERT INTO wall VALUES ($1, $2, $3, $4)",
            &[
                Value::Int(i),
                Value::Int(i % 10),
                Value::Timestamp(1000 + i),
                Value::Int(i % 3),
            ],
        )
        .unwrap();
    }
    db
}

fn explain(db: &Database, sql: &str, params: &[Value]) -> genie_storage::QueryPlan {
    db.explain_sql(sql, params).unwrap()
}

#[test]
fn equality_on_pk_uses_pk_probe() {
    let db = wall_db(100);
    let plan = explain(&db, "SELECT * FROM wall WHERE post_id = 7", &[]);
    assert_eq!(plan.base.path, AccessPath::PkEq { key: Value::Int(7) });
}

#[test]
fn reversed_equality_extracts_too() {
    let db = wall_db(100);
    // `7 = post_id` must plan identically to `post_id = 7`.
    let plan = explain(&db, "SELECT * FROM wall WHERE 7 = post_id", &[]);
    assert_eq!(plan.base.path, AccessPath::PkEq { key: Value::Int(7) });
    let plan = explain(&db, "SELECT * FROM wall WHERE 3 > post_id", &[]);
    assert_eq!(
        plan.base.path,
        AccessPath::PkRange {
            from: Bound::Unbounded,
            to: Bound::Excluded(Value::Int(3)),
        }
    );
}

#[test]
fn and_conjuncts_build_composite_index_key() {
    let db = wall_db(100);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE user_id = $1 AND date_posted = TS(1005)",
        &[Value::Int(5)],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexEq {
            index: "wall_user_date".into(),
            key: vec![Value::Int(5), Value::Timestamp(1005)],
        }
    );
}

#[test]
fn range_bounds_merge_into_one_scan() {
    let db = wall_db(100);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE user_id = 3 AND date_posted > TS(1010) AND date_posted <= TS(1050)",
        &[],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexRange {
            index: "wall_user_date".into(),
            eq_prefix: vec![Value::Int(3)],
            from: Bound::Excluded(Value::Timestamp(1010)),
            to: Bound::Included(Value::Timestamp(1050)),
        }
    );
    // Conflicting bounds keep the tightest pair.
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE user_id = 3 AND date_posted > TS(1000) AND date_posted >= TS(1020)",
        &[],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexRange {
            index: "wall_user_date".into(),
            eq_prefix: vec![Value::Int(3)],
            from: Bound::Included(Value::Timestamp(1020)),
            to: Bound::Unbounded,
        }
    );
}

#[test]
fn between_desugars_to_range() {
    let db = wall_db(100);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE user_id = 2 AND date_posted BETWEEN TS(1004) AND TS(1040)",
        &[],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexRange {
            index: "wall_user_date".into(),
            eq_prefix: vec![Value::Int(2)],
            from: Bound::Included(Value::Timestamp(1004)),
            to: Bound::Included(Value::Timestamp(1040)),
        }
    );
}

#[test]
fn prefix_equality_scans_composite_index() {
    let db = wall_db(100);
    let plan = explain(&db, "SELECT * FROM wall WHERE user_id = 4", &[]);
    assert_eq!(
        plan.base.path,
        AccessPath::IndexPrefixRange {
            index: "wall_user_date".into(),
            prefix: vec![Value::Int(4)],
        }
    );
}

#[test]
fn in_list_dedups_and_sorts_keys() {
    let db = wall_db(100);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE status IN (2, 0, 2, $1, 0)",
        &[Value::Int(0)],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexOr {
            index: "wall_status".into(),
            keys: vec![Value::Int(0), Value::Int(2)],
        }
    );
}

#[test]
fn or_equality_chain_plans_like_in() {
    let db = wall_db(100);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE status = 2 OR status = 0",
        &[],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexOr {
            index: "wall_status".into(),
            keys: vec![Value::Int(0), Value::Int(2)],
        }
    );
    // Mixed-column OR is not a multi-key lookup.
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE status = 2 OR user_id = 0",
        &[],
    );
    assert_eq!(plan.base.path, AccessPath::TableScan);
}

#[test]
fn pk_in_list_probes_instead_of_scanning() {
    let db = wall_db(100);
    let sql = "SELECT * FROM wall WHERE post_id IN (13, 5, 13, 40) ORDER BY post_id";
    let plan = explain(&db, sql, &[]);
    assert_eq!(
        plan.base.path,
        AccessPath::PkOr {
            keys: vec![Value::Int(5), Value::Int(13), Value::Int(40)],
        }
    );
    assert!(plan.order_satisfied, "sorted pk keys give pk order");
    let out = db.execute_sql(sql, &[]).unwrap();
    assert_eq!(out.cost.rows_scanned, 3);
    assert_eq!(out.cost.sorts, 0);
    let ids: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![5, 13, 40]);
}

#[test]
fn composite_index_wins_selectivity_ties() {
    // Single-column and composite indexes whose leading column has the
    // same cardinality tie on estimated rows; the wider matched key must
    // win deterministically.
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE inv (id INT PRIMARY KEY, to_user INT NOT NULL, status INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX inv_user ON inv (to_user)", &[])
        .unwrap();
    db.execute_sql("CREATE INDEX inv_user_status ON inv (to_user, status)", &[])
        .unwrap();
    // All rows share status 0, so distinct(to_user) == distinct(to_user, status).
    for i in 0..60i64 {
        db.execute_sql(
            "INSERT INTO inv VALUES ($1, $2, 0)",
            &[Value::Int(i), Value::Int(i % 20)],
        )
        .unwrap();
    }
    let plan = explain(
        &db,
        "SELECT * FROM inv WHERE to_user = 3 AND status = 0",
        &[],
    );
    assert_eq!(
        plan.base.path,
        AccessPath::IndexEq {
            index: "inv_user_status".into(),
            key: vec![Value::Int(3), Value::Int(0)],
        }
    );
}

#[test]
fn non_indexable_predicates_fall_back_to_scan() {
    let db = wall_db(100);
    for sql in [
        "SELECT * FROM wall",
        "SELECT * FROM wall WHERE date_posted = TS(1010)", // not a leading index column
        "SELECT * FROM wall WHERE status <> 1",
        "SELECT * FROM wall WHERE status + 1 = 2",
        "SELECT * FROM wall WHERE user_id IS NULL",
    ] {
        let plan = explain(&db, sql, &[]);
        assert_eq!(plan.base.path, AccessPath::TableScan, "{sql}");
    }
}

#[test]
fn order_by_on_index_skips_sort() {
    let db = wall_db(100);
    let sel = "SELECT * FROM wall WHERE user_id = 3 ORDER BY date_posted DESC LIMIT 5";
    let plan = explain(&db, sel, &[]);
    assert!(plan.order_satisfied, "{plan}");
    assert!(plan.base.reverse);
    let out = db.execute_sql(sel, &[]).unwrap();
    assert_eq!(out.cost.sorts, 0, "index order must skip the sort");
    // Correct order: newest first.
    let ts: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(2).as_timestamp().unwrap())
        .collect();
    let mut sorted = ts.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(ts, sorted);
    assert_eq!(ts.len(), 5);

    // An order the index cannot produce still sorts.
    let out = db
        .execute_sql("SELECT * FROM wall WHERE user_id = 3 ORDER BY status", &[])
        .unwrap();
    assert_eq!(out.cost.sorts, 1);
}

#[test]
fn range_scan_reads_fewer_rows_than_full_scan() {
    let db = wall_db(200);
    let out = db
        .execute_sql(
            "SELECT * FROM wall WHERE user_id = 3 AND date_posted > TS(1100)",
            &[],
        )
        .unwrap();
    // user 3 owns 20 rows; about half are past TS(1100). A full scan
    // would report 200.
    assert!(
        out.cost.rows_scanned <= 20,
        "rows_scanned {} should be bounded by the index range",
        out.cost.rows_scanned
    );
    assert_eq!(out.cost.index_probes, 1);
    let full = db
        .execute_sql("SELECT * FROM wall WHERE status + 1 = 1", &[])
        .unwrap();
    assert_eq!(full.cost.rows_scanned, 200);
}

#[test]
fn every_path_matches_full_scan_semantics() {
    let db = wall_db(150);
    let queries = [
        "SELECT * FROM wall WHERE post_id = 14",
        "SELECT * FROM wall WHERE post_id BETWEEN 10 AND 30",
        "SELECT * FROM wall WHERE post_id >= 140",
        "SELECT * FROM wall WHERE user_id = 7",
        "SELECT * FROM wall WHERE user_id = 7 AND date_posted < TS(1100)",
        "SELECT * FROM wall WHERE status IN (0, 2)",
        "SELECT * FROM wall WHERE status = 0 OR status = 2",
        "SELECT * FROM wall WHERE user_id = 7 ORDER BY date_posted DESC",
        "SELECT * FROM wall WHERE user_id = 7 ORDER BY date_posted ASC LIMIT 3",
    ];
    for sql in queries {
        let planned = db.execute_sql(sql, &[]).unwrap();
        // Defeat the planner by hiding the predicate under a double
        // negation: conjunct extraction does not descend into NOT, and
        // NOT (NOT p) matches exactly the rows p does under three-valued
        // logic.
        let (pred_part, tail) = match sql.find(" ORDER BY") {
            Some(i) => sql.split_at(i),
            None => (sql, ""),
        };
        let scan_sql = format!(
            "{})){tail}",
            pred_part.replacen("WHERE ", "WHERE NOT (NOT (", 1)
        );
        let scanned = db.execute_sql(&scan_sql, &[]).unwrap();
        assert_eq!(
            db.explain_sql(&scan_sql, &[]).unwrap().base.path,
            AccessPath::TableScan,
            "{scan_sql}"
        );
        let key = |r: &genie_storage::Row| r.values().to_vec();
        let mut a = planned.result.rows.clone();
        let mut b = scanned.result.rows.clone();
        // Unordered queries may differ in row order between paths.
        if !sql.contains("ORDER BY") {
            a.sort_by_key(key);
            b.sort_by_key(key);
        }
        assert_eq!(a, b, "{sql}");
    }
}

#[test]
fn order_by_ties_with_limit_match_full_scan() {
    // Rows tying on the ORDER BY keys must come back in heap (insertion)
    // order whether or not an index exists — the stable sort's tie order
    // — so LIMIT selects the same rows either way. Exercises both the
    // trailing-index-column trap (index (u, d) ordering u-ties by d) and
    // reverse scans (DESC must not flip rid order within equal keys).
    let make = |indexed: bool| {
        let db = Database::default();
        db.execute_sql(
            "CREATE TABLE t (id INT PRIMARY KEY, u INT NOT NULL, d INT)",
            &[],
        )
        .unwrap();
        if indexed {
            db.execute_sql("CREATE INDEX t_u_d ON t (u, d)", &[])
                .unwrap();
            db.execute_sql("CREATE INDEX t_u ON t (u)", &[]).unwrap();
        }
        // Several rows share u = 2, one with d NULL (sorts first in the
        // index); heap order is id order.
        for (id, u, d) in [
            (14i64, 2i64, Value::Null),
            (15, 0, Value::Int(50)),
            (16, 2, Value::Int(9)),
            (17, 2, Value::Int(83)),
            (18, 0, Value::Int(1)),
            (19, 2, Value::Int(9)),
        ] {
            db.execute_sql(
                "INSERT INTO t VALUES ($1, $2, $3)",
                &[Value::Int(id), Value::Int(u), d],
            )
            .unwrap();
        }
        db
    };
    let with_idx = make(true);
    let without_idx = make(false);
    for sql in [
        "SELECT * FROM t WHERE u IN (0, 2) ORDER BY u DESC LIMIT 5",
        "SELECT * FROM t WHERE u IN (0, 2) ORDER BY u ASC LIMIT 3",
        "SELECT * FROM t WHERE u = 2 ORDER BY u LIMIT 2",
        "SELECT * FROM t WHERE u = 2 ORDER BY d DESC LIMIT 2",
        "SELECT * FROM t WHERE u >= 0 ORDER BY u LIMIT 4",
        "SELECT * FROM t WHERE u IN (0, 2)",
    ] {
        let a = with_idx.execute_sql(sql, &[]).unwrap().result.rows;
        let b = without_idx.execute_sql(sql, &[]).unwrap().result.rows;
        assert_eq!(a, b, "{sql} depends on index presence");
    }
}

#[test]
fn explain_displays_readably() {
    let db = wall_db(50);
    let plan = explain(
        &db,
        "SELECT * FROM wall WHERE user_id = 3 AND date_posted >= TS(1004) ORDER BY date_posted",
        &[],
    );
    let text = plan.to_string();
    assert!(text.contains("IndexRange"), "{text}");
    assert!(text.contains("wall_user_date"), "{text}");
    assert!(text.contains("ordered"), "{text}");
}

#[test]
fn empty_in_list_of_nulls_reads_nothing() {
    let db = wall_db(50);
    let out = db
        .execute_sql("SELECT * FROM wall WHERE status IN (NULL)", &[])
        .unwrap();
    assert!(out.result.rows.is_empty());
    assert_eq!(out.cost.rows_scanned, 0);
}

#[test]
fn inverted_range_is_empty_not_panicking() {
    let db = wall_db(50);
    let out = db
        .execute_sql(
            "SELECT * FROM wall WHERE post_id > 40 AND post_id < 10",
            &[],
        )
        .unwrap();
    assert!(out.result.rows.is_empty());
    let out = db
        .execute_sql(
            "SELECT * FROM wall WHERE user_id = 1 AND date_posted BETWEEN TS(1050) AND TS(1000)",
            &[],
        )
        .unwrap();
    assert!(out.result.rows.is_empty());
}

#[test]
fn float_bound_on_int_pk_still_ranges() {
    let db = wall_db(50);
    let out = db
        .execute_sql("SELECT * FROM wall WHERE post_id < 2.5", &[])
        .unwrap();
    assert_eq!(out.result.rows.len(), 3, "0, 1, 2 are below 2.5");
}

#[test]
fn unique_index_equality_is_point_lookup() {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE users (id INT PRIMARY KEY, email TEXT UNIQUE)",
        &[],
    )
    .unwrap();
    for i in 0..20i64 {
        db.execute_sql(
            "INSERT INTO users VALUES ($1, $2)",
            &[Value::Int(i), Value::Text(format!("u{i}@x"))],
        )
        .unwrap();
    }
    let sel = Select::star("users").filter(Expr::col("email").eq(Expr::lit("u7@x")));
    let plan = db.explain(&sel, &[]).unwrap();
    assert_eq!(
        plan.base.path,
        AccessPath::IndexEq {
            index: "users_email_key".into(),
            key: vec![Value::Text("u7@x".into())],
        }
    );
    let out = db.select(&sel, &[]).unwrap();
    assert_eq!(out.result.rows.len(), 1);
    assert_eq!(out.cost.rows_scanned, 1);
}
