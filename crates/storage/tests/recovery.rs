//! Crash-injection tests for the write-ahead log and ARIES-lite restart
//! recovery.
//!
//! Every test follows the same shape: build a durable database, commit a
//! known history, then crash it — by dropping the handle (a clean crash:
//! commits are durable the moment they are reported), by copying the log
//! directory out from under a live database (an OS-level crash image), or
//! by corrupting the log bytes directly (torn tail, flipped checksum,
//! truncated frame header). Recovery must then reconstruct exactly the
//! committed prefix: every acknowledged commit present, every in-flight
//! transaction gone, indexes and planner statistics consistent, and
//! `commit_epoch` equal to the prefix length.
//!
//! The crash matrix in `docs/DURABILITY.md` maps each failure mode to the
//! test covering it.

use genie_storage::{Database, DbConfig, StorageError, SyncPolicy, Value, WalConfig};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static TMP_SEQ: AtomicU32 = AtomicU32::new(0);

/// Process-unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "genie-recovery-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Log segment files in `dir`, sorted by name (= by sequence).
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    out.sort();
    out
}

/// Copies the log directory byte-for-byte — the moral equivalent of the
/// machine losing power and the disk surviving.
fn crash_copy(dir: &Path, tag: &str) -> Scratch {
    let copy = Scratch::new(tag);
    fs::create_dir_all(copy.path()).unwrap();
    for entry in fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        fs::copy(&p, copy.path().join(p.file_name().unwrap())).unwrap();
    }
    copy
}

fn wal_cfg() -> WalConfig {
    WalConfig {
        checkpoint_every: 0, // tests checkpoint explicitly
        ..WalConfig::default()
    }
}

fn durable(dir: &Path) -> Database {
    Database::create_durable(dir, DbConfig::default(), wal_cfg()).unwrap()
}

/// A small schema with a secondary index and enough shape to exercise
/// insert/update/delete/pk-move redo.
fn seed(db: &Database, rows: i64) {
    db.execute_sql(
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, karma INT)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE INDEX users_karma ON users (karma)", &[])
        .unwrap();
    for i in 0..rows {
        db.execute_sql(
            "INSERT INTO users VALUES ($1, $2, $3)",
            &[
                Value::Int(i),
                Value::Text(format!("u{i}")),
                Value::Int(i % 7),
            ],
        )
        .unwrap();
    }
}

#[test]
fn fresh_or_absent_dir_is_a_valid_fresh_start() {
    let s = Scratch::new("fresh");
    let (db, report) = Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    assert!(db.is_durable());
    assert_eq!(report.recovered_epoch, 0);
    assert_eq!(report.replayed_commits, 0);
    seed(&db, 5);
    let digest = db.content_digest();
    drop(db);
    let reopened = Database::open_with_recovery(s.path()).unwrap();
    assert_eq!(reopened.content_digest(), digest);
    assert_eq!(reopened.row_count("users").unwrap(), 5);
}

#[test]
fn create_durable_refuses_an_existing_log() {
    let s = Scratch::new("refuse");
    let db = durable(s.path());
    seed(&db, 1);
    drop(db);
    match Database::create_durable(s.path(), DbConfig::default(), wal_cfg()) {
        Err(StorageError::Wal(msg)) => assert!(msg.contains("open_with_recovery"), "{msg}"),
        other => panic!("expected Wal error, got {other:?}"),
    }
}

#[test]
fn clean_restart_replays_the_full_history() {
    let s = Scratch::new("clean");
    let db = durable(s.path());
    seed(&db, 50);
    // Mixed traffic: updates, deletes, a transaction, and a pk swap via
    // a temporary key (the redo record for it nets to a two-row move).
    db.execute_sql("UPDATE users SET karma = karma + 10 WHERE id < 20", &[])
        .unwrap();
    db.execute_sql("DELETE FROM users WHERE id >= 45", &[])
        .unwrap();
    db.transaction(|t| {
        t.execute_sql("UPDATE users SET id = 1000 WHERE id = 1", &[])?;
        t.execute_sql("UPDATE users SET id = 1 WHERE id = 2", &[])?;
        t.execute_sql("UPDATE users SET id = 2 WHERE id = 1000", &[])?;
        Ok(())
    })
    .unwrap();
    let digest = db.content_digest();
    let epoch = db.commit_epoch();
    drop(db);

    let (recovered, report) =
        Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    assert_eq!(report.recovered_epoch, epoch);
    assert!(report.truncated.is_none(), "clean log, nothing to cut");
    assert_eq!(recovered.commit_epoch(), epoch);
    assert_eq!(recovered.content_digest(), digest, "byte-identical state");
    // The pk swap really swapped.
    let out = recovered
        .execute_sql("SELECT name FROM users WHERE id = 1", &[])
        .unwrap();
    assert_eq!(out.result.rows[0].get(0), &Value::Text("u2".into()));
}

#[test]
fn torn_tail_is_discarded_and_the_prefix_survives() {
    let s = Scratch::new("torn");
    let db = durable(s.path());
    seed(&db, 10);
    let digest = db.content_digest();
    let epoch = db.commit_epoch();
    drop(db);

    // A commit whose frame only partially reached the disk: valid
    // header, body cut short mid-payload.
    let seg = segments(s.path()).pop().unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&64u32.to_le_bytes()); // claims 64 payload bytes
    bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 20]); // ...delivers 20
    fs::write(&seg, &bytes).unwrap();

    let (recovered, report) =
        Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    let (_, _, reason) = report.truncated.expect("tail must be detected");
    assert!(reason.contains("truncated"), "{reason}");
    assert_eq!(recovered.commit_epoch(), epoch);
    assert_eq!(recovered.content_digest(), digest);

    // The truncation is durable: recovering the directory again finds a
    // clean log and the identical state.
    drop(recovered);
    let (again, report2) = Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    assert!(report2.truncated.is_none(), "cleanup already ran");
    assert_eq!(again.content_digest(), digest);
}

#[test]
fn corrupted_checksum_mid_log_cuts_there() {
    let s = Scratch::new("crc");
    let db = durable(s.path());
    seed(&db, 30);
    drop(db);

    // Flip one byte around the middle of the segment: every record
    // before the damaged frame replays, everything after is discarded
    // (the log cannot vouch for anything past unverifiable bytes).
    let seg = segments(s.path()).pop().unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&seg, &bytes).unwrap();

    let (recovered, report) =
        Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    let (_, offset, _) = report.truncated.expect("corruption must be detected");
    assert!(offset as usize <= mid, "cut at or before the damaged frame");
    let epoch = recovered.commit_epoch();
    assert!(epoch > 0, "the undamaged prefix replays");
    assert!(
        epoch < 31,
        "records after the damage are gone (epoch {epoch})"
    );
    assert_eq!(
        recovered.row_count("users").unwrap() as u64,
        epoch,
        "exactly one surviving insert per surviving epoch"
    );
}

#[test]
fn truncated_length_prefix_is_a_torn_tail() {
    let s = Scratch::new("short");
    let db = durable(s.path());
    seed(&db, 8);
    let digest = db.content_digest();
    drop(db);

    // Cut the file mid-frame-header: 2 bytes of a 4-byte length field.
    let seg = segments(s.path()).pop().unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x01, 0x00]);
    fs::write(&seg, &bytes).unwrap();

    let (recovered, report) =
        Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    let (_, _, reason) = report.truncated.expect("short header must be detected");
    assert!(reason.contains("header"), "{reason}");
    assert_eq!(recovered.content_digest(), digest);
}

#[test]
fn in_flight_transactions_leave_no_trace() {
    let s = Scratch::new("inflight");
    let db = durable(s.path());
    seed(&db, 5);
    let committed_digest = db.content_digest();

    // An open transaction with buffered writes: nothing of it may reach
    // the log before COMMIT, so a crash image taken now must not know
    // the row.
    let mut txn = db.begin_concurrent().unwrap();
    txn.execute_sql("INSERT INTO users VALUES (99, 'ghost', 0)", &[])
        .unwrap();
    let copy = crash_copy(s.path(), "inflight-img");
    let (recovered, _) = Database::open_with(copy.path(), DbConfig::default(), wal_cfg()).unwrap();
    assert_eq!(recovered.content_digest(), committed_digest);
    let out = recovered
        .execute_sql("SELECT id FROM users WHERE id = 99", &[])
        .unwrap();
    assert!(out.result.rows.is_empty(), "in-flight row leaked");
    drop(txn);
}

#[test]
fn indexes_and_statistics_survive_recovery() {
    let s = Scratch::new("index");
    let db = durable(s.path());
    seed(&db, 40);
    drop(db);

    let recovered = Database::open_with_recovery(s.path()).unwrap();
    // The secondary index exists (a duplicate create collides)...
    match recovered.execute_sql("CREATE INDEX users_karma ON users (karma)", &[]) {
        Err(StorageError::AlreadyExists(_)) => {}
        other => panic!("index should have been recovered, got {other:?}"),
    }
    // ...the planner picks it up (statistics were flushed by replay)...
    let plan = recovered
        .explain_sql("SELECT name FROM users WHERE karma = 3", &[])
        .unwrap();
    assert_eq!(
        plan.base.path.index_name(),
        Some("users_karma"),
        "index unused:\n{plan}"
    );
    // ...and it returns exactly the right rows.
    let out = recovered
        .execute_sql("SELECT id FROM users WHERE karma = 3 ORDER BY id", &[])
        .unwrap();
    let ids: Vec<i64> = out
        .result
        .rows
        .iter()
        .map(|r| match r.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    let expect: Vec<i64> = (0..40).filter(|i| i % 7 == 3).collect();
    assert_eq!(ids, expect);
}

#[test]
fn checkpoint_truncates_and_recovery_starts_from_it() {
    let s = Scratch::new("ckpt");
    let db = durable(s.path());
    seed(&db, 20);
    let stats = db.checkpoint().unwrap();
    assert_eq!(stats.tables, 1);
    assert_eq!(stats.rows, 20);
    assert!(stats.segments_deleted >= 1, "the sealed prefix is gone");
    // Post-checkpoint traffic replays on top of the image.
    for i in 20..25 {
        db.execute_sql(
            "INSERT INTO users VALUES ($1, $2, $3)",
            &[
                Value::Int(i),
                Value::Text(format!("u{i}")),
                Value::Int(i % 7),
            ],
        )
        .unwrap();
    }
    let digest = db.content_digest();
    let epoch = db.commit_epoch();
    drop(db);

    let (recovered, report) =
        Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
    assert_eq!(report.checkpoint_epoch, stats.epoch);
    assert_eq!(report.replayed_commits, 5, "only the post-image commits");
    assert_eq!(recovered.commit_epoch(), epoch);
    assert_eq!(recovered.content_digest(), digest);
}

#[test]
fn checkpoint_never_loses_records_it_still_needs() {
    // Deterministic interleaving of commits and checkpoints, with a
    // crash image taken after every step: whatever the cut, the image
    // must recover to the state committed at that moment.
    let s = Scratch::new("ckpt-interleave");
    let db = durable(s.path());
    seed(&db, 4);
    for round in 0..6 {
        db.execute_sql(
            "UPDATE users SET karma = $1 WHERE id = $2",
            &[Value::Int(round * 100), Value::Int(round % 4)],
        )
        .unwrap();
        if round % 2 == 1 {
            db.checkpoint().unwrap();
        }
        let expect = db.content_digest();
        let copy = crash_copy(s.path(), "ckpt-step");
        let (recovered, _) =
            Database::open_with(copy.path(), DbConfig::default(), wal_cfg()).unwrap();
        assert_eq!(
            recovered.content_digest(),
            expect,
            "round {round}: checkpoint/truncation lost a needed record"
        );
    }
}

#[test]
fn read_only_commits_append_nothing() {
    let s = Scratch::new("readonly");
    let db = durable(s.path());
    seed(&db, 3);
    let before = db.wal_stats().unwrap();

    // Autocommit read.
    let out = db.execute_sql("SELECT * FROM users", &[]).unwrap();
    assert_eq!(out.cost.wal_appends, 0);
    assert_eq!(out.cost.wal_bytes, 0);
    assert_eq!(out.cost.wal_syncs, 0);
    // Read-only transaction.
    let mut txn = db.begin_concurrent().unwrap();
    txn.execute_sql("SELECT count(*) FROM users", &[]).unwrap();
    let cost = txn.commit().unwrap();
    assert_eq!(cost.wal_appends, 0);
    assert_eq!(cost.wal_bytes, 0);
    assert_eq!(cost.wal_syncs, 0);
    // A write statement that matches no rows commits nothing.
    let out = db
        .execute_sql("UPDATE users SET karma = 1 WHERE id = 12345", &[])
        .unwrap();
    assert_eq!(out.cost.wal_appends, 0);
    assert_eq!(out.cost.wal_bytes, 0);

    let after = db.wal_stats().unwrap();
    assert_eq!(after.records, before.records, "no record hit the log");
    assert_eq!(after.bytes, before.bytes);

    // And the measured counters are real: a writing commit reports the
    // same bytes the log writer accounted.
    let out = db
        .execute_sql("UPDATE users SET karma = 1 WHERE id = 1", &[])
        .unwrap();
    assert_eq!(out.cost.wal_appends, 1);
    assert!(out.cost.wal_bytes > 0);
    let final_stats = db.wal_stats().unwrap();
    assert_eq!(final_stats.bytes - after.bytes, out.cost.wal_bytes);
}

#[test]
fn per_commit_policy_recovers_identically() {
    let s = Scratch::new("percommit");
    let cfg = WalConfig {
        sync: SyncPolicy::PerCommit,
        checkpoint_every: 0,
        ..WalConfig::default()
    };
    let db = Database::create_durable(s.path(), DbConfig::default(), cfg).unwrap();
    seed(&db, 12);
    let digest = db.content_digest();
    let stats = db.wal_stats().unwrap();
    assert_eq!(
        stats.syncs, stats.batches,
        "per-commit: one sync per batch of one"
    );
    drop(db);
    let recovered = Database::open_with_recovery(s.path()).unwrap();
    assert_eq!(recovered.content_digest(), digest);
}

// ---------------------------------------------------------------------------
// Randomized crash points
// ---------------------------------------------------------------------------

/// One workload operation; epochs advance only on ops that change rows.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn apply(db: &Database, op: &Op) {
    // Constraint violations (duplicate insert) abort the statement
    // without consuming an epoch — identically on both databases.
    let r = match op {
        Op::Insert(pk, v) => db.execute_sql(
            "INSERT INTO kv VALUES ($1, $2)",
            &[Value::Int(*pk), Value::Int(*v)],
        ),
        Op::Update(pk, v) => db.execute_sql(
            "UPDATE kv SET v = $1 WHERE k = $2",
            &[Value::Int(*v), Value::Int(*pk)],
        ),
        Op::Delete(pk) => db.execute_sql("DELETE FROM kv WHERE k = $1", &[Value::Int(*pk)]),
    };
    match r {
        Ok(_) | Err(StorageError::UniqueViolation { .. }) => {}
        Err(e) => panic!("unexpected error applying {op:?}: {e}"),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..16i64, 0..100i64).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..16i64, 0..100i64).prop_map(|(k, v)| Op::Update(k, v)),
        (0..16i64).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cut the log at an arbitrary byte and recover: the result must be
    /// exactly the state after the first `recovered_epoch` effective
    /// ops — never a blend, never an in-flight fragment.
    #[test]
    fn recovery_is_a_prefix_of_committed_ops(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let s = Scratch::new("prop");
        let db = durable(s.path());
        db.execute_sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT)", &[]).unwrap();
        // Seal the DDL into a checkpoint so the byte cut below can only
        // land inside commit records, never mid-CREATE TABLE.
        db.checkpoint().unwrap();
        for op in &ops {
            apply(&db, op);
        }
        let full_epoch = db.commit_epoch();
        drop(db);

        // Crash: keep only a prefix of the single segment's bytes.
        let seg = segments(s.path()).pop().unwrap();
        let bytes = fs::read(&seg).unwrap();
        let keep = (bytes.len() as f64 * cut_frac) as usize;
        fs::write(&seg, &bytes[..keep]).unwrap();

        let (recovered, report) =
            Database::open_with(s.path(), DbConfig::default(), wal_cfg()).unwrap();
        let epoch = report.recovered_epoch;
        prop_assert!(epoch <= full_epoch);
        prop_assert_eq!(recovered.commit_epoch(), epoch);

        // Mirror: the same ops on an in-memory database, stopped once
        // its epoch reaches the recovered prefix. Ops beyond that point
        // either consumed later epochs (discarded by the cut) or
        // changed nothing.
        let mirror = Database::default();
        mirror.execute_sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT)", &[]).unwrap();
        for op in &ops {
            if mirror.commit_epoch() >= epoch {
                break;
            }
            apply(&mirror, op);
        }
        prop_assert_eq!(mirror.commit_epoch(), epoch);
        prop_assert_eq!(
            recovered.content_digest(),
            mirror.content_digest(),
            "recovered state diverges from the committed prefix"
        );
    }
}
