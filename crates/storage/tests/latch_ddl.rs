//! Latch-sharding under concurrent DDL: the exclusive catalog latch
//! (CREATE TABLE / CREATE INDEX) racing per-table readers and writers.
//!
//! The engine's latch hierarchy is catalog read-write latch → per-table
//! latches → lock manager. DDL takes the catalog latch exclusively and
//! reaches tables through `&mut Catalog`, so it must (a) wait out every
//! in-flight statement, including readers that only hold table latches
//! under the shared catalog latch, (b) never deadlock against them (the
//! acquisition order catalog → table is fixed and statements never block
//! on the lock manager while latched), and (c) leave every structure it
//! builds — new tables, new indexes — consistent with the writes that
//! raced it.

use genie_storage::{Database, DbConfig, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

fn db_with_tables() -> Database {
    let db = Database::new(DbConfig::default());
    db.execute_sql(
        "CREATE TABLE scans (id INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE writes (id INT PRIMARY KEY, n INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("BEGIN", &[]).unwrap();
    for id in 1..=2000i64 {
        db.execute_sql(
            "INSERT INTO scans (id, grp, val) VALUES ($1, $2, $3)",
            &[
                Value::Int(id),
                Value::Int(id % 7),
                Value::Int(id * 13 % 1000),
            ],
        )
        .unwrap();
    }
    for id in 1..=200i64 {
        db.execute_sql(
            "INSERT INTO writes (id, n) VALUES ($1, 0)",
            &[Value::Int(id)],
        )
        .unwrap();
    }
    db.execute_sql("COMMIT", &[]).unwrap();
    db
}

fn count_where_grp(db: &Database, grp: i64) -> i64 {
    let out = db
        .execute_sql(
            "SELECT COUNT(*) FROM scans WHERE grp = $1",
            &[Value::Int(grp)],
        )
        .unwrap();
    match out.result.rows[0].get(0) {
        Value::Int(n) => *n,
        v => panic!("COUNT(*) returned {v:?}"),
    }
}

/// CREATE TABLE and CREATE INDEX storms racing scans and writers on
/// *other* tables: everything must run to completion (no catalog↔table
/// latch deadlock), with zero statement errors on either side.
#[test]
fn ddl_races_scans_and_writers_on_other_tables() {
    let db = db_with_tables();
    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(5));
    let scan_errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    // Two scanner threads: full-table aggregates over `scans`.
    for t in 0..2 {
        let db = db.clone();
        let done = Arc::clone(&done);
        let barrier = Arc::clone(&barrier);
        let errs = Arc::clone(&scan_errors);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                if db
                    .execute_sql(
                        "SELECT COUNT(*) FROM scans WHERE val < $1",
                        &[Value::Int(500 + t)],
                    )
                    .is_err()
                {
                    errs.fetch_add(1, Ordering::Relaxed);
                }
                reads += 1;
            }
            reads
        }));
    }
    // Two writer threads: single-row updates on `writes`.
    for t in 0..2i64 {
        let db = db.clone();
        let done = Arc::clone(&done);
        let barrier = Arc::clone(&barrier);
        let errs = Arc::clone(&scan_errors);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut seq = 0i64;
            while !done.load(Ordering::Relaxed) {
                seq += 1;
                let id = 1 + (seq * 2 + t) % 200;
                if db
                    .execute_sql(
                        "UPDATE writes SET n = $1 WHERE id = $2",
                        &[Value::Int(seq), Value::Int(id)],
                    )
                    .is_err()
                {
                    errs.fetch_add(1, Ordering::Relaxed);
                }
            }
            seq as u64
        }));
    }

    // DDL storm on this thread: new tables and new indexes, never
    // touching `scans`/`writes` rows.
    barrier.wait();
    for i in 0..30 {
        db.execute_sql(
            &format!("CREATE TABLE ddl_{i} (id INT PRIMARY KEY, v INT)"),
            &[],
        )
        .unwrap();
        db.execute_sql(
            &format!("INSERT INTO ddl_{i} (id, v) VALUES ($1, $2)"),
            &[Value::Int(1), Value::Int(i)],
        )
        .unwrap();
        db.execute_sql(&format!("CREATE INDEX ddl_{i}_v ON ddl_{i} (v)"), &[])
            .unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let mut progressed = 0u64;
    for h in handles {
        progressed += h.join().expect("worker thread panicked");
    }
    assert!(progressed > 0, "scans/writers made progress during DDL");
    assert_eq!(
        scan_errors.load(Ordering::Relaxed),
        0,
        "statements racing DDL must not fail"
    );
    // Every DDL product is durable and queryable afterwards.
    for i in 0..30 {
        let out = db
            .execute_sql(
                &format!("SELECT id FROM ddl_{i} WHERE v = $1"),
                &[Value::Int(i)],
            )
            .unwrap();
        assert_eq!(out.result.rows.len(), 1, "ddl_{i} lost its row");
    }
}

/// CREATE INDEX on a table writers are actively updating: the exclusive
/// catalog latch must wait out in-flight statements and build an index
/// that agrees with a full scan afterwards.
#[test]
fn index_built_under_concurrent_writers_is_consistent() {
    let db = db_with_tables();
    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(3));
    let mut handles = Vec::new();
    for t in 0..2i64 {
        let db = db.clone();
        let done = Arc::clone(&done);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut seq = 0i64;
            while !done.load(Ordering::Relaxed) {
                seq += 1;
                let id = 1 + (seq * 2 + t) % 2000;
                db.execute_sql(
                    "UPDATE scans SET grp = $1 WHERE id = $2",
                    &[Value::Int(seq % 7), Value::Int(id)],
                )
                .unwrap();
            }
        }));
    }
    barrier.wait();
    // Let the writers interleave with the build on both sides.
    thread::sleep(std::time::Duration::from_millis(5));
    db.execute_sql("CREATE INDEX scans_grp ON scans (grp)", &[])
        .unwrap();
    thread::sleep(std::time::Duration::from_millis(5));
    done.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    // The index-backed point lookups must partition the table exactly.
    let total: i64 = (0..7).map(|g| count_where_grp(&db, g)).sum();
    assert_eq!(total, 2000, "index probes disagree with table contents");
}

/// The exclusive catalog latch excludes per-table readers correctly: a
/// burst of snapshot transactions that pin tables across statements
/// cannot be torn by DDL committing between their reads.
#[test]
fn ddl_between_snapshot_reads_does_not_tear() {
    let db = db_with_tables();
    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(2));
    let reader_txns = Arc::new(AtomicU64::new(0));
    let reader = {
        let db = db.clone();
        let done = Arc::clone(&done);
        let barrier = Arc::clone(&barrier);
        let txns = Arc::clone(&reader_txns);
        thread::spawn(move || {
            barrier.wait();
            while !done.load(Ordering::Relaxed) {
                db.execute_sql("BEGIN", &[]).unwrap();
                let a = count_where_grp(&db, 3);
                std::thread::yield_now();
                let b = count_where_grp(&db, 3);
                db.execute_sql("COMMIT", &[]).unwrap();
                assert_eq!(a, b, "repeated read inside one txn disagreed across DDL");
                txns.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    barrier.wait();
    // Keep the DDL storm going until the reader has demonstrably
    // interleaved whole transactions with it.
    let mut i = 0;
    while reader_txns.load(Ordering::Relaxed) < 10 || i < 40 {
        db.execute_sql(
            &format!("CREATE TABLE snap_ddl_{i} (id INT PRIMARY KEY)"),
            &[],
        )
        .unwrap();
        i += 1;
        assert!(i < 100_000, "reader starved behind the DDL storm");
    }
    done.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread panicked");
    assert!(reader_txns.load(Ordering::Relaxed) >= 10);
}
