//! Multi-writer engine tests: thread-scoped transactions, strict 2PL
//! isolation, and wait-for-graph deadlock detection under real OS-thread
//! interleavings.

use genie_storage::{Database, StorageError, Value};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::{Arc, Barrier};

fn bank(accounts: i64, opening: i64) -> Database {
    let db = Database::default();
    db.execute_sql(
        "CREATE TABLE accounts (id INT PRIMARY KEY, bal INT NOT NULL)",
        &[],
    )
    .unwrap();
    db.execute_sql("CREATE TABLE audit (id INT PRIMARY KEY, who INT)", &[])
        .unwrap();
    for id in 1..=accounts {
        db.execute_sql(
            "INSERT INTO accounts VALUES ($1, $2)",
            &[Value::Int(id), Value::Int(opening)],
        )
        .unwrap();
    }
    db
}

fn balance(db: &Database, id: i64) -> i64 {
    db.execute_sql("SELECT bal FROM accounts WHERE id = $1", &[Value::Int(id)])
        .unwrap()
        .result
        .rows[0]
        .get(0)
        .as_int()
        .unwrap()
}

fn total(db: &Database, accounts: i64) -> i64 {
    (1..=accounts).map(|id| balance(db, id)).sum()
}

/// One transfer transaction; returns Ok(committed) or the abort error.
fn transfer(
    db: &Database,
    from: i64,
    to: i64,
    amount: i64,
    roll_back: bool,
) -> Result<bool, StorageError> {
    db.execute_sql("BEGIN", &[])?;
    let work = (|| {
        db.execute_sql(
            "UPDATE accounts SET bal = bal - $1 WHERE id = $2",
            &[Value::Int(amount), Value::Int(from)],
        )?;
        std::thread::yield_now();
        db.execute_sql(
            "UPDATE accounts SET bal = bal + $1 WHERE id = $2",
            &[Value::Int(amount), Value::Int(to)],
        )?;
        Ok(())
    })();
    match work {
        Ok(()) if roll_back => {
            db.execute_sql("ROLLBACK", &[])?;
            Ok(false)
        }
        Ok(()) => {
            db.execute_sql("COMMIT", &[])?;
            Ok(true)
        }
        Err(e) => {
            let _ = db.execute_sql("ROLLBACK", &[]);
            Err(e)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serializability under concurrent random transfers: whatever the
    /// interleaving, the final state must equal SOME serial order of the
    /// committed transactions. For transfers that means (a) money is
    /// conserved, (b) each balance equals opening + committed inflow -
    /// committed outflow (per-account effects commute across any serial
    /// order), and (c) aborted/rolled-back transfers leave no trace.
    /// Without row locks, lost updates would break (a) and (b).
    #[test]
    fn concurrent_transfers_are_serializable(
        threads in 2usize..5,
        txns in 5usize..25,
        accounts in 2i64..6,
        seed in any::<u64>(),
    ) {
        let opening = 1_000i64;
        let db = bank(accounts, opening);
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Cheap per-thread deterministic stream.
                    let mut state = seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut next = || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    // Per-account committed deltas this thread caused.
                    let mut deltas = vec![0i64; accounts as usize + 1];
                    for _ in 0..txns {
                        let from = (next() % accounts as u64) as i64 + 1;
                        let to = (next() % accounts as u64) as i64 + 1;
                        let amount = (next() % 7) as i64 + 1;
                        let roll_back = next() % 5 == 0;
                        match transfer(&db, from, to, amount, roll_back) {
                            Ok(true) => {
                                deltas[from as usize] -= amount;
                                deltas[to as usize] += amount;
                            }
                            Ok(false) => {}
                            // Both abort kinds leave no trace: deadlock
                            // victims, and first-updater-wins losers whose
                            // snapshot was superseded mid-transaction
                            // (without the conflict check the read-compute-
                            // write UPDATE would silently lose an update).
                            Err(StorageError::Deadlock { .. })
                            | Err(StorageError::WriteConflict { .. }) => {}
                            Err(e) => panic!("unexpected engine error: {e}"),
                        }
                    }
                    deltas
                })
            })
            .collect();
        let mut committed = vec![0i64; accounts as usize + 1];
        for h in handles {
            for (i, d) in h.join().unwrap().into_iter().enumerate() {
                committed[i] += d;
            }
        }
        // (a) conservation.
        prop_assert_eq!(total(&db, accounts), opening * accounts);
        // (b) every balance equals its committed net flow.
        for id in 1..=accounts {
            prop_assert_eq!(
                balance(&db, id),
                opening + committed[id as usize],
                "account {} diverged from its committed history", id
            );
        }
    }
}

/// A manufactured waits-for cycle: the older transaction survives, the
/// younger is chosen as the (single) victim, and its work vanishes.
#[test]
fn deadlock_aborts_exactly_one_youngest_victim() {
    let db = bank(2, 100);
    let (t2_holds_b, main_sees) = mpsc::channel::<()>();
    let (main_holds_a, t2_sees) = mpsc::channel::<()>();

    // Older transaction (T1): lock account 1 first.
    db.execute_sql("BEGIN", &[]).unwrap();
    db.execute_sql("UPDATE accounts SET bal = bal - 10 WHERE id = 1", &[])
        .unwrap();

    let db2 = db.clone();
    let t2 = std::thread::spawn(move || {
        // Younger transaction (T2): lock account 2, then request 1.
        db2.execute_sql("BEGIN", &[]).unwrap();
        db2.execute_sql("UPDATE accounts SET bal = bal - 99 WHERE id = 2", &[])
            .unwrap();
        db2.execute_sql("INSERT INTO audit VALUES (1, 2)", &[])
            .unwrap();
        t2_holds_b.send(()).unwrap();
        t2_sees.recv().unwrap();
        // T1 is (or will be) waiting for account 2: requesting account 1
        // closes the cycle and T2, being youngest, must die.
        let r = db2.execute_sql("UPDATE accounts SET bal = bal + 99 WHERE id = 1", &[]);
        let verdict = matches!(r, Err(StorageError::Deadlock { .. }));
        let _ = db2.execute_sql("ROLLBACK", &[]);
        verdict
    });

    main_sees.recv().unwrap();
    main_holds_a.send(()).unwrap();
    // Blocks on account 2 until the victim aborts, then proceeds.
    db.execute_sql("UPDATE accounts SET bal = bal + 10 WHERE id = 2", &[])
        .unwrap();
    db.execute_sql("COMMIT", &[]).unwrap();

    assert!(
        t2.join().unwrap(),
        "T2 must abort with StorageError::Deadlock"
    );
    assert_eq!(db.lock_stats().deadlocks, 1, "exactly one victim");
    // The survivor's transfer landed; the victim's work left no trace.
    assert_eq!(balance(&db, 1), 90);
    assert_eq!(balance(&db, 2), 110);
    assert_eq!(db.row_count("audit").unwrap(), 0, "victim's insert undone");
}

/// A `ConcurrentTxn` guard moved to (and dropped on) another thread
/// still rolls back — its locks must not leak, or later writers on the
/// same rows would block forever.
#[test]
fn concurrent_txn_dropped_on_other_thread_releases_locks() {
    let db = bank(1, 100);
    let mut txn = db.begin_concurrent().unwrap();
    txn.execute_sql("UPDATE accounts SET bal = 0 WHERE id = 1", &[])
        .unwrap();
    std::thread::spawn(move || drop(txn)).join().unwrap();
    // The rollback ran despite the foreign thread: state restored and
    // the row lock free for the next writer.
    assert_eq!(balance(&db, 1), 100);
    db.execute_sql("UPDATE accounts SET bal = 7 WHERE id = 1", &[])
        .unwrap();
    assert_eq!(balance(&db, 1), 7);
}

/// A panicking `transaction` closure must roll back on unwind —
/// leaked 2PL locks would block every later writer forever.
#[test]
fn panicking_transaction_closure_releases_locks() {
    let db = bank(1, 100);
    let db2 = db.clone();
    let panicked = std::thread::spawn(move || {
        let _ = db2.transaction::<()>(|t| {
            t.execute_sql("UPDATE accounts SET bal = 0 WHERE id = 1", &[])?;
            panic!("closure blew up mid-transaction");
        });
    })
    .join();
    assert!(panicked.is_err(), "the closure's panic propagates");
    // Rolled back and unlocked: state restored, next writer proceeds.
    assert_eq!(balance(&db, 1), 100);
    db.execute_sql("UPDATE accounts SET bal = 5 WHERE id = 1", &[])
        .unwrap();
    assert_eq!(balance(&db, 1), 5);
    assert!(!db.in_transaction());
}

/// Transactions are thread-scoped: one thread's open transaction neither
/// blocks another thread's BEGIN nor leaks into its `in_transaction`.
#[test]
fn transactions_are_thread_scoped() {
    let db = bank(2, 100);
    db.execute_sql("BEGIN", &[]).unwrap();
    assert!(db.in_transaction());
    let db2 = db.clone();
    std::thread::spawn(move || {
        assert!(!db2.in_transaction(), "other thread sees no open txn");
        db2.execute_sql("BEGIN", &[]).unwrap();
        db2.execute_sql("UPDATE accounts SET bal = 0 WHERE id = 2", &[])
            .unwrap();
        db2.execute_sql("COMMIT", &[]).unwrap();
    })
    .join()
    .unwrap();
    db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(balance(&db, 2), 0);
}

/// Scans (table-level shared locks) never observe another transaction's
/// in-flight rows: a reader thread racing a writer transaction sees the
/// table either entirely before or entirely after the commit.
#[test]
fn scans_never_observe_in_flight_writes() {
    let db = bank(2, 100);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let db_r = db.clone();
    let stop_r = Arc::clone(&stop);
    let reader = std::thread::spawn(move || {
        let mut snapshots = 0u64;
        while !stop_r.load(std::sync::atomic::Ordering::Relaxed) {
            let out = db_r.execute_sql("SELECT bal FROM accounts", &[]).unwrap();
            let sum: i64 = out
                .result
                .rows
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .sum();
            assert_eq!(sum, 200, "reader observed a half-applied transfer");
            snapshots += 1;
        }
        snapshots
    });
    for i in 0..200 {
        let (from, to) = if i % 2 == 0 { (1, 2) } else { (2, 1) };
        transfer(&db, from, to, 5, false).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader made progress");
    assert_eq!(total(&db, 2), 200);
}
