//! Property-based tests on the storage engine's core invariants.

use genie_storage::{
    ColumnDef, Database, Expr, IndexDef, Select, Statement, TableSchema, Value, ValueType,
};
use proptest::prelude::*;

fn fresh_db(indexed: bool) -> Database {
    let db = Database::default();
    db.create_table(
        TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("k", ValueType::Int))
            .column(ColumnDef::new("v", ValueType::Int))
            .build()
            .unwrap(),
    )
    .unwrap();
    if indexed {
        db.create_index(
            "t",
            IndexDef {
                name: "t_k".into(),
                columns: vec!["k".into()],
                unique: false,
            },
        )
        .unwrap();
    }
    db
}

/// Random sequences of inserts/updates/deletes applied identically to an
/// indexed and an unindexed table must answer `k = ?` queries identically:
/// secondary-index access is an optimization, never a semantic change.
#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, k: i64, v: i64 },
    Update { id: i64, k: i64 },
    Delete { id: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..40i64, 0..8i64, 0..100i64).prop_map(|(id, k, v)| Op::Insert { id, k, v }),
        (0..40i64, 0..8i64).prop_map(|(id, k)| Op::Update { id, k }),
        (0..40i64).prop_map(|id| Op::Delete { id }),
    ]
}

fn apply(db: &Database, op: &Op) {
    match op {
        Op::Insert { id, k, v } => {
            // Duplicate-PK inserts are expected to fail identically.
            let _ = db.execute_sql(
                "INSERT INTO t VALUES ($1, $2, $3)",
                &[Value::Int(*id), Value::Int(*k), Value::Int(*v)],
            );
        }
        Op::Update { id, k } => {
            db.execute_sql(
                "UPDATE t SET k = $2 WHERE id = $1",
                &[Value::Int(*id), Value::Int(*k)],
            )
            .unwrap();
        }
        Op::Delete { id } => {
            db.execute_sql("DELETE FROM t WHERE id = $1", &[Value::Int(*id)])
                .unwrap();
        }
    }
}

fn rows_for_k(db: &Database, k: i64) -> Vec<(i64, i64)> {
    let sel = Select::star("t")
        .filter(Expr::col("k").eq(Expr::Param(0)))
        .order("id", false);
    let out = db.select(&sel, &[Value::Int(k)]).unwrap();
    out.result
        .rows
        .iter()
        .map(|r| (r.get(0).as_int().unwrap(), r.get(2).as_int().unwrap()))
        .collect()
}

/// Rows matching `sql` as `(id, v)` pairs sorted by id — the comparison
/// key for the planner-path consistency properties below.
fn rows_for_sql(db: &Database, sql: &str) -> Vec<(i64, i64)> {
    let out = db.execute_sql(sql, &[]).unwrap();
    let mut rows: Vec<(i64, i64)> = out
        .result
        .rows
        .iter()
        .map(|r| (r.get(0).as_int().unwrap(), r.get(2).as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_scan_equals_full_scan(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let indexed = fresh_db(true);
        let plain = fresh_db(false);
        for op in &ops {
            apply(&indexed, op);
            apply(&plain, op);
        }
        for k in 0..8 {
            prop_assert_eq!(rows_for_k(&indexed, k), rows_for_k(&plain, k));
        }
    }

    /// After any UPDATE/DELETE mix, every planner access path — equality,
    /// range, BETWEEN, IN — answers identically on an indexed and an
    /// unindexed table: secondary-index maintenance in `Table::update` /
    /// `Table::delete` must keep index postings exactly in sync with the
    /// heap the full scan reads.
    #[test]
    fn planner_paths_survive_update_delete(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let indexed = fresh_db(true);
        let plain = fresh_db(false);
        for op in &ops {
            apply(&indexed, op);
            apply(&plain, op);
        }
        let queries = [
            "SELECT * FROM t WHERE k = 3".to_string(),
            "SELECT * FROM t WHERE k > 2".to_string(),
            "SELECT * FROM t WHERE k >= 1 AND k < 5".to_string(),
            "SELECT * FROM t WHERE k BETWEEN 2 AND 6".to_string(),
            "SELECT * FROM t WHERE k IN (0, 3, 7)".to_string(),
            "SELECT * FROM t WHERE k = 1 OR k = 4".to_string(),
            "SELECT * FROM t WHERE id BETWEEN 5 AND 25".to_string(),
        ];
        for sql in &queries {
            prop_assert_eq!(
                rows_for_sql(&indexed, sql),
                rows_for_sql(&plain, sql),
                "{} diverged between index scan and full scan",
                sql
            );
        }
    }

    #[test]
    fn count_star_equals_row_count(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let db = fresh_db(true);
        for op in &ops {
            apply(&db, op);
        }
        let out = db.execute_sql("SELECT COUNT(*) FROM t", &[]).unwrap();
        prop_assert_eq!(
            out.result.scalar().unwrap().as_int().unwrap() as usize,
            db.row_count("t").unwrap()
        );
    }

    #[test]
    fn rollback_is_identity(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let db = fresh_db(true);
        // Seed with a deterministic prefix.
        for id in 0..10i64 {
            db.execute_sql(
                "INSERT INTO t VALUES ($1, $2, $3)",
                &[Value::Int(id), Value::Int(id % 4), Value::Int(id * 10)],
            ).unwrap();
        }
        let before: Vec<Vec<(i64, i64)>> = (0..8).map(|k| rows_for_k(&db, k)).collect();
        let _ = db.transaction(|tx| -> genie_storage::Result<()> {
            for op in &ops {
                match op {
                    Op::Insert { id, k, v } => {
                        let _ = tx.execute_sql(
                            "INSERT INTO t VALUES ($1, $2, $3)",
                            &[Value::Int(*id), Value::Int(*k), Value::Int(*v)],
                        );
                    }
                    Op::Update { id, k } => {
                        tx.execute_sql(
                            "UPDATE t SET k = $2 WHERE id = $1",
                            &[Value::Int(*id), Value::Int(*k)],
                        )?;
                    }
                    Op::Delete { id } => {
                        tx.execute_sql("DELETE FROM t WHERE id = $1", &[Value::Int(*id)])?;
                    }
                }
            }
            Err(genie_storage::StorageError::Eval("forced rollback".into()))
        });
        let after: Vec<Vec<(i64, i64)>> = (0..8).map(|k| rows_for_k(&db, k)).collect();
        prop_assert_eq!(before, after);
    }

    /// Rendering any parsed SELECT back to SQL and reparsing yields the
    /// same AST (canonical-text round trip).
    #[test]
    fn select_display_roundtrip(
        table in "[a-z]{1,6}",
        col in "[a-z]{1,6}",
        v in -1000..1000i64,
        lim in proptest::option::of(0u64..50),
        desc in any::<bool>(),
    ) {
        let mut sel = Select::star(&table).filter(Expr::col(&col).eq(Expr::lit(v)));
        if let Some(l) = lim {
            sel = sel.limit(l).order(&col, desc);
        }
        let text = sel.to_string();
        let reparsed = genie_storage::sql::parse(&text).unwrap();
        prop_assert_eq!(Statement::Select(sel), reparsed);
    }

    /// LIKE matching agrees with a reference regex-free implementation on
    /// simple prefix patterns.
    #[test]
    fn like_prefix_matches(prefix in "[a-z]{0,5}", rest in "[a-z]{0,5}") {
        let db = Database::default();
        db.execute_sql("CREATE TABLE s (id INT PRIMARY KEY, t TEXT)", &[]).unwrap();
        let full = format!("{prefix}{rest}");
        db.execute_sql(
            "INSERT INTO s VALUES (1, $1)",
            &[Value::Text(full.clone())],
        ).unwrap();
        let pattern = format!("{prefix}%");
        let out = db.execute_sql(
            &format!("SELECT * FROM s WHERE t LIKE '{pattern}'"),
            &[],
        ).unwrap();
        prop_assert_eq!(out.result.rows.len(), 1, "{} should match {}", pattern, full);
    }
}
