//! Django-flavoured query sets.
//!
//! A [`QuerySet`] accumulates filters, ordering, limits, and relation
//! joins, then compiles to a parameterized [`Select`]: filter *values*
//! become positional parameters, so structurally identical queries produce
//! byte-identical SQL templates. That canonicalization is what CacheGenie
//! pattern-matches against (its cached objects are compiled from the same
//! builder), and it mirrors how Django reduces model methods to a small
//! family of SQL shapes.

use crate::model::ModelDef;
use genie_storage::{CmpOp, Expr, OrderKey, QueryResult, Row, Select, SelectItem, TableRef, Value};

/// A filter operator (Django lookup).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterOp {
    /// `field = value` (`exact`).
    Eq,
    /// `field <> value`.
    Ne,
    /// `field < value` (`lt`).
    Lt,
    /// `field <= value` (`lte`).
    Lte,
    /// `field > value` (`gt`).
    Gt,
    /// `field >= value` (`gte`).
    Gte,
    /// `field IN (...)` (`in`).
    In(Vec<Value>),
    /// `field LIKE pattern` (`contains`/`startswith` family).
    Like(String),
    /// `field IS [NOT] NULL` (`isnull`).
    IsNull(bool),
}

#[derive(Debug, Clone)]
struct Filter {
    /// Binding (table or alias) the field lives on.
    binding: String,
    field: String,
    op: FilterOp,
    value: Option<Value>,
}

#[derive(Debug, Clone)]
struct RelationJoin {
    /// Table being joined.
    table: String,
    /// Join column on the previous table in the chain.
    base_column: String,
    /// Join column on the joined table.
    target_column: String,
    /// Binding the join hangs off (the previous table in the chain).
    from_binding: String,
}

/// One result row with named access.
#[derive(Debug, Clone, PartialEq)]
pub struct OrmRow {
    columns: std::sync::Arc<Vec<String>>,
    row: Row,
}

impl OrmRow {
    /// Wraps executor output.
    pub fn new(columns: std::sync::Arc<Vec<String>>, row: Row) -> Self {
        OrmRow { columns, row }
    }

    /// Converts a whole [`QueryResult`] into rows.
    pub fn from_result(result: &QueryResult) -> Vec<OrmRow> {
        let cols = std::sync::Arc::new(result.columns.clone());
        result
            .rows
            .iter()
            .map(|r| OrmRow::new(std::sync::Arc::clone(&cols), r.clone()))
            .collect()
    }

    /// The first column named `name`, or NULL if absent.
    pub fn get(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self.columns.iter().position(|c| c == name) {
            Some(i) => self.row.get(i),
            None => &NULL,
        }
    }

    /// The value at position `i`.
    pub fn get_at(&self, i: usize) -> &Value {
        self.row.get(i)
    }

    /// The `id` column as an integer.
    ///
    /// # Panics
    ///
    /// Panics if there is no integer `id` column — every ORM-built query
    /// on a model includes it, so a panic indicates misuse on a projection.
    pub fn id(&self) -> i64 {
        self.get("id").as_int().expect("row has integer id column")
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The underlying storage row.
    pub fn row(&self) -> &Row {
        &self.row
    }
}

/// A lazily-built query over one model (plus joined relations).
///
/// Build with [`crate::OrmSession::objects`]; execute with the terminal
/// methods there (`all`, `get`, `count`, …) which apply cache
/// interception.
#[derive(Debug, Clone)]
pub struct QuerySet {
    model: ModelDef,
    filters: Vec<Filter>,
    joins: Vec<RelationJoin>,
    order: Vec<(String, bool)>,
    limit: Option<u64>,
    offset: Option<u64>,
    /// Projection override: qualified (binding, column) pairs.
    projection: Option<Vec<(String, String)>>,
}

impl QuerySet {
    /// A query over every row of `model`.
    pub fn new(model: ModelDef) -> Self {
        QuerySet {
            model,
            filters: Vec::new(),
            joins: Vec::new(),
            order: Vec::new(),
            limit: None,
            offset: None,
            projection: None,
        }
    }

    /// The base model.
    pub fn model(&self) -> &ModelDef {
        &self.model
    }

    fn current_binding(&self) -> String {
        self.joins
            .last()
            .map(|j| j.table.clone())
            .unwrap_or_else(|| self.model.table().to_owned())
    }

    /// Adds `field <op> value` on the base model.
    pub fn filter(
        mut self,
        field: impl Into<String>,
        op: FilterOp,
        value: impl Into<Value>,
    ) -> Self {
        self.filters.push(Filter {
            binding: self.model.table().to_owned(),
            field: field.into(),
            op,
            value: Some(value.into()),
        });
        self
    }

    /// Shorthand for the ubiquitous equality filter.
    pub fn filter_eq(self, field: impl Into<String>, value: impl Into<Value>) -> Self {
        self.filter(field, FilterOp::Eq, value)
    }

    /// Adds a filter on the most recently joined relation.
    pub fn filter_related(
        mut self,
        field: impl Into<String>,
        op: FilterOp,
        value: impl Into<Value>,
    ) -> Self {
        self.filters.push(Filter {
            binding: self.current_binding(),
            field: field.into(),
            op,
            value: Some(value.into()),
        });
        self
    }

    /// Adds a valueless filter (IN / LIKE / IS NULL carry their own data).
    pub fn filter_where(mut self, field: impl Into<String>, op: FilterOp) -> Self {
        self.filters.push(Filter {
            binding: self.model.table().to_owned(),
            field: field.into(),
            op,
            value: None,
        });
        self
    }

    /// Joins `target` on an arbitrary column pair:
    /// `target.<target_column> = current.<base_column>`. The general form
    /// behind [`QuerySet::join_forward`] and [`QuerySet::join_reverse`];
    /// CacheGenie's LinkQuery uses it for non-PK traversals (e.g. joining
    /// bookmark instances on a friendship's `friend_id`).
    pub fn join_on(
        mut self,
        target: &ModelDef,
        base_column: impl Into<String>,
        target_column: impl Into<String>,
    ) -> Self {
        let from = self.current_binding();
        self.joins.push(RelationJoin {
            table: target.table().to_owned(),
            base_column: base_column.into(),
            target_column: target_column.into(),
            from_binding: from,
        });
        self
    }

    /// Follows a forward FK from the current chain tail: joins `target`
    /// where `target.id = current.fk_column`. (Django `select_related`.)
    pub fn join_forward(self, fk_column: impl Into<String>, target: &ModelDef) -> Self {
        self.join_on(target, fk_column, "id")
    }

    /// Follows a reverse FK: joins `target` where
    /// `target.fk_column = current.id` (Django related manager).
    pub fn join_reverse(self, target: &ModelDef, fk_column: impl Into<String>) -> Self {
        self.join_on(target, "id", fk_column)
    }

    /// Django-style ordering: `"-date_posted"` for descending.
    pub fn order_by(mut self, spec: &str) -> Self {
        let (col, desc) = match spec.strip_prefix('-') {
            Some(c) => (c, true),
            None => (spec, false),
        };
        self.order.push((col.to_owned(), desc));
        self
    }

    /// Limits output rows (Django slicing).
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Skips leading rows.
    pub fn offset(mut self, n: u64) -> Self {
        self.offset = Some(n);
        self
    }

    /// Projects qualified columns `(binding, column)` instead of `*`.
    pub fn values(mut self, cols: &[(&str, &str)]) -> Self {
        self.projection = Some(
            cols.iter()
                .map(|(b, c)| ((*b).to_owned(), (*c).to_owned()))
                .collect(),
        );
        self
    }

    /// Compiles to a parameterized SELECT plus its parameter vector.
    ///
    /// Filter values become `$n` parameters in filter order; everything
    /// else is structural. Two query sets with the same shape therefore
    /// produce identical [`Select`]s — the property CacheGenie's
    /// pattern-matcher relies on.
    pub fn compile(&self) -> (Select, Vec<Value>) {
        let mut sel = Select::star(self.model.table());
        // Joins.
        for j in &self.joins {
            let on = Expr::qcol(&j.table, &j.target_column)
                .eq(Expr::qcol(&j.from_binding, &j.base_column));
            sel = sel.join(TableRef::new(&j.table), on);
        }
        // Filters.
        let mut params = Vec::new();
        let mut pred: Option<Expr> = None;
        for f in &self.filters {
            let col = Expr::qcol(&f.binding, &f.field);
            let e = match &f.op {
                FilterOp::Eq
                | FilterOp::Ne
                | FilterOp::Lt
                | FilterOp::Lte
                | FilterOp::Gt
                | FilterOp::Gte => {
                    let v = f.value.clone().expect("comparison filter carries a value");
                    params.push(v);
                    let op = match f.op {
                        FilterOp::Eq => CmpOp::Eq,
                        FilterOp::Ne => CmpOp::Ne,
                        FilterOp::Lt => CmpOp::Lt,
                        FilterOp::Lte => CmpOp::Le,
                        FilterOp::Gt => CmpOp::Gt,
                        FilterOp::Gte => CmpOp::Ge,
                        _ => unreachable!(),
                    };
                    Expr::Cmp(Box::new(col), op, Box::new(Expr::Param(params.len() - 1)))
                }
                FilterOp::In(vals) => {
                    // IN lists are structural (length matters), so inline
                    // as parameters one by one.
                    let mut list = Vec::with_capacity(vals.len());
                    for v in vals {
                        params.push(v.clone());
                        list.push(Expr::Param(params.len() - 1));
                    }
                    Expr::InList {
                        expr: Box::new(col),
                        list,
                    }
                }
                FilterOp::Like(pattern) => Expr::Like {
                    expr: Box::new(col),
                    pattern: pattern.clone(),
                },
                FilterOp::IsNull(negated_is_not) => Expr::IsNull {
                    expr: Box::new(col),
                    negated: !negated_is_not,
                },
            };
            pred = Some(match pred {
                Some(p) => p.and(e),
                None => e,
            });
        }
        if let Some(p) = pred {
            sel = sel.filter(p);
        }
        // Projection.
        if let Some(proj) = &self.projection {
            sel = sel.project(
                proj.iter()
                    .map(|(b, c)| SelectItem::Expr {
                        expr: Expr::qcol(b, c),
                        alias: None,
                    })
                    .collect(),
            );
        }
        // Order / limit / offset. Keys are qualified to the base model's
        // binding: Django orders by base-model fields, and the qualified
        // form is the metadata the whole-query planner needs to attribute
        // the ORDER BY unambiguously once joins are in the statement
        // (an ordered index scan can then survive single-row joins).
        for (col, desc) in &self.order {
            sel.order_by.push(OrderKey {
                expr: Expr::qcol(self.model.table(), col),
                desc: *desc,
            });
        }
        if let Some(l) = self.limit {
            sel = sel.limit(l);
        }
        sel.offset = self.offset;
        (sel, params)
    }

    /// Compiles to a `SELECT COUNT(*)` with the same FROM/WHERE.
    pub fn compile_count(&self) -> (Select, Vec<Value>) {
        let (mut sel, params) = self.compile();
        sel.projection = vec![SelectItem::count_star()];
        sel.order_by.clear();
        sel.limit = None;
        sel.offset = None;
        (sel, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FieldDef, ModelDef};
    use genie_storage::ValueType;

    fn wall() -> ModelDef {
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("content", ValueType::Text))
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build()
    }

    fn user() -> ModelDef {
        ModelDef::builder("User", "users")
            .field(FieldDef::new("name", ValueType::Text))
            .build()
    }

    #[test]
    fn compile_is_canonical() {
        let (s1, p1) = QuerySet::new(wall())
            .filter_eq("user_id", 42i64)
            .order_by("-date_posted")
            .limit(20)
            .compile();
        let (s2, p2) = QuerySet::new(wall())
            .filter_eq("user_id", 99i64)
            .order_by("-date_posted")
            .limit(20)
            .compile();
        // Same template, different parameters.
        assert_eq!(s1, s2);
        assert_eq!(s1.to_string(), s2.to_string());
        assert_eq!(p1, vec![Value::Int(42)]);
        assert_eq!(p2, vec![Value::Int(99)]);
    }

    #[test]
    fn compile_top_k_shape() {
        let (sel, _) = QuerySet::new(wall())
            .filter_eq("user_id", 42i64)
            .order_by("-date_posted")
            .limit(20)
            .compile();
        assert_eq!(
            sel.to_string(),
            "SELECT * FROM wall WHERE (wall.user_id = $1) ORDER BY wall.date_posted DESC LIMIT 20"
        );
    }

    #[test]
    fn forward_join_compiles() {
        let (sel, _) = QuerySet::new(wall())
            .filter_eq("user_id", 1i64)
            .join_forward("user_id", &user())
            .compile();
        let s = sel.to_string();
        assert!(s.contains("JOIN users ON (users.id = wall.user_id)"), "{s}");
    }

    #[test]
    fn reverse_join_compiles() {
        let (sel, _) = QuerySet::new(user())
            .filter_eq("id", 1i64)
            .join_reverse(&wall(), "user_id")
            .compile();
        let s = sel.to_string();
        assert!(s.contains("JOIN wall ON (wall.user_id = users.id)"), "{s}");
    }

    #[test]
    fn join_chain_binds_to_tail() {
        let m3 = ModelDef::builder("Extra", "extra")
            .foreign_key("wall_id", "WallPost")
            .build();
        let (sel, _) = QuerySet::new(user())
            .join_reverse(&wall(), "user_id")
            .join_reverse(&m3, "wall_id")
            .compile();
        let s = sel.to_string();
        assert!(s.contains("JOIN extra ON (extra.wall_id = wall.id)"), "{s}");
    }

    #[test]
    fn in_filter_inlines_params() {
        let (sel, params) = QuerySet::new(user())
            .filter_where("id", FilterOp::In(vec![Value::Int(1), Value::Int(2)]))
            .compile();
        assert!(sel.to_string().contains("IN ($1, $2)"));
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn isnull_and_like_filters() {
        let (sel, params) = QuerySet::new(user())
            .filter_where("name", FilterOp::IsNull(true))
            .filter_where("name", FilterOp::Like("a%".into()))
            .compile();
        let s = sel.to_string();
        assert!(s.contains("IS NULL"), "{s}");
        assert!(s.contains("LIKE 'a%'"), "{s}");
        assert!(params.is_empty());
    }

    #[test]
    fn count_strips_order_and_limit() {
        let (sel, params) = QuerySet::new(wall())
            .filter_eq("user_id", 7i64)
            .order_by("-date_posted")
            .limit(20)
            .compile_count();
        assert_eq!(
            sel.to_string(),
            "SELECT COUNT(*) FROM wall WHERE (wall.user_id = $1)"
        );
        assert_eq!(params, vec![Value::Int(7)]);
    }

    #[test]
    fn values_projection() {
        let (sel, _) = QuerySet::new(wall())
            .join_forward("user_id", &user())
            .values(&[("wall", "content"), ("users", "name")])
            .compile();
        assert!(sel
            .to_string()
            .starts_with("SELECT wall.content, users.name"));
    }

    #[test]
    fn orm_row_named_access() {
        let cols = std::sync::Arc::new(vec!["id".to_owned(), "name".to_owned()]);
        let r = OrmRow::new(cols, genie_storage::row![7i64, "bob"]);
        assert_eq!(r.id(), 7);
        assert_eq!(r.get("name"), &Value::Text("bob".into()));
        assert!(r.get("missing").is_null());
        assert_eq!(r.get_at(1), &Value::Text("bob".into()));
    }
}
