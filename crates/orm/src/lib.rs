//! # genie-orm
//!
//! A Django-flavoured object-relational mapper over [`genie_storage`],
//! standing in for Django 1.2 in the CacheGenie reproduction. It provides
//! the three things the paper's middleware needs from the ORM:
//!
//! 1. **Models** ([`ModelDef`], [`ModelRegistry`]) — declarative schema
//!    with foreign keys, synced to the database (`syncdb`);
//! 2. **Query sets** ([`QuerySet`]) that compile to *canonical,
//!    parameterized* SQL templates — structurally identical queries yield
//!    identical [`genie_storage::Select`]s, which is what makes
//!    transparent cache interception possible;
//! 3. the **interceptor seam** ([`QueryInterceptor`], installed on an
//!    [`OrmSession`]) that lets CacheGenie serve matching reads from the
//!    cache and read-through-fill on misses, exactly as in Figure 1c of
//!    the paper.
//!
//! # Example
//!
//! ```
//! use genie_orm::{ModelDef, FieldDef, ModelRegistry, OrmSession};
//! use genie_storage::{Database, ValueType, Value};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), genie_storage::StorageError> {
//! let mut registry = ModelRegistry::new();
//! registry.register(
//!     ModelDef::builder("User", "users")
//!         .field(FieldDef::new("name", ValueType::Text).not_null())
//!         .build(),
//! )?;
//! let db = Database::default();
//! registry.sync(&db)?;
//!
//! let session = OrmSession::new(db, Arc::new(registry));
//! let id = session.create("User", &[("name", "alice".into())])?.new_id.unwrap();
//! let (row, _) = session.get_by_id("User", id)?;
//! assert_eq!(row.unwrap().get("name"), &Value::Text("alice".into()));
//! # Ok(())
//! # }
//! ```

pub mod model;
pub mod queryset;
pub mod session;

pub use model::{FieldDef, ForeignKeyField, ModelDef, ModelDefBuilder, ModelRegistry};
pub use queryset::{FilterOp, OrmRow, QuerySet};
pub use session::{InterceptOutcome, OrmSession, QueryInterceptor, ReadOutcome, WriteOutcome};
