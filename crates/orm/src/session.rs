//! The ORM session: executes query sets against the database, routing
//! reads through an optional [`QueryInterceptor`] — the seam where
//! CacheGenie slides underneath the application (Figure 1c of the paper).

use crate::model::{ModelDef, ModelRegistry};
use crate::queryset::{OrmRow, QuerySet};
use genie_storage::{
    CostReport, Database, Delete, Expr, Insert, QueryResult, Result, Select, Statement,
    StorageError, Update, Value,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// What an interceptor decided about a read.
#[derive(Debug)]
pub enum InterceptOutcome {
    /// The interceptor produced the answer — either straight from cache
    /// (`from_cache = true`, `db_cost` empty) or via its own read-through
    /// database fetch (e.g. CacheGenie's Top-K classes fetch K + reserve
    /// rows, more than the application asked for).
    Served {
        /// The result, already in executor shape.
        result: QueryResult,
        /// Cache operations spent (for the cost model).
        cache_ops: u64,
        /// Database work the interceptor performed itself.
        db_cost: CostReport,
        /// True if no database round trip happened.
        from_cache: bool,
    },
    /// Cache miss on a cacheable query whose cached form equals the query
    /// result: run the database query, then hand the result back via
    /// [`QueryInterceptor::fill`] under `fill_key`.
    Miss {
        /// Opaque key identifying what to fill.
        fill_key: String,
        /// Cache operations spent probing.
        cache_ops: u64,
    },
    /// Not a cacheable query; go straight to the database.
    Pass,
}

/// Cache middleware hook. Implemented by CacheGenie's registry.
pub trait QueryInterceptor: Send + Sync {
    /// Inspects a compiled query before execution.
    fn try_serve(&self, select: &Select, params: &[Value]) -> InterceptOutcome;

    /// Receives the database result for a miss, for read-through fill.
    /// Returns the number of cache operations performed.
    fn fill(&self, fill_key: &str, result: &QueryResult) -> u64;
}

/// Outcome of an ORM read.
#[derive(Debug, Clone, Default)]
pub struct ReadOutcome {
    /// Result rows.
    pub rows: Vec<OrmRow>,
    /// Physical database cost (zero when served from cache).
    pub db_cost: CostReport,
    /// Cache operations performed (probe + fill).
    pub cache_ops: u64,
    /// True if the cache answered.
    pub from_cache: bool,
}

/// Outcome of an ORM write.
#[derive(Debug, Clone, Default)]
pub struct WriteOutcome {
    /// Rows affected.
    pub affected: u64,
    /// Physical database cost, including trigger work.
    pub db_cost: CostReport,
    /// New row id for creates.
    pub new_id: Option<i64>,
}

/// A connection-like object binding a [`ModelRegistry`] to a [`Database`].
///
/// Clones share the database, registry, interceptor, and id allocator.
#[derive(Clone)]
pub struct OrmSession {
    db: Database,
    registry: Arc<ModelRegistry>,
    interceptor: Arc<RwLock<Option<Arc<dyn QueryInterceptor>>>>,
    next_ids: Arc<Mutex<HashMap<String, i64>>>,
}

impl std::fmt::Debug for OrmSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrmSession")
            .field("models", &self.registry.models().count())
            .finish()
    }
}

impl OrmSession {
    /// Creates a session over an already-synced database.
    pub fn new(db: Database, registry: Arc<ModelRegistry>) -> Self {
        OrmSession {
            db,
            registry,
            interceptor: Arc::new(RwLock::new(None)),
            next_ids: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Installs (or replaces) the cache interceptor.
    pub fn set_interceptor(&self, interceptor: Arc<dyn QueryInterceptor>) {
        *self.interceptor.write() = Some(interceptor);
    }

    /// Removes the interceptor (reads go straight to the database).
    pub fn clear_interceptor(&self) {
        *self.interceptor.write() = None;
    }

    /// Starts a query set over `model`.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] for unregistered models.
    pub fn objects(&self, model: &str) -> Result<QuerySet> {
        Ok(QuerySet::new(self.registry.model(model)?.clone()))
    }

    /// Executes a compiled select through the interception path.
    ///
    /// # Errors
    ///
    /// Database execution errors.
    pub fn run_select(&self, select: &Select, params: &[Value]) -> Result<ReadOutcome> {
        let interceptor = self.interceptor.read().clone();
        if let Some(ic) = interceptor {
            match ic.try_serve(select, params) {
                InterceptOutcome::Served {
                    result,
                    cache_ops,
                    db_cost,
                    from_cache,
                } => {
                    return Ok(ReadOutcome {
                        rows: OrmRow::from_result(&result),
                        db_cost,
                        cache_ops,
                        from_cache,
                    });
                }
                InterceptOutcome::Miss {
                    fill_key,
                    cache_ops,
                } => {
                    let out = self.db.select(select, params)?;
                    let fill_ops = ic.fill(&fill_key, &out.result);
                    return Ok(ReadOutcome {
                        rows: OrmRow::from_result(&out.result),
                        db_cost: out.cost,
                        cache_ops: cache_ops + fill_ops,
                        from_cache: false,
                    });
                }
                InterceptOutcome::Pass => {}
            }
        }
        let out = self.db.select(select, params)?;
        Ok(ReadOutcome {
            rows: OrmRow::from_result(&out.result),
            db_cost: out.cost,
            cache_ops: 0,
            from_cache: false,
        })
    }

    /// Runs a query set, returning all rows.
    ///
    /// # Errors
    ///
    /// Database execution errors.
    pub fn all(&self, qs: &QuerySet) -> Result<ReadOutcome> {
        let (sel, params) = qs.compile();
        self.run_select(&sel, &params)
    }

    /// Runs a query set, returning the first row if any.
    ///
    /// # Errors
    ///
    /// Database execution errors.
    pub fn get(&self, qs: &QuerySet) -> Result<(Option<OrmRow>, ReadOutcome)> {
        let mut out = self.all(qs)?;
        let first = if out.rows.is_empty() {
            None
        } else {
            Some(out.rows.remove(0))
        };
        Ok((first, out))
    }

    /// Runs `SELECT COUNT(*)` for a query set.
    ///
    /// # Errors
    ///
    /// Database execution errors.
    pub fn count(&self, qs: &QuerySet) -> Result<(i64, ReadOutcome)> {
        let (sel, params) = qs.compile_count();
        let out = self.run_select(&sel, &params)?;
        let n = out
            .rows
            .first()
            .and_then(|r| r.get_at(0).as_int())
            .unwrap_or(0);
        Ok((n, out))
    }

    /// Inserts a model instance; `values` maps column names to values, the
    /// `id` column is allocated automatically (auto-increment emulation).
    ///
    /// # Errors
    ///
    /// Constraint violations and unknown models/columns.
    pub fn create(&self, model: &str, values: &[(&str, Value)]) -> Result<WriteOutcome> {
        let def = self.registry.model(model)?.clone();
        let id = self.allocate_id(&def)?;
        let mut columns = vec!["id".to_owned()];
        let mut exprs = vec![vec![Expr::Literal(Value::Int(id))]];
        for (c, v) in values {
            columns.push((*c).to_owned());
            exprs[0].push(Expr::Literal(v.clone()));
        }
        let stmt = Statement::Insert(Insert {
            table: def.table().to_owned(),
            columns,
            rows: exprs,
        });
        let out = self.db.execute(&stmt, &[])?;
        Ok(WriteOutcome {
            affected: out.result.rows_affected,
            db_cost: out.cost,
            new_id: Some(id),
        })
    }

    /// Updates the row with primary key `id`.
    ///
    /// # Errors
    ///
    /// Constraint violations and unknown models/columns.
    pub fn update_by_id(
        &self,
        model: &str,
        id: i64,
        sets: &[(&str, Value)],
    ) -> Result<WriteOutcome> {
        let def = self.registry.model(model)?;
        let stmt = Statement::Update(Update {
            table: def.table().to_owned(),
            sets: sets
                .iter()
                .map(|(c, v)| ((*c).to_owned(), Expr::Literal(v.clone())))
                .collect(),
            predicate: Some(Expr::col("id").eq(Expr::lit(id))),
        });
        let out = self.db.execute(&stmt, &[])?;
        Ok(WriteOutcome {
            affected: out.result.rows_affected,
            db_cost: out.cost,
            new_id: None,
        })
    }

    /// Deletes the row with primary key `id`.
    ///
    /// # Errors
    ///
    /// Unknown model errors.
    pub fn delete_by_id(&self, model: &str, id: i64) -> Result<WriteOutcome> {
        let def = self.registry.model(model)?;
        let stmt = Statement::Delete(Delete {
            table: def.table().to_owned(),
            predicate: Some(Expr::col("id").eq(Expr::lit(id))),
        });
        let out = self.db.execute(&stmt, &[])?;
        Ok(WriteOutcome {
            affected: out.result.rows_affected,
            db_cost: out.cost,
            new_id: None,
        })
    }

    /// Deletes everything matching a query set (single-table only).
    ///
    /// # Errors
    ///
    /// [`StorageError::Unsupported`] if the query set has joins.
    pub fn delete_matching(&self, qs: &QuerySet) -> Result<WriteOutcome> {
        let (sel, params) = qs.compile();
        if !sel.joins.is_empty() {
            return Err(StorageError::Unsupported(
                "DELETE across joined relations".into(),
            ));
        }
        let pred = sel.predicate.map(|p| p.substitute_params(&params));
        let stmt = Statement::Delete(Delete {
            table: sel.from.table,
            predicate: pred,
        });
        let out = self.db.execute(&stmt, &[])?;
        Ok(WriteOutcome {
            affected: out.result.rows_affected,
            db_cost: out.cost,
            new_id: None,
        })
    }

    /// Fetches a model instance by primary key.
    ///
    /// # Errors
    ///
    /// Database execution errors.
    pub fn get_by_id(&self, model: &str, id: i64) -> Result<(Option<OrmRow>, ReadOutcome)> {
        let qs = self.objects(model)?.filter_eq("id", id);
        self.get(&qs)
    }

    fn allocate_id(&self, def: &ModelDef) -> Result<i64> {
        let mut ids = self.next_ids.lock();
        let next = match ids.get_mut(def.name()) {
            Some(n) => {
                *n += 1;
                *n
            }
            None => {
                // Initialize from MAX(id) in the table.
                let out = self
                    .db
                    .execute_sql(&format!("SELECT MAX(id) FROM {}", def.table()), &[])?;
                let max = out.result.scalar().and_then(|v| v.as_int()).unwrap_or(0);
                ids.insert(def.name().to_owned(), max + 1);
                max + 1
            }
        };
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FieldDef, ModelRegistry};
    use crate::ModelDef;
    use genie_storage::ValueType;

    fn session() -> OrmSession {
        let mut reg = ModelRegistry::new();
        reg.register(
            ModelDef::builder("User", "users")
                .field(FieldDef::new("name", ValueType::Text).not_null())
                .field(FieldDef::new("age", ValueType::Int).indexed())
                .build(),
        )
        .unwrap();
        reg.register(
            ModelDef::builder("Bookmark", "bookmarks")
                .foreign_key("user_id", "User")
                .field(FieldDef::new("url", ValueType::Text).not_null())
                .build(),
        )
        .unwrap();
        let db = Database::default();
        reg.sync(&db).unwrap();
        OrmSession::new(db, Arc::new(reg))
    }

    #[test]
    fn create_allocates_sequential_ids() {
        let s = session();
        let a = s
            .create("User", &[("name", "a".into()), ("age", 1i64.into())])
            .unwrap();
        let b = s
            .create("User", &[("name", "b".into()), ("age", 2i64.into())])
            .unwrap();
        assert_eq!(a.new_id, Some(1));
        assert_eq!(b.new_id, Some(2));
        assert_eq!(a.affected, 1);
    }

    #[test]
    fn id_allocation_resumes_after_external_rows() {
        let s = session();
        s.database()
            .execute_sql("INSERT INTO users VALUES (100, 'seed', 5)", &[])
            .unwrap();
        let out = s
            .create("User", &[("name", "next".into()), ("age", 1i64.into())])
            .unwrap();
        assert_eq!(out.new_id, Some(101));
    }

    #[test]
    fn query_set_roundtrip() {
        let s = session();
        for (n, a) in [("alice", 30i64), ("bob", 30), ("carol", 40)] {
            s.create("User", &[("name", n.into()), ("age", a.into())])
                .unwrap();
        }
        let qs = s
            .objects("User")
            .unwrap()
            .filter_eq("age", 30i64)
            .order_by("name");
        let out = s.all(&qs).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].get("name"), &Value::Text("alice".into()));
        assert!(!out.from_cache);
        assert!(out.db_cost.rows_scanned >= 2);
    }

    #[test]
    fn get_returns_first_or_none() {
        let s = session();
        s.create("User", &[("name", "x".into()), ("age", 1i64.into())])
            .unwrap();
        let (row, _) = s.get_by_id("User", 1).unwrap();
        assert_eq!(row.unwrap().get("name"), &Value::Text("x".into()));
        let (row, _) = s.get_by_id("User", 999).unwrap();
        assert!(row.is_none());
    }

    #[test]
    fn count_matches() {
        let s = session();
        for i in 0..5i64 {
            s.create(
                "User",
                &[("name", format!("u{i}").into()), ("age", (i % 2).into())],
            )
            .unwrap();
        }
        let qs = s.objects("User").unwrap().filter_eq("age", 0i64);
        let (n, _) = s.count(&qs).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn update_and_delete_by_id() {
        let s = session();
        s.create("User", &[("name", "old".into()), ("age", 1i64.into())])
            .unwrap();
        let w = s
            .update_by_id("User", 1, &[("name", "new".into())])
            .unwrap();
        assert_eq!(w.affected, 1);
        let (row, _) = s.get_by_id("User", 1).unwrap();
        assert_eq!(row.unwrap().get("name"), &Value::Text("new".into()));
        s.delete_by_id("User", 1).unwrap();
        let (row, _) = s.get_by_id("User", 1).unwrap();
        assert!(row.is_none());
    }

    #[test]
    fn delete_matching_applies_filters() {
        let s = session();
        for i in 0..6i64 {
            s.create(
                "User",
                &[("name", format!("u{i}").into()), ("age", (i % 3).into())],
            )
            .unwrap();
        }
        let qs = s.objects("User").unwrap().filter_eq("age", 0i64);
        let w = s.delete_matching(&qs).unwrap();
        assert_eq!(w.affected, 2);
        assert_eq!(s.database().row_count("users").unwrap(), 4);
    }

    #[test]
    fn delete_matching_rejects_joins() {
        let s = session();
        let bm = s.registry().model("Bookmark").unwrap().clone();
        let qs = s.objects("User").unwrap().join_reverse(&bm, "user_id");
        assert!(matches!(
            s.delete_matching(&qs),
            Err(StorageError::Unsupported(_))
        ));
    }

    #[test]
    fn fk_relation_join_through_orm() {
        let s = session();
        s.create("User", &[("name", "alice".into()), ("age", 1i64.into())])
            .unwrap();
        s.create(
            "Bookmark",
            &[("user_id", 1i64.into()), ("url", "http://a".into())],
        )
        .unwrap();
        let user = s.registry().model("User").unwrap().clone();
        let qs = s
            .objects("Bookmark")
            .unwrap()
            .filter_eq("user_id", 1i64)
            .join_forward("user_id", &user)
            .values(&[("bookmarks", "url"), ("users", "name")]);
        let out = s.all(&qs).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get("url"), &Value::Text("http://a".into()));
        assert_eq!(out.rows[0].get("name"), &Value::Text("alice".into()));
    }

    #[test]
    fn interceptor_hit_skips_database() {
        struct AlwaysHit;
        impl QueryInterceptor for AlwaysHit {
            fn try_serve(&self, _s: &Select, _p: &[Value]) -> InterceptOutcome {
                InterceptOutcome::Served {
                    result: QueryResult {
                        columns: vec!["id".into()],
                        rows: vec![genie_storage::row![777i64]],
                        rows_affected: 0,
                    },
                    cache_ops: 1,
                    db_cost: CostReport::new(),
                    from_cache: true,
                }
            }
            fn fill(&self, _k: &str, _r: &QueryResult) -> u64 {
                0
            }
        }
        let s = session();
        s.set_interceptor(Arc::new(AlwaysHit));
        let qs = s.objects("User").unwrap().filter_eq("id", 1i64);
        let out = s.all(&qs).unwrap();
        assert!(out.from_cache);
        assert_eq!(out.rows[0].id(), 777);
        assert_eq!(out.cache_ops, 1);
        assert!(out.db_cost.is_empty());
        // Database untouched: no select registered.
        assert_eq!(s.database().stats().selects, 0);
    }

    #[test]
    fn interceptor_miss_fills_with_db_result() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct MissThenFill {
            filled_rows: AtomicU64,
        }
        impl QueryInterceptor for MissThenFill {
            fn try_serve(&self, _s: &Select, _p: &[Value]) -> InterceptOutcome {
                InterceptOutcome::Miss {
                    fill_key: "k".into(),
                    cache_ops: 1,
                }
            }
            fn fill(&self, key: &str, r: &QueryResult) -> u64 {
                assert_eq!(key, "k");
                self.filled_rows
                    .store(r.rows.len() as u64, Ordering::SeqCst);
                1
            }
        }
        let s = session();
        s.create("User", &[("name", "a".into()), ("age", 1i64.into())])
            .unwrap();
        let ic = Arc::new(MissThenFill {
            filled_rows: AtomicU64::new(99),
        });
        s.set_interceptor(ic.clone() as Arc<dyn QueryInterceptor>);
        let qs = s.objects("User").unwrap().filter_eq("id", 1i64);
        let out = s.all(&qs).unwrap();
        assert!(!out.from_cache);
        assert_eq!(out.cache_ops, 2, "probe + fill");
        assert_eq!(ic.filled_rows.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clear_interceptor_restores_pass_through() {
        struct Bomb;
        impl QueryInterceptor for Bomb {
            fn try_serve(&self, _s: &Select, _p: &[Value]) -> InterceptOutcome {
                panic!("should not be consulted");
            }
            fn fill(&self, _k: &str, _r: &QueryResult) -> u64 {
                0
            }
        }
        let s = session();
        s.set_interceptor(Arc::new(Bomb));
        s.clear_interceptor();
        let qs = s.objects("User").unwrap();
        assert!(s.all(&qs).is_ok());
    }
}
