//! Model metadata: the ORM's description of application data.
//!
//! A [`ModelDef`] corresponds to a Django model: a named entity backed by
//! one table, with typed fields, foreign keys to other models, and an
//! implicit integer primary key `id`. The registry turns model definitions
//! into storage schemas (Django's `syncdb`).

use genie_storage::{ColumnDef, Database, IndexDef, Result, StorageError, TableSchema, ValueType};
use std::collections::BTreeMap;

/// One scalar field of a model (the implicit `id` is not listed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ValueType,
    /// NOT NULL.
    pub not_null: bool,
    /// UNIQUE (implies an index).
    pub unique: bool,
    /// Secondary index requested.
    pub indexed: bool,
}

impl FieldDef {
    /// A nullable, unindexed field.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
            indexed: false,
        }
    }

    /// Marks NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Marks UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Requests a secondary index.
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// A foreign key field: an integer column referencing another model's `id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeyField {
    /// Column name (Django convention: `<relation>_id`).
    pub column: String,
    /// Referenced model name.
    pub ref_model: String,
    /// NOT NULL.
    pub not_null: bool,
}

/// A model definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelDef {
    name: String,
    table: String,
    fields: Vec<FieldDef>,
    foreign_keys: Vec<ForeignKeyField>,
    index_together: Vec<Vec<String>>,
}

impl ModelDef {
    /// Starts building a model `name` stored in `table`.
    pub fn builder(name: impl Into<String>, table: impl Into<String>) -> ModelDefBuilder {
        ModelDefBuilder {
            name: name.into(),
            table: table.into(),
            fields: Vec::new(),
            foreign_keys: Vec::new(),
            index_together: Vec::new(),
        }
    }

    /// Model name (e.g. `Profile`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Backing table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Scalar fields (excluding `id` and FK columns).
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKeyField] {
        &self.foreign_keys
    }

    /// Composite indexes (Django's `index_together`).
    pub fn index_together(&self) -> &[Vec<String>] {
        &self.index_together
    }

    /// All column names in schema order: `id`, FK columns, scalar fields.
    pub fn columns(&self) -> Vec<String> {
        let mut out = vec!["id".to_owned()];
        out.extend(self.foreign_keys.iter().map(|f| f.column.clone()));
        out.extend(self.fields.iter().map(|f| f.name.clone()));
        out
    }

    /// Builds the storage schema for this model.
    pub fn to_schema(&self) -> Result<TableSchema> {
        let mut b = TableSchema::builder(&self.table).pk("id");
        for fk in &self.foreign_keys {
            let mut col = ColumnDef::new(&fk.column, ValueType::Int);
            if fk.not_null {
                col = col.not_null();
            }
            b = b.column(col);
        }
        for f in &self.fields {
            let mut col = ColumnDef::new(&f.name, f.ty);
            if f.not_null {
                col = col.not_null();
            }
            if f.unique {
                col = col.unique();
            }
            b = b.column(col);
        }
        for fk in &self.foreign_keys {
            // Referenced table resolved by the registry at sync time; the
            // FK def stores the model name and is rewritten there.
            b = b.foreign_key(&fk.column, format!("@model:{}", fk.ref_model), "id");
        }
        b.build()
    }
}

/// Builder for [`ModelDef`].
#[derive(Debug, Clone)]
pub struct ModelDefBuilder {
    name: String,
    table: String,
    fields: Vec<FieldDef>,
    foreign_keys: Vec<ForeignKeyField>,
    index_together: Vec<Vec<String>>,
}

impl ModelDefBuilder {
    /// Adds a scalar field.
    pub fn field(mut self, field: FieldDef) -> Self {
        self.fields.push(field);
        self
    }

    /// Adds a NOT NULL foreign key `column` referencing `ref_model.id`.
    pub fn foreign_key(mut self, column: impl Into<String>, ref_model: impl Into<String>) -> Self {
        self.foreign_keys.push(ForeignKeyField {
            column: column.into(),
            ref_model: ref_model.into(),
            not_null: true,
        });
        self
    }

    /// Adds a nullable foreign key.
    pub fn foreign_key_nullable(
        mut self,
        column: impl Into<String>,
        ref_model: impl Into<String>,
    ) -> Self {
        self.foreign_keys.push(ForeignKeyField {
            column: column.into(),
            ref_model: ref_model.into(),
            not_null: false,
        });
        self
    }

    /// Declares a composite index over `columns`, in key order (Django's
    /// `index_together`). The planner uses it for equality-prefix, range,
    /// and ORDER BY-satisfying scans.
    pub fn index_together<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.index_together
            .push(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Finalizes the definition.
    pub fn build(self) -> ModelDef {
        ModelDef {
            name: self.name,
            table: self.table,
            fields: self.fields,
            foreign_keys: self.foreign_keys,
            index_together: self.index_together,
        }
    }
}

/// A set of models that sync together (one Django "app", or several).
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelDef>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a model.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] for duplicate model names.
    pub fn register(&mut self, model: ModelDef) -> Result<()> {
        if self.models.contains_key(model.name()) {
            return Err(StorageError::AlreadyExists(model.name().to_owned()));
        }
        self.models.insert(model.name().to_owned(), model);
        Ok(())
    }

    /// Looks up a model by name.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] if absent.
    pub fn model(&self, name: &str) -> Result<&ModelDef> {
        self.models
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(format!("model {name}")))
    }

    /// All registered models, sorted by name.
    pub fn models(&self) -> impl Iterator<Item = &ModelDef> {
        self.models.values()
    }

    /// Creates every model's table, foreign keys, and indexes in `db`
    /// (Django's `syncdb`). Tables are created before FK constraints are
    /// meaningful, so models may reference each other freely.
    ///
    /// Idempotent over an existing catalog: tables and indexes that are
    /// already present are left alone, so `sync` is safe to run against
    /// a database recovered from its write-ahead log (whose catalog was
    /// rebuilt by replay) as well as a fresh one.
    ///
    /// # Errors
    ///
    /// Schema or FK resolution errors; unknown referenced models report
    /// [`StorageError::UnknownTable`].
    pub fn sync(&self, db: &Database) -> Result<()> {
        // Resolve FK model references to table names.
        for model in self.models.values() {
            let schema = model.to_schema()?;
            let mut b = TableSchema::builder(model.table()).pk("id");
            for col in schema.columns().iter().skip(1) {
                b = b.column(col.clone());
            }
            for fk in model.foreign_keys() {
                let target = self.model(&fk.ref_model)?;
                b = b.foreign_key(&fk.column, target.table(), "id");
            }
            match db.create_table(b.build()?) {
                Ok(()) | Err(StorageError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        // Secondary indexes: FK columns (Django indexes FKs automatically)
        // plus explicitly indexed fields.
        fn ensure_index(db: &Database, table: &str, def: IndexDef) -> Result<()> {
            match db.create_index(table, def) {
                Ok(()) | Err(StorageError::AlreadyExists(_)) => Ok(()),
                Err(e) => Err(e),
            }
        }
        for model in self.models.values() {
            for fk in model.foreign_keys() {
                ensure_index(
                    db,
                    model.table(),
                    IndexDef {
                        name: format!("{}_{}_idx", model.table(), fk.column),
                        columns: vec![fk.column.clone()],
                        unique: false,
                    },
                )?;
            }
            for f in model.fields() {
                if f.indexed && !f.unique {
                    ensure_index(
                        db,
                        model.table(),
                        IndexDef {
                            name: format!("{}_{}_idx", model.table(), f.name),
                            columns: vec![f.name.clone()],
                            unique: false,
                        },
                    )?;
                }
            }
            for cols in model.index_together() {
                ensure_index(
                    db,
                    model.table(),
                    IndexDef {
                        name: format!("{}_{}_idx", model.table(), cols.join("_")),
                        columns: cols.clone(),
                        unique: false,
                    },
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_model() -> ModelDef {
        ModelDef::builder("User", "users")
            .field(
                FieldDef::new("username", ValueType::Text)
                    .not_null()
                    .unique(),
            )
            .field(FieldDef::new("joined", ValueType::Timestamp).not_null())
            .build()
    }

    fn profile_model() -> ModelDef {
        ModelDef::builder("Profile", "profiles")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("bio", ValueType::Text))
            .field(FieldDef::new("location", ValueType::Text).indexed())
            .build()
    }

    #[test]
    fn columns_in_schema_order() {
        let m = profile_model();
        assert_eq!(m.columns(), vec!["id", "user_id", "bio", "location"]);
    }

    #[test]
    fn sync_creates_tables_and_indexes() {
        let mut reg = ModelRegistry::new();
        reg.register(user_model()).unwrap();
        reg.register(profile_model()).unwrap();
        let db = Database::default();
        reg.sync(&db).unwrap();
        assert_eq!(
            db.table_names(),
            vec!["profiles".to_string(), "users".to_string()]
        );
        // FK columns are indexed: a filtered select must not full-scan.
        db.execute_sql("INSERT INTO users VALUES (1, 'alice', TS(0))", &[])
            .unwrap();
        db.execute_sql("INSERT INTO profiles VALUES (1, 1, 'hi', 'cambridge')", &[])
            .unwrap();
        let out = db
            .execute_sql("SELECT * FROM profiles WHERE user_id = 1", &[])
            .unwrap();
        assert_eq!(out.cost.index_probes, 1);
        assert_eq!(out.result.rows.len(), 1);
    }

    #[test]
    fn fk_enforced_after_sync() {
        let mut reg = ModelRegistry::new();
        reg.register(user_model()).unwrap();
        reg.register(profile_model()).unwrap();
        let db = Database::default();
        reg.sync(&db).unwrap();
        let err = db
            .execute_sql("INSERT INTO profiles VALUES (1, 99, 'x', 'y')", &[])
            .unwrap_err();
        assert!(matches!(err, StorageError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn unknown_fk_model_rejected_at_sync() {
        let mut reg = ModelRegistry::new();
        reg.register(profile_model()).unwrap(); // references User, absent
        let db = Database::default();
        assert!(reg.sync(&db).is_err());
    }

    #[test]
    fn duplicate_model_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register(user_model()).unwrap();
        assert!(reg.register(user_model()).is_err());
    }

    #[test]
    fn unique_field_enforced() {
        let mut reg = ModelRegistry::new();
        reg.register(user_model()).unwrap();
        let db = Database::default();
        reg.sync(&db).unwrap();
        db.execute_sql("INSERT INTO users VALUES (1, 'bob', TS(0))", &[])
            .unwrap();
        assert!(db
            .execute_sql("INSERT INTO users VALUES (2, 'bob', TS(0))", &[])
            .is_err());
    }
}
