//! Property tests for the ORM's query canonicalization — the contract
//! CacheGenie's interception relies on: *structurally identical query
//! sets compile to byte-identical SQL templates*, and the template's
//! canonical text survives a parser round trip.

use genie_orm::{FieldDef, FilterOp, ModelDef, QuerySet};
use genie_storage::{sql, Statement, Value, ValueType};
use proptest::prelude::*;

fn model() -> ModelDef {
    ModelDef::builder("Item", "items")
        .foreign_key("owner_id", "Owner")
        .field(FieldDef::new("name", ValueType::Text))
        .field(FieldDef::new("score", ValueType::Int).indexed())
        .field(FieldDef::new("at", ValueType::Timestamp).indexed())
        .build()
}

fn owner() -> ModelDef {
    ModelDef::builder("Owner", "owners")
        .field(FieldDef::new("name", ValueType::Text))
        .build()
}

#[derive(Debug, Clone)]
struct Shape {
    filters: Vec<(String, u8)>,
    join: bool,
    order_desc: Option<bool>,
    limit: Option<u64>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec(
            (
                prop::sample::select(vec![
                    "owner_id".to_string(),
                    "name".to_string(),
                    "score".to_string(),
                ]),
                0u8..4,
            ),
            0..3,
        ),
        any::<bool>(),
        proptest::option::of(any::<bool>()),
        proptest::option::of(1u64..50),
    )
        .prop_map(|(filters, join, order_desc, limit)| Shape {
            filters,
            join,
            order_desc,
            limit,
        })
}

fn build(shape: &Shape, value_seed: i64) -> (genie_storage::Select, Vec<Value>) {
    let mut qs = QuerySet::new(model());
    if shape.join {
        qs = qs.join_forward("owner_id", &owner());
    }
    for (i, (field, op)) in shape.filters.iter().enumerate() {
        let v = Value::Int(value_seed + i as i64);
        qs = match op {
            0 => qs.filter(field.clone(), FilterOp::Eq, v),
            1 => qs.filter(field.clone(), FilterOp::Gt, v),
            2 => qs.filter(field.clone(), FilterOp::Lte, v),
            _ => qs.filter(field.clone(), FilterOp::Ne, v),
        };
    }
    if let Some(desc) = shape.order_desc {
        qs = qs.order_by(if desc { "-at" } else { "at" });
    }
    if let Some(l) = shape.limit {
        qs = qs.limit(l);
    }
    qs.compile()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same shape + different values => identical template, different
    /// parameter vectors.
    #[test]
    fn canonicalization_is_value_independent(shape in shape_strategy(), a in -1000i64..1000, b in -1000i64..1000) {
        let (sel_a, params_a) = build(&shape, a);
        let (sel_b, params_b) = build(&shape, b);
        prop_assert_eq!(&sel_a, &sel_b);
        prop_assert_eq!(sel_a.to_string(), sel_b.to_string());
        prop_assert_eq!(params_a.len(), params_b.len());
        if a != b && !shape.filters.is_empty() {
            prop_assert_ne!(params_a, params_b);
        }
    }

    /// The canonical text reparses to the same statement.
    #[test]
    fn template_text_roundtrips_through_parser(shape in shape_strategy(), seed in -1000i64..1000) {
        let (sel, _) = build(&shape, seed);
        let text = sel.to_string();
        let reparsed = sql::parse(&text).unwrap();
        prop_assert_eq!(Statement::Select(sel), reparsed);
    }

    /// COUNT templates are also canonical and strip order/limit.
    #[test]
    fn count_templates_canonical(shape in shape_strategy(), a in -1000i64..1000, b in -1000i64..1000) {
        let s1 = {
            let mut qs = QuerySet::new(model());
            for (i, (field, _)) in shape.filters.iter().enumerate() {
                qs = qs.filter_eq(field.clone(), Value::Int(a + i as i64));
            }
            qs = qs.order_by("-at").limit(5);
            qs.compile_count().0
        };
        let s2 = {
            let mut qs = QuerySet::new(model());
            for (i, (field, _)) in shape.filters.iter().enumerate() {
                qs = qs.filter_eq(field.clone(), Value::Int(b + i as i64));
            }
            qs.compile_count().0
        };
        prop_assert_eq!(&s1, &s2, "order/limit must not leak into count templates");
        prop_assert!(s1.order_by.is_empty());
        prop_assert!(s1.limit.is_none());
    }
}
