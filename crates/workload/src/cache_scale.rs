//! Raw cache-tier scaling driver: N client threads hammer one
//! [`CacheCluster`] directly — no database, no triggers — with a
//! Zipf-skewed get/set mix, measuring aggregate cache-op throughput and
//! GET latency percentiles. This isolates the store's lock-striping and
//! eviction-policy cost from everything else in the stack, which is what
//! the `exp_cache_scale` experiment sweeps:
//!
//! * **threads 1→8, one server**: sharded CLOCK stores vs the legacy
//!   single-mutex stamp-LRU baseline (the ≥2× throughput gate);
//! * **servers 1→8, fixed load**: p99 GET latency must stay near-flat
//!   as the ring grows;
//! * **kill/rejoin**: the same mix with a node failure schedule must
//!   finish with every surviving value byte-correct.
//!
//! Correctness is checked inline: every key's canonical payload is a
//! pure function of the key, writers only ever store that payload, so
//! any GET returning different bytes is a violation no matter how the
//! threads interleaved. A miss is always legal (eviction, node death).

use bytes::Bytes;
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig, EvictionPolicy};
use genie_sim::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Configuration for one raw cache-tier run.
#[derive(Debug, Clone)]
pub struct CacheScaleConfig {
    /// Client threads issuing cache operations concurrently.
    pub client_threads: usize,
    /// Cache servers in the cluster.
    pub servers: usize,
    /// Lock-striped shards per server (1 = a single mutex per server).
    pub shards_per_server: usize,
    /// Store eviction policy ([`EvictionPolicy::LruStamp`] is the
    /// pre-shard baseline shape).
    pub eviction: EvictionPolicy,
    /// Copies per hot key (1 = replication off).
    pub hot_key_replicas: usize,
    /// Accesses before a key counts as hot.
    pub hot_key_threshold: u64,
    /// Distinct keys in the working set.
    pub keys: usize,
    /// Zipf exponent for key popularity (higher = hotter head).
    pub zipf_a: f64,
    /// Percentage of operations that are GETs (the rest are SETs).
    pub get_pct: u32,
    /// Operations each thread issues.
    pub ops_per_thread: usize,
    /// Canonical payload size per key, in bytes.
    pub value_bytes: usize,
    /// Total cluster capacity in bytes.
    pub capacity_bytes: usize,
    /// RNG seed (per-thread streams derive from it).
    pub rng_seed: u64,
    /// Kill server 1 a third of the way through the run and revive it
    /// at two thirds (requires `servers >= 2`).
    pub node_kill: bool,
}

impl Default for CacheScaleConfig {
    fn default() -> Self {
        CacheScaleConfig {
            client_threads: 4,
            servers: 1,
            shards_per_server: 16,
            eviction: EvictionPolicy::Clock,
            hot_key_replicas: 1,
            hot_key_threshold: 64,
            keys: 8192,
            zipf_a: 1.2,
            get_pct: 90,
            ops_per_thread: 20_000,
            value_bytes: 128,
            capacity_bytes: 64 * 1024 * 1024,
            rng_seed: 7,
            node_kill: false,
        }
    }
}

/// Outcome of one raw cache-tier run.
#[derive(Debug, Clone, Default)]
pub struct CacheScaleResult {
    /// Client threads used.
    pub client_threads: usize,
    /// Servers in the cluster.
    pub servers: usize,
    /// Operations completed (gets + sets).
    pub ops: u64,
    /// GETs issued.
    pub gets: u64,
    /// SETs issued.
    pub sets: u64,
    /// GETs that returned a value.
    pub get_hits: u64,
    /// GETs that missed.
    pub get_misses: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Aggregate cache operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Median GET latency in microseconds.
    pub get_p50_us: f64,
    /// 99th-percentile GET latency in microseconds.
    pub get_p99_us: f64,
    /// Reads of replicated hot keys served by a non-primary copy.
    pub replica_reads: u64,
    /// Keys promoted to replicated during the run.
    pub hot_promotions: u64,
    /// Keys still replicated when the run ended.
    pub replicated_keys: usize,
    /// Nodes killed by the failure schedule.
    pub node_kills: u64,
    /// Nodes revived by the failure schedule.
    pub node_revives: u64,
    /// GETs that returned bytes different from the key's canonical
    /// payload — must be zero.
    pub value_violations: u64,
    /// Keys whose replica copies diverged (checked post-run) — must be
    /// zero.
    pub coherence_violations: u64,
}

/// The one value `key_of(rank)` is ever stored under: byte-deterministic
/// in the rank, so readers can validate without shared bookkeeping. The
/// driver works on raw bytes (no payload codec) so the measured cost is
/// the store itself, not encode/decode.
fn canonical_bytes(rank: usize, value_bytes: usize) -> Bytes {
    let fill = (rank % 251) as u8;
    Bytes::from(vec![fill; value_bytes.max(1)])
}

fn key_of(rank: usize) -> String {
    format!("obj:{rank}")
}

#[derive(Default)]
struct ClientTally {
    gets: u64,
    sets: u64,
    get_hits: u64,
    get_misses: u64,
    value_violations: u64,
    node_kills: u64,
    node_revives: u64,
    latencies_ns: Vec<u64>,
}

/// Runs one raw cache-tier configuration to completion and validates
/// every surviving value afterwards.
///
/// # Panics
///
/// Panics if a client thread panics (a cache invariant broke) or the
/// configuration is inconsistent (`node_kill` with fewer than two
/// servers).
pub fn run_cache_scale(cfg: &CacheScaleConfig) -> CacheScaleResult {
    assert!(
        !cfg.node_kill || cfg.servers >= 2,
        "node_kill needs at least two cache servers"
    );
    let cluster = CacheCluster::new(ClusterConfig {
        servers: cfg.servers.max(1),
        capacity_bytes: cfg.capacity_bytes,
        shards_per_server: cfg.shards_per_server.max(1),
        eviction: cfg.eviction,
        hot_key_replicas: cfg.hot_key_replicas.max(1),
        hot_key_threshold: cfg.hot_key_threshold,
        ..Default::default()
    });
    let handle = cluster.handle(CacheOrigin::Application);
    // Key strings and canonical values are precomputed so the measured
    // loop allocates nothing of its own: every nanosecond difference
    // between configurations comes from inside the store.
    let keys: Arc<Vec<String>> = Arc::new((1..=cfg.keys).map(key_of).collect());
    let canon: Arc<Vec<Bytes>> = Arc::new(
        (1..=cfg.keys)
            .map(|rank| canonical_bytes(rank, cfg.value_bytes))
            .collect(),
    );
    // Pre-populate so the measured phase starts warm; SETs thereafter
    // rewrite the same canonical bytes.
    for rank in 1..=cfg.keys {
        handle
            .set(&keys[rank - 1], canon[rank - 1].clone(), None)
            .expect("seeding the working set cannot fail");
    }
    let zipf = Arc::new(Zipf::new(cfg.keys.max(1), cfg.zipf_a));
    let threads = cfg.client_threads.max(1);
    let barrier = Arc::new(Barrier::new(threads));
    let total_ops = (threads * cfg.ops_per_thread) as u64;
    let progress = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<ClientTally>> = (0..threads)
        .map(|t| {
            let handle = cluster.handle(CacheOrigin::Application);
            let cluster = cluster.clone();
            let zipf = Arc::clone(&zipf);
            let keys = Arc::clone(&keys);
            let canon = Arc::clone(&canon);
            let barrier = Arc::clone(&barrier);
            let progress = Arc::clone(&progress);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.rng_seed.wrapping_add(t as u64 * 7919));
                let mut tally = ClientTally {
                    latencies_ns: Vec::with_capacity(cfg.ops_per_thread / 8 + 1),
                    ..Default::default()
                };
                // The whole Zipf access sequence is drawn before the
                // clock starts: sampling cost is workload-generator
                // overhead, not cache cost, and must not dilute the
                // store-to-store comparison.
                let seq: Vec<u32> = (0..cfg.ops_per_thread)
                    .map(|_| zipf.sample(&mut rng) as u32)
                    .collect();
                barrier.wait();
                let (mut killed, mut revived) = (false, false);
                for (i, &rank32) in seq.iter().enumerate() {
                    // Failure schedule driven off global progress so it
                    // fires at the same workload fraction regardless of
                    // thread count; only thread 0 flips node state, and
                    // each transition happens exactly once. Thread 0's
                    // own progress is a floor: under scheduler skew it
                    // may run far ahead of the global counter, and both
                    // transitions must still fire before it runs out of
                    // iterations.
                    if cfg.node_kill && t == 0 {
                        let done = progress
                            .load(Ordering::Relaxed)
                            .max(i as u64 * threads as u64);
                        if !killed && done >= total_ops / 3 && cluster.kill_node(1) {
                            killed = true;
                            tally.node_kills += 1;
                        } else if killed && !revived && done >= 2 * total_ops / 3 {
                            if cluster.revive_node(1) {
                                tally.node_revives += 1;
                            }
                            revived = true;
                        }
                    }
                    let rank = rank32 as usize;
                    let key = &keys[rank - 1];
                    // Deterministic get/set interleave and a 1-in-8 GET
                    // latency sample: clock reads and extra RNG draws are
                    // shared loop overhead that would dilute the very
                    // store-cost difference the sweep exists to measure.
                    if i % 100 < cfg.get_pct as usize {
                        tally.gets += 1;
                        let sampled = tally.gets.is_multiple_of(8);
                        let t0 = sampled.then(Instant::now);
                        let got = handle.get(key);
                        if let Some(t0) = t0 {
                            tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        }
                        match got {
                            Some(b) => {
                                tally.get_hits += 1;
                                if b != canon[rank - 1] {
                                    tally.value_violations += 1;
                                }
                            }
                            None => tally.get_misses += 1,
                        }
                    } else {
                        tally.sets += 1;
                        let _ = handle.set(key, canon[rank - 1].clone(), None);
                    }
                    if cfg.node_kill {
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                }
                tally
            })
        })
        .collect();

    let mut result = CacheScaleResult {
        client_threads: threads,
        servers: cfg.servers.max(1),
        ..Default::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let t = h.join().expect("cache client thread panicked");
        result.gets += t.gets;
        result.sets += t.sets;
        result.get_hits += t.get_hits;
        result.get_misses += t.get_misses;
        result.value_violations += t.value_violations;
        result.node_kills += t.node_kills;
        result.node_revives += t.node_revives;
        latencies.extend(t.latencies_ns);
    }
    result.elapsed = start.elapsed();
    result.ops = result.gets + result.sets;
    result.ops_per_sec = if result.elapsed.as_secs_f64() > 0.0 {
        result.ops as f64 / result.elapsed.as_secs_f64()
    } else {
        0.0
    };
    latencies.sort_unstable();
    result.get_p50_us = percentile_us(&latencies, 50.0);
    result.get_p99_us = percentile_us(&latencies, 99.0);

    // Quiesced: bring any still-dead node back (coherence is defined
    // over the fully-alive ring — a short run can finish before the
    // schedule's revive point), then validate.
    for idx in 0..result.servers {
        if !cluster.is_alive(idx) && cluster.revive_node(idx) {
            result.node_revives += 1;
        }
    }
    let stats = cluster.stats();
    result.replica_reads = stats.replica_reads;
    result.hot_promotions = stats.hot_key_promotions;
    result.replicated_keys = stats.replicated_keys;
    for rank in 1..=cfg.keys {
        let key = &keys[rank - 1];
        if !cluster.replicas_coherent(key) {
            result.coherence_violations += 1;
        }
        // An absent copy is legal (evicted or rehashed away); a present
        // one must carry the canonical payload.
        if let Some(b) = handle.get(key) {
            if b != canon[rank - 1] {
                result.value_violations += 1;
            }
        }
    }
    result
}

/// `pct`-th percentile of sorted nanosecond samples, in microseconds.
fn percentile_us(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((pct / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threads: usize) -> CacheScaleConfig {
        CacheScaleConfig {
            client_threads: threads,
            ops_per_thread: 2_000,
            keys: 512,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_run_is_clean() {
        let r = run_cache_scale(&quick(4));
        assert_eq!(r.ops, 4 * 2_000);
        assert_eq!(r.value_violations, 0, "{r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
        assert!(r.get_hits > 0);
        assert!(r.get_p99_us >= r.get_p50_us);
    }

    #[test]
    fn baseline_shape_is_clean_too() {
        let r = run_cache_scale(&CacheScaleConfig {
            shards_per_server: 1,
            eviction: EvictionPolicy::LruStamp,
            ..quick(2)
        });
        assert_eq!(r.value_violations, 0, "{r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
    }

    #[test]
    fn replicated_run_with_kill_stays_correct() {
        let r = run_cache_scale(&CacheScaleConfig {
            servers: 4,
            hot_key_replicas: 3,
            hot_key_threshold: 16,
            node_kill: true,
            ..quick(4)
        });
        assert_eq!(r.value_violations, 0, "{r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
        assert_eq!(r.node_kills, 1, "{r:?}");
        assert_eq!(r.node_revives, 1, "{r:?}");
        assert!(r.hot_promotions > 0, "zipf head must go hot: {r:?}");
        assert!(r.replica_reads > 0, "replicas must serve reads: {r:?}");
    }
}
