//! Workload specification: the experiment parameters of §5.1/§5.4.

use crate::costmodel::CostParams;
use genie_social::SeedConfig;

/// Which caching configuration to run — the paper's three systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Every request served by the database (paper: "NoCache").
    NoCache,
    /// CacheGenie with per-key invalidation triggers.
    Invalidate,
    /// CacheGenie with incremental update-in-place triggers (default).
    Update,
}

impl CacheMode {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            CacheMode::NoCache => "NoCache",
            CacheMode::Invalidate => "Invalidate",
            CacheMode::Update => "Update",
        }
    }
}

/// The page types of the workload (Table 2's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageKind {
    /// Session start (includes a `last_login` write).
    Login,
    /// Session end.
    Logout,
    /// Look up own bookmarks (read).
    LookupBM,
    /// Look up friends' bookmarks (read, join-heavy).
    LookupFBM,
    /// Create a bookmark (write).
    CreateBM,
    /// Accept a friend request (write).
    AcceptFR,
    /// Post several wall messages inside one multi-statement transaction
    /// (write; exercises the commit-time effect pipeline, and a
    /// configurable fraction rolls back).
    BatchPost,
}

impl PageKind {
    /// Display label matching Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            PageKind::Login => "Login",
            PageKind::Logout => "Logout",
            PageKind::LookupBM => "LookupBM",
            PageKind::LookupFBM => "LookupFBM",
            PageKind::CreateBM => "CreateBM",
            PageKind::AcceptFR => "AcceptFR",
            PageKind::BatchPost => "BatchPost",
        }
    }

    /// All page kinds in Table 2 order (plus the transactional extension).
    pub fn all() -> [PageKind; 7] {
        [
            PageKind::Login,
            PageKind::Logout,
            PageKind::LookupBM,
            PageKind::LookupFBM,
            PageKind::CreateBM,
            PageKind::AcceptFR,
            PageKind::BatchPost,
        ]
    }
}

/// The in-session action mix (default 50:30:10:10 — 80% read pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMix {
    /// LookupBM weight.
    pub lookup_bm: u32,
    /// LookupFBM weight.
    pub lookup_fbm: u32,
    /// CreateBM weight.
    pub create_bm: u32,
    /// AcceptFR weight.
    pub accept_fr: u32,
    /// BatchPost weight (multi-statement transactions; 0 reproduces the
    /// paper's original mix exactly).
    pub batch_post: u32,
}

impl Default for PageMix {
    fn default() -> Self {
        PageMix {
            lookup_bm: 50,
            lookup_fbm: 30,
            create_bm: 10,
            accept_fr: 10,
            batch_post: 0,
        }
    }
}

impl PageMix {
    /// A mix with `read_pct` percent read pages, preserving the paper's
    /// internal 50:30 read and 10:10 write proportions (Experiment 2's
    /// x-axis).
    pub fn with_read_percent(read_pct: u32) -> Self {
        let read = read_pct.min(100);
        let write = 100 - read;
        PageMix {
            lookup_bm: read * 5 / 8,
            lookup_fbm: read - read * 5 / 8,
            create_bm: write / 2,
            accept_fr: write - write / 2,
            batch_post: 0,
        }
    }

    /// Total weight (0 means "no action pages").
    pub fn total(&self) -> u32 {
        self.lookup_bm + self.lookup_fbm + self.create_bm + self.accept_fr + self.batch_post
    }

    /// Fraction of action pages that are reads.
    pub fn read_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.lookup_bm + self.lookup_fbm) as f64 / t as f64
    }
}

/// Full workload configuration (defaults reproduce §5.4's setup at
/// laptop scale).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Caching configuration under test.
    pub mode: CacheMode,
    /// Parallel closed-loop clients (paper default: 15).
    pub clients: usize,
    /// Measured sessions per client (paper: 100).
    pub sessions_per_client: usize,
    /// Warm-up sessions per client, excluded from metrics.
    pub warmup_sessions_per_client: usize,
    /// Action page loads per session (paper: 10, plus login/logout).
    pub pages_per_session: usize,
    /// Action mix.
    pub mix: PageMix,
    /// Zipf exponent for user popularity (paper: 2.0).
    pub zipf_a: f64,
    /// Seed-data scale.
    pub seed: SeedConfig,
    /// DB buffer-pool bytes (paper: 2 GB for a 10 GB dataset; scale
    /// proportionally to the seed).
    pub db_buffer_pool_bytes: usize,
    /// Total cache capacity in bytes (Experiment 4's x-axis).
    pub cache_bytes: usize,
    /// Cache servers.
    pub cache_servers: usize,
    /// Run memcached on the DB box: cache work occupies the DB CPU
    /// (Experiment 4's coda).
    pub colocated_cache: bool,
    /// Trigger firing enabled (Experiment 5 replays with `false`).
    pub triggers_enabled: bool,
    /// Whether trigger reads refresh cache LRU (ablation; memcached
    /// default is `true`).
    pub bump_lru_on_trigger: bool,
    /// Model reused trigger→cache connections (ablation of the paper's
    /// proposed optimization).
    pub reuse_trigger_connections: bool,
    /// Wall posts per BatchPost transaction.
    pub batch_posts_per_txn: usize,
    /// Percentage of BatchPost transactions that ROLLBACK instead of
    /// COMMIT — the abort mix proving rolled-back transactions publish
    /// no cache effects.
    pub batch_abort_pct: u32,
    /// Cost-model parameters.
    pub cost: CostParams,
    /// Driver RNG seed.
    pub rng_seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mode: CacheMode::Update,
            clients: 15,
            sessions_per_client: 20,
            warmup_sessions_per_client: 4,
            pages_per_session: 10,
            mix: PageMix::default(),
            zipf_a: 2.0,
            seed: SeedConfig::default(),
            db_buffer_pool_bytes: 256 * 1024,
            cache_bytes: 8 * 1024 * 1024,
            cache_servers: 1,
            colocated_cache: false,
            triggers_enabled: true,
            bump_lru_on_trigger: true,
            reuse_trigger_connections: false,
            batch_posts_per_txn: 4,
            batch_abort_pct: 25,
            cost: CostParams::default(),
            rng_seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for unit tests.
    pub fn smoke() -> Self {
        WorkloadConfig {
            clients: 3,
            sessions_per_client: 3,
            warmup_sessions_per_client: 1,
            pages_per_session: 4,
            seed: SeedConfig::tiny(),
            db_buffer_pool_bytes: 64 * 1024,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_80_20() {
        let m = PageMix::default();
        assert_eq!(m.total(), 100);
        assert!((m.read_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn read_percent_sweep() {
        for pct in [0u32, 20, 40, 60, 80, 100] {
            let m = PageMix::with_read_percent(pct);
            assert_eq!(m.total(), 100, "{pct}%");
            assert!(
                (m.read_fraction() - pct as f64 / 100.0).abs() < 0.011,
                "{pct}%: {}",
                m.read_fraction()
            );
        }
        assert_eq!(PageMix::with_read_percent(0).lookup_bm, 0);
        assert_eq!(PageMix::with_read_percent(100).create_bm, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(CacheMode::Update.label(), "Update");
        assert_eq!(PageKind::LookupFBM.label(), "LookupFBM");
        assert_eq!(PageKind::all().len(), 7);
        assert_eq!(PageKind::BatchPost.label(), "BatchPost");
    }
}
