//! Run results and per-page-type metrics.

use crate::spec::{CacheMode, PageKind};
use cachegenie::GenieStatsSnapshot;
use genie_cache::{ClusterStats, ServerStats};
use genie_sim::{Percentiles, SimDuration};
use genie_storage::{DbStats, PoolStats};
use std::collections::BTreeMap;

/// Latency statistics for one page type (a Table 2 cell).
#[derive(Debug, Clone, Default)]
pub struct PageTypeMetrics {
    latencies: Percentiles,
    total: SimDuration,
}

impl PageTypeMetrics {
    /// Records one page-load latency.
    pub fn push(&mut self, latency: SimDuration) {
        self.latencies.push(latency.as_secs_f64());
        self.total += latency;
    }

    /// Pages recorded.
    pub fn count(&self) -> usize {
        self.latencies.len()
    }

    /// Mean latency in seconds.
    pub fn mean_s(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.count() as f64
        }
    }

    /// p95 latency in seconds.
    pub fn p95_s(&mut self) -> f64 {
        self.percentile_s(95.0)
    }

    /// The `p`-th percentile latency in seconds (0.0 when empty), for
    /// the p50/p99/p999 reporting the serving experiments need.
    pub fn percentile_s(&mut self, p: f64) -> f64 {
        self.latencies.percentile(p).unwrap_or(0.0)
    }
}

/// Everything one workload run produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which system was measured.
    pub mode: CacheMode,
    /// Measured (post-warm-up) page loads.
    pub pages_completed: u64,
    /// Measured virtual duration.
    pub duration: SimDuration,
    /// Page loads per virtual second — the paper's y-axis.
    pub throughput_pages_per_sec: f64,
    /// Per-page-type latency breakdown (Table 2).
    pub per_page: BTreeMap<PageKind, PageTypeMetrics>,
    /// Cache-layer counters (aggregate across servers).
    pub cache_stats: ClusterStats,
    /// Per-server cache counters with the hit/miss split by origin —
    /// shows how evenly the consistent-hash ring spread the load.
    pub per_server: Vec<ServerStats>,
    /// Middleware counters.
    pub genie_stats: GenieStatsSnapshot,
    /// Database counters.
    pub db_stats: DbStats,
    /// Buffer-pool counters.
    pub pool_stats: PoolStats,
    /// DB CPU busy fraction over the measured window.
    pub db_cpu_utilization: f64,
    /// DB disk busy fraction.
    pub db_disk_utilization: f64,
    /// Cache-server busy fraction.
    pub cache_utilization: f64,
}

impl RunResult {
    /// Mean page latency across all page types, in seconds.
    pub fn mean_latency_s(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0usize);
        for m in self.per_page.values() {
            total += m.mean_s() * m.count() as f64;
            n += m.count();
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// The resource closest to saturation, for bottleneck reporting.
    pub fn bottleneck(&self) -> (&'static str, f64) {
        let mut best = ("db_cpu", self.db_cpu_utilization);
        for (name, u) in [
            ("db_disk", self.db_disk_utilization),
            ("cache", self.cache_utilization),
        ] {
            if u > best.1 {
                best = (name, u);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_metrics_mean() {
        let mut m = PageTypeMetrics::default();
        m.push(SimDuration::from_millis(100));
        m.push(SimDuration::from_millis(300));
        assert_eq!(m.count(), 2);
        assert!((m.mean_s() - 0.2).abs() < 1e-9);
        assert!(m.p95_s() >= 0.1);
    }

    #[test]
    fn run_result_mean_weights_by_count() {
        let mut per_page = BTreeMap::new();
        let mut a = PageTypeMetrics::default();
        a.push(SimDuration::from_millis(100));
        a.push(SimDuration::from_millis(100));
        let mut b = PageTypeMetrics::default();
        b.push(SimDuration::from_millis(400));
        per_page.insert(PageKind::LookupBM, a);
        per_page.insert(PageKind::CreateBM, b);
        let r = RunResult {
            mode: CacheMode::Update,
            pages_completed: 3,
            duration: SimDuration::from_secs(1),
            throughput_pages_per_sec: 3.0,
            per_page,
            cache_stats: Default::default(),
            per_server: Vec::new(),
            genie_stats: Default::default(),
            db_stats: Default::default(),
            pool_stats: Default::default(),
            db_cpu_utilization: 0.5,
            db_disk_utilization: 0.9,
            cache_utilization: 0.1,
        };
        assert!((r.mean_latency_s() - 0.2).abs() < 1e-9);
        assert_eq!(r.bottleneck(), ("db_disk", 0.9));
    }
}
