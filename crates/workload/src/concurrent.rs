//! Wall-clock multi-writer (and multi-reader) driver: N OS threads
//! hammer one shared deployment with the BatchPost transactional mix,
//! exercising the engine's row-lock concurrency (thread-scoped
//! transactions, 2PL, deadlock detection, first-updater-wins write
//! conflicts) and the commit pipeline's per-key flush ordering for real
//! — no virtual time, no activity scanning.
//!
//! With `reader_threads > 0` the driver additionally runs a
//! reader-heavy mixed scenario: dedicated threads open *read-only
//! transactions* that scan walls and users while the writers churn.
//! Under MVCC snapshot reads these readers take no locks at all, so
//! they must never deadlock and never observe a torn state — each
//! reader transaction re-runs its first query at the end and any
//! difference is counted as a `snapshot_violations` (must stay zero).
//! Setting `reader_locking` re-enables the legacy PR-4 behaviour
//! (SELECTs take table shared locks and block behind writers), which is
//! the measurable baseline the MVCC experiment compares against.
//!
//! Unlike [`crate::driver::run`] (which measures the paper's saturation
//! curves deterministically in simulated time), this driver measures the
//! *engine itself* under true interleaving: throughput is transactions
//! per wall-clock second, aborts are real deadlock victims, and the
//! post-run cross-check re-evaluates every touched cached object against
//! the database — any mismatch is a coherence violation in the commit
//! pipeline.

use genie_cache::ClusterConfig;
use genie_social::{build_app, build_app_on, AppConfig, SeedConfig};
use genie_storage::{Database, Result, StorageError, Value, WalConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Rows seeded into each `shard_<t>` scratch table for the
/// disjoint-table mix.
const SHARD_ROWS: i64 = 64;

/// Configuration for one multi-writer run.
#[derive(Debug, Clone)]
pub struct ConcurrencyConfig {
    /// Writer threads driving transactions concurrently.
    pub threads: usize,
    /// Transactions each thread issues.
    pub txns_per_thread: usize,
    /// Wall posts per BatchPost transaction.
    pub posts_per_txn: usize,
    /// Percentage of transactions that intentionally ROLLBACK.
    pub abort_pct: u32,
    /// Percentage of transactions that are two-user "poke" transactions
    /// (each updates two `users` rows in random order) instead of
    /// BatchPosts — the shape that manufactures genuine deadlock cycles.
    pub poke_pct: u32,
    /// Every Nth transaction is followed by an autocommit wall read
    /// (read/write interleaving through the cache); 0 disables.
    pub read_every: usize,
    /// Seed-data scale.
    pub seed: SeedConfig,
    /// RNG seed (per-thread streams derive from it).
    pub rng_seed: u64,
    /// Serialize every transaction on one global mutex — the engine's
    /// pre-row-lock behaviour, kept as the scaling baseline.
    pub single_lock: bool,
    /// Simulated application-server time (microseconds) spent between a
    /// transaction's statements — the round-trip window a real web stack
    /// has while its transaction is open. A global lock serializes this
    /// window across all clients; row locks overlap it. 0 disables.
    pub think_us: u64,
    /// Dedicated reader threads running read-only transactions (wall +
    /// user scans with an intra-transaction repeat-read consistency
    /// check) for as long as the writers run. 0 disables.
    pub reader_threads: usize,
    /// SELECT statements per reader transaction (at least 2: the first
    /// query is re-run at the end as the snapshot-consistency check).
    pub reads_per_reader_txn: usize,
    /// Legacy baseline: readers take table-level shared locks (and block
    /// behind writer transactions) instead of MVCC snapshot reads.
    pub reader_locking: bool,
    /// Pin every writer thread to its own scratch table (`shard_<t>`,
    /// created and seeded before the measured phase) instead of the
    /// shared social mix. With per-table latching, disjoint writers
    /// share nothing above the catalog read latch, so the run must show
    /// **zero table-latch waits** — the latch-sharding gate. Ignores
    /// `poke_pct` / `abort_pct` / `read_every`.
    pub disjoint_tables: bool,
    /// Force the pre-sharding engine shape: every statement and commit
    /// takes the catalog latch exclusively, exactly one statement in
    /// flight engine-wide. The measurable baseline latch sharding is
    /// compared against.
    pub serial_latch: bool,
    /// Cache-cluster shape for the deployment (servers, shards per
    /// server, hot-key replication). The default single-server shape
    /// keeps the legacy mixes unchanged; the cache-tier scenarios set
    /// multiple servers plus replication here.
    pub cluster: ClusterConfig,
    /// Percentage of interleaved cached reads aimed at a small fixed
    /// hot user set (users 1–4) instead of a uniform target — drives
    /// the hot-key detector so replication actually engages. 0 keeps
    /// the uniform legacy behaviour.
    pub hot_read_pct: u32,
    /// Kill one cache node when writer thread 0 is a third of the way
    /// through its transactions and revive it at two thirds — the
    /// failure/rejoin schedule. Requires `cluster.servers >= 2`; the
    /// post-run coherence sweep must still find zero violations.
    pub node_kill: bool,
    /// Run the deployment on a *durable* database: the write-ahead log
    /// lives in this directory (recreated from scratch at startup) and
    /// every commit in the mix pays for group-commit durability. `None`
    /// keeps the in-memory engine.
    pub wal_dir: Option<PathBuf>,
    /// Log-writer tuning for the durable run (ignored without
    /// `wal_dir`). Setting a small `checkpoint_every` makes fuzzy
    /// checkpoints fire concurrently with the writer mix.
    pub wal_config: WalConfig,
    /// Take a live crash image: when writer thread 0 is halfway through
    /// its transactions it copies the log directory here, byte-for-byte,
    /// while every other thread keeps committing — so the image's last
    /// frame is very possibly torn, exactly like a power cut. Requires
    /// `wal_dir`. The caller recovers from the copy and checks it.
    pub crash_copy_dir: Option<PathBuf>,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            threads: 4,
            txns_per_thread: 200,
            posts_per_txn: 4,
            abort_pct: 10,
            poke_pct: 20,
            read_every: 5,
            seed: SeedConfig::tiny(),
            rng_seed: 42,
            single_lock: false,
            think_us: 0,
            reader_threads: 0,
            reads_per_reader_txn: 4,
            reader_locking: false,
            disjoint_tables: false,
            serial_latch: false,
            cluster: ClusterConfig::default(),
            hot_read_pct: 0,
            node_kill: false,
            wal_dir: None,
            wal_config: WalConfig::default(),
            crash_copy_dir: None,
        }
    }
}

/// Outcome of one multi-writer run.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyResult {
    /// Writer threads used.
    pub threads: usize,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that rolled back on purpose (the abort mix).
    pub rolled_back: u64,
    /// Transactions aborted as deadlock victims.
    pub deadlock_aborts: u64,
    /// Transactions aborted by strict-mode lock timeouts or commit-time
    /// rejections.
    pub lock_aborts: u64,
    /// Transactions aborted first-updater-wins: another writer committed
    /// a newer version of a row this transaction's snapshot had read.
    /// A correctness feature, not an error — the caller retries on a
    /// fresh snapshot (the 2PL baseline would instead have silently
    /// serialized these through lock waits).
    pub write_conflicts: u64,
    /// Any other error (must stay zero).
    pub errors: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Committed + intentionally-rolled-back transactions per second.
    pub throughput_txns_per_sec: f64,
    /// Cached-object instances cross-checked after the run.
    pub checked_objects: u64,
    /// Instances whose cache content disagreed with the database.
    pub coherence_violations: u64,
    /// Lock-manager deadlock count (should equal `deadlock_aborts`
    /// plus `read_deadlocks`).
    pub lock_stats_deadlocks: u64,
    /// Lock acquisitions that blocked at least once.
    pub lock_waits: u64,
    /// Interleaved autocommit reads aborted as deadlock victims (the
    /// statement fails and is simply skipped; nothing to roll back).
    /// Zero under MVCC snapshot reads — readers take no locks.
    pub read_deadlocks: u64,
    /// Interleaved autocommit reads failing with any other error (must
    /// stay zero).
    pub read_errors: u64,
    /// Read-only transactions the dedicated reader threads completed.
    pub read_txns: u64,
    /// SELECT statements those transactions issued.
    pub read_stmts: u64,
    /// Reader transactions whose repeated query returned a different
    /// answer inside one transaction — a broken snapshot. Must be zero.
    pub snapshot_violations: u64,
    /// Reader transactions per wall-clock second of the measured phase.
    pub read_txns_per_sec: f64,
    /// Engine latch acquisitions (catalog or table level) that blocked
    /// at least once during the run.
    pub latch_waits: u64,
    /// The table-level subset of `latch_waits`. A disjoint-table run
    /// must report **zero**: threads pinned to different tables never
    /// meet on a per-table latch.
    pub latch_table_waits: u64,
    /// Cache nodes killed mid-run by the failure schedule.
    pub node_kills: u64,
    /// Killed nodes revived mid-run.
    pub node_revives: u64,
    /// Reads of replicated hot keys served by a non-primary copy.
    pub cache_replica_reads: u64,
    /// Keys the hot-key detector promoted to replicated during the run.
    pub cache_hot_promotions: u64,
    /// Redo records appended to the write-ahead log (durable runs only).
    pub wal_records: u64,
    /// Physical log syncs performed. Under group commit this is far
    /// smaller than `wal_records` — the amortization being measured.
    pub wal_syncs: u64,
    /// Leader batches written; `wal_records / wal_batches` is the
    /// achieved group-commit batch size.
    pub wal_batches: u64,
    /// Fuzzy checkpoints completed concurrently with the mix.
    pub wal_checkpoints: u64,
    /// True when the mid-run crash image landed in `crash_copy_dir`.
    pub crash_copy_taken: bool,
    /// Content digest of the quiescent post-run database — what a
    /// recovered crash image must reproduce (for the final, non-torn
    /// copy) and what `verify_coherence` already vouched for.
    pub content_digest: u64,
    /// Commit epoch of the quiescent post-run database.
    pub commit_epoch: u64,
    /// Per-operation-kind latency percentiles over the measured phase
    /// (wall-clock seconds, full sample sets — the closed-loop answer
    /// to "what did a transaction cost", not just aggregate
    /// throughput). Kinds with zero traffic are omitted.
    pub op_latencies: Vec<OpLatencySummary>,
}

/// Latency percentiles for one operation kind of the wall-clock mix,
/// computed from the full sample set after the run (the hot path only
/// appends to a per-thread `Vec`).
#[derive(Debug, Clone, Default)]
pub struct OpLatencySummary {
    /// Operation label (`batch_post`, `poke`, `disjoint`,
    /// `cached_read`, `reader_txn`).
    pub op: &'static str,
    /// Completed operations measured (any outcome).
    pub count: u64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
}

/// Operation labels, indexed by the sample tag used in the tallies.
const OP_LABELS: [&str; 5] = [
    "batch_post",
    "poke",
    "disjoint",
    "cached_read",
    "reader_txn",
];
const OP_BATCH_POST: usize = 0;
const OP_POKE: usize = 1;
const OP_DISJOINT: usize = 2;
const OP_CACHED_READ: usize = 3;
const OP_READER_TXN: usize = 4;

fn summarize_ops(samples: [Vec<f64>; 5]) -> Vec<OpLatencySummary> {
    let mut out = Vec::new();
    for (op, raw) in OP_LABELS.iter().zip(samples) {
        if raw.is_empty() {
            continue;
        }
        let mut p = genie_sim::Percentiles::new();
        for s in &raw {
            p.push(*s);
        }
        out.push(OpLatencySummary {
            op,
            count: p.len() as u64,
            mean_s: p.mean().unwrap_or(0.0),
            p50_s: p.percentile(50.0).unwrap_or(0.0),
            p95_s: p.percentile(95.0).unwrap_or(0.0),
            p99_s: p.percentile(99.0).unwrap_or(0.0),
            p999_s: p.percentile(99.9).unwrap_or(0.0),
        });
    }
    out
}

impl ConcurrencyResult {
    /// Transactions that terminated at all (any outcome).
    pub fn attempts(&self) -> u64 {
        self.committed
            + self.rolled_back
            + self.deadlock_aborts
            + self.lock_aborts
            + self.write_conflicts
            + self.errors
    }

    /// Fraction of attempts aborted by the engine's lock layer
    /// (deadlock victims + lock timeouts). First-updater-wins conflicts
    /// are tracked separately in [`ConcurrencyResult::conflict_rate`] —
    /// they are snapshot-isolation serialization failures, not lock
    /// thrashing.
    pub fn abort_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            (self.deadlock_aborts + self.lock_aborts) as f64 / a as f64
        }
    }

    /// Fraction of attempts aborted first-updater-wins.
    pub fn conflict_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            self.write_conflicts as f64 / a as f64
        }
    }
}

#[derive(Default)]
struct ThreadTally {
    committed: u64,
    rolled_back: u64,
    deadlock_aborts: u64,
    lock_aborts: u64,
    write_conflicts: u64,
    errors: u64,
    read_deadlocks: u64,
    read_errors: u64,
    node_kills: u64,
    node_revives: u64,
    crash_copy_taken: bool,
    /// `(op tag, seconds)` per completed operation; folded into
    /// [`OpLatencySummary`] rows after the join.
    latencies: Vec<(usize, f64)>,
}

/// Copies every file in `src` into `dst` (recreated), byte-for-byte.
/// Run against a *live* log directory this produces exactly what a
/// crash leaves behind: a prefix of the log, possibly cut mid-frame.
fn copy_live_dir(src: &std::path::Path, dst: &std::path::Path) -> std::io::Result<()> {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let p = entry?.path();
        if p.is_file() {
            std::fs::copy(&p, dst.join(p.file_name().unwrap()))?;
        }
    }
    Ok(())
}

#[derive(Default)]
struct ReaderTally {
    read_txns: u64,
    read_stmts: u64,
    snapshot_violations: u64,
    read_deadlocks: u64,
    read_errors: u64,
    latencies: Vec<f64>,
}

/// Runs one multi-writer configuration to completion and cross-checks
/// cache/database coherence afterwards.
///
/// # Errors
///
/// Deployment/seeding errors, and any database error from the post-run
/// coherence sweep. Per-transaction aborts are *counted*, not returned.
///
/// # Panics
///
/// Panics if a writer thread itself panics (engine invariant breakage).
pub fn run_concurrent(cfg: &ConcurrencyConfig) -> Result<ConcurrencyResult> {
    let app_cfg = AppConfig {
        seed: cfg.seed.clone(),
        strategy: Some(cachegenie::ConsistencyStrategy::UpdateInPlace),
        cluster: cfg.cluster.clone(),
        ..Default::default()
    };
    let env = match &cfg.wal_dir {
        Some(dir) => {
            let _ = std::fs::remove_dir_all(dir);
            let db = Database::create_durable(dir, app_cfg.db.clone(), cfg.wal_config)?;
            build_app_on(db, &app_cfg)?
        }
        None => build_app(&app_cfg)?,
    };
    assert!(
        cfg.crash_copy_dir.is_none() || cfg.wal_dir.is_some(),
        "crash_copy_dir needs wal_dir"
    );
    assert!(
        !cfg.node_kill || cfg.cluster.servers >= 2,
        "node_kill needs at least two cache servers"
    );
    env.db.set_reader_table_locks(cfg.reader_locking);
    env.db.set_serial_latch(cfg.serial_latch);
    let users = cfg.seed.users.max(2) as i64;
    let threads = cfg.threads.max(1);
    if cfg.disjoint_tables {
        // One scratch table per writer thread, seeded before the clock
        // starts. The measured phase then updates only `shard_<t>` from
        // thread `t`: per-table latches and row locks are provably
        // uncontended, so any table-latch wait is a sharding bug.
        for t in 0..threads {
            env.db.execute_sql(
                &format!("CREATE TABLE shard_{t} (id INT PRIMARY KEY, n INT NOT NULL)"),
                &[],
            )?;
            for id in 1..=SHARD_ROWS {
                env.db.execute_sql(
                    &format!("INSERT INTO shard_{t} (id, n) VALUES ($1, 0)"),
                    &[Value::Int(id)],
                )?;
            }
        }
    }
    // Readers share the start barrier so reads tallied against the
    // measured window cannot begin before the writers do.
    let barrier = Arc::new(Barrier::new(threads + cfg.reader_threads));
    let global = Arc::new(Mutex::new(()));
    let writers_done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Dedicated readers: read-only transactions scanning walls and
    // users for as long as the writers run. Each transaction re-runs
    // its first query before COMMIT — under a pinned snapshot the
    // answer must be identical no matter how many writers committed in
    // between.
    let reader_handles: Vec<std::thread::JoinHandle<ReaderTally>> = (0..cfg.reader_threads)
        .map(|t| {
            let db = env.db.clone();
            let done = Arc::clone(&writers_done);
            let barrier = Arc::clone(&barrier);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.rng_seed.wrapping_add(0x9d1d + t as u64));
                let mut tally = ReaderTally::default();
                barrier.wait();
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let wall = rng.gen_range(1..=users as usize) as i64;
                    let t0 = Instant::now();
                    match reader_txn(&db, wall, cfg.reads_per_reader_txn) {
                        Ok((stmts, consistent)) => {
                            tally.latencies.push(t0.elapsed().as_secs_f64());
                            tally.read_txns += 1;
                            tally.read_stmts += stmts;
                            if !consistent {
                                tally.snapshot_violations += 1;
                            }
                        }
                        Err(StorageError::Deadlock { .. }) => tally.read_deadlocks += 1,
                        Err(_) => tally.read_errors += 1,
                    }
                }
                tally
            })
        })
        .collect();

    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<ThreadTally>> = (0..threads)
        .map(|t| {
            let app = env.app.clone();
            let db = env.db.clone();
            let cluster = env.genie.cluster().clone();
            let barrier = Arc::clone(&barrier);
            let global = Arc::clone(&global);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.rng_seed.wrapping_add(t as u64 * 6151));
                let mut tally = ThreadTally::default();
                barrier.wait();
                for i in 0..cfg.txns_per_thread {
                    // Deterministic failure schedule, driven by thread 0's
                    // own progress: node 1 dies a third of the way in and
                    // rejoins at two thirds, while every other thread keeps
                    // hammering the cluster through both transitions.
                    if cfg.node_kill && t == 0 {
                        if i == cfg.txns_per_thread / 3 && cluster.kill_node(1) {
                            tally.node_kills += 1;
                        }
                        if i == 2 * cfg.txns_per_thread / 3 && cluster.revive_node(1) {
                            tally.node_revives += 1;
                        }
                    }
                    // Mid-run crash image: copy the live log directory
                    // while every other thread keeps committing into it.
                    if t == 0 && i == cfg.txns_per_thread / 2 {
                        if let (Some(src), Some(dst)) = (&cfg.wal_dir, &cfg.crash_copy_dir) {
                            copy_live_dir(src, dst).expect("crash image copy failed");
                            tally.crash_copy_taken = true;
                        }
                    }
                    // The baseline holds one global mutex across the whole
                    // transaction — exactly the old engine-wide lock.
                    let _serial = cfg.single_lock.then(|| global.lock().unwrap());
                    let wall = rng.gen_range(1..=users as usize) as i64;
                    let sender = rng.gen_range(1..=users as usize) as i64;
                    let think = || {
                        if cfg.think_us > 0 {
                            std::thread::sleep(Duration::from_micros(cfg.think_us));
                        } else {
                            std::thread::yield_now();
                        }
                    };
                    let txn_start = Instant::now();
                    let (op, outcome) = if cfg.disjoint_tables {
                        (
                            OP_DISJOINT,
                            disjoint_txn(&db, t, &mut rng, cfg.posts_per_txn, i as i64, &think),
                        )
                    } else if rng.gen_range(0..100u32) < cfg.poke_pct {
                        (OP_POKE, poke_pair(&db, wall, sender, i as i64, &think))
                    } else {
                        let abort = rng.gen_range(0..100u32) < cfg.abort_pct;
                        (
                            OP_BATCH_POST,
                            app.post_wall_batch_paced(
                                wall,
                                sender,
                                cfg.posts_per_txn,
                                abort,
                                &think,
                            )
                            .map(|_| !abort),
                        )
                    };
                    tally
                        .latencies
                        .push((op, txn_start.elapsed().as_secs_f64()));
                    match outcome {
                        Ok(true) => tally.committed += 1,
                        Ok(false) => tally.rolled_back += 1,
                        Err(StorageError::Deadlock { .. }) => tally.deadlock_aborts += 1,
                        Err(StorageError::WriteConflict { .. }) => tally.write_conflicts += 1,
                        Err(StorageError::TransactionAborted(_))
                        | Err(StorageError::LockTimeout { .. }) => tally.lock_aborts += 1,
                        Err(_) => tally.errors += 1,
                    }
                    drop(_serial);
                    if !cfg.disjoint_tables && cfg.read_every > 0 && i % cfg.read_every == 0 {
                        // Autocommit cached read interleaving with other
                        // threads' open transactions. A multi-table read
                        // can itself be chosen as a deadlock victim;
                        // anything else failing is a real bug, so tally
                        // instead of swallowing.
                        // Skewing the read target onto a tiny hot set
                        // pushes those users' cached objects over the
                        // hot-key threshold, so the run exercises
                        // replication, not just the primary path.
                        let target = if rng.gen_range(0..100u32) < cfg.hot_read_pct {
                            rng.gen_range(1..=4.min(users) as usize) as i64
                        } else {
                            sender
                        };
                        let read_start = Instant::now();
                        match app.lookup_bm(target) {
                            Ok(_) => tally
                                .latencies
                                .push((OP_CACHED_READ, read_start.elapsed().as_secs_f64())),
                            Err(StorageError::Deadlock { .. }) => tally.read_deadlocks += 1,
                            Err(_) => tally.read_errors += 1,
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut result = ConcurrencyResult {
        threads,
        ..Default::default()
    };
    let mut op_samples: [Vec<f64>; 5] = Default::default();
    for h in handles {
        let t = h.join().expect("writer thread panicked");
        for (op, secs) in &t.latencies {
            op_samples[*op].push(*secs);
        }
        result.committed += t.committed;
        result.rolled_back += t.rolled_back;
        result.deadlock_aborts += t.deadlock_aborts;
        result.lock_aborts += t.lock_aborts;
        result.write_conflicts += t.write_conflicts;
        result.errors += t.errors;
        result.read_deadlocks += t.read_deadlocks;
        result.read_errors += t.read_errors;
        result.node_kills += t.node_kills;
        result.node_revives += t.node_revives;
        result.crash_copy_taken |= t.crash_copy_taken;
    }
    result.elapsed = start.elapsed();
    writers_done.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in reader_handles {
        let t = h.join().expect("reader thread panicked");
        op_samples[OP_READER_TXN].extend_from_slice(&t.latencies);
        result.read_txns += t.read_txns;
        result.read_stmts += t.read_stmts;
        result.snapshot_violations += t.snapshot_violations;
        result.read_deadlocks += t.read_deadlocks;
        result.read_errors += t.read_errors;
    }
    let done = result.committed + result.rolled_back;
    result.throughput_txns_per_sec = if result.elapsed.as_secs_f64() > 0.0 {
        done as f64 / result.elapsed.as_secs_f64()
    } else {
        0.0
    };
    result.read_txns_per_sec = if result.elapsed.as_secs_f64() > 0.0 {
        result.read_txns as f64 / result.elapsed.as_secs_f64()
    } else {
        0.0
    };
    let locks = env.db.lock_stats();
    result.lock_stats_deadlocks = locks.deadlocks;
    result.lock_waits = locks.waits;
    let latches = env.db.latch_stats();
    result.latch_waits = latches.total_waits();
    result.latch_table_waits = latches.table_waits();
    let gs = env.genie.stats();
    result.cache_replica_reads = gs.cache_replica_reads;
    result.cache_hot_promotions = gs.cache_hot_promotions;
    // If the schedule killed a node and the revive point was never
    // reached (tiny txns_per_thread), bring it back before the sweep:
    // coherence is defined over the fully-alive cluster.
    if cfg.node_kill {
        let cluster = env.genie.cluster();
        for idx in 0..cfg.cluster.servers {
            if !cluster.is_alive(idx) && cluster.revive_node(idx) {
                result.node_revives += 1;
            }
        }
    }

    // Post-run cross-check on the quiescent system: every cached object
    // the mix can have touched, for every user.
    let per_user = [
        "latest_wall_posts",
        "wall_post_count",
        "user_by_id",
        "profile_by_user",
        "friends_of_user",
        "friend_count",
        "user_bookmark_count",
    ];
    for user in 1..=users {
        let params = [Value::Int(user)];
        for name in per_user {
            result.checked_objects += 1;
            if !env.genie.verify_coherence(name, &params)? {
                result.coherence_violations += 1;
            }
        }
    }
    if let Some(ws) = env.db.wal_stats() {
        result.wal_records = ws.records;
        result.wal_syncs = ws.syncs;
        result.wal_batches = ws.batches;
        result.wal_checkpoints = ws.checkpoints;
    }
    result.content_digest = env.db.content_digest();
    result.commit_epoch = env.db.commit_epoch();
    result.op_latencies = summarize_ops(op_samples);
    Ok(result)
}

/// A two-row "poke" transaction: updates both users' `last_login` in
/// caller-chosen order. Opposite-order pairs on different threads form
/// waits-for cycles — the deadlock-detection workload. On any error the
/// transaction is rolled back and the error returned for tallying.
fn poke_pair(
    db: &genie_storage::Database,
    a: i64,
    b: i64,
    seq: i64,
    pace: &dyn Fn(),
) -> Result<bool> {
    db.execute_sql("BEGIN", &[])?;
    let run = (|| {
        db.execute_sql(
            "UPDATE users SET last_login = $1 WHERE id = $2",
            &[Value::Timestamp(1_000_000 + seq), Value::Int(a)],
        )?;
        // Application work between the two statements: without this
        // window the lock-hold time is so short that cycles almost never
        // form and the deadlock detector sits idle.
        pace();
        db.execute_sql(
            "UPDATE users SET last_login = $1 WHERE id = $2",
            &[Value::Timestamp(1_000_000 + seq), Value::Int(b)],
        )?;
        Ok(())
    })();
    match run {
        Ok(()) => {
            db.execute_sql("COMMIT", &[])?;
            Ok(true)
        }
        Err(e) => {
            let _ = db.execute_sql("ROLLBACK", &[]);
            Err(e)
        }
    }
}

/// One disjoint-table transaction: `updates` single-row UPDATEs against
/// this thread's own `shard_<t>` table, with application think time
/// between statements. No other thread ever touches this table, so the
/// only shared structures on the hot path are the catalog read latch
/// and the commit epoch — the shape that isolates latch-sharding
/// scaling from row-lock contention. On any error the transaction is
/// rolled back and the error returned for tallying.
fn disjoint_txn(
    db: &genie_storage::Database,
    shard: usize,
    rng: &mut StdRng,
    updates: usize,
    seq: i64,
    pace: &dyn Fn(),
) -> Result<bool> {
    let sql = format!("UPDATE shard_{shard} SET n = $1 WHERE id = $2");
    db.execute_sql("BEGIN", &[])?;
    let run = (|| {
        for _ in 0..updates.max(1) {
            let id = rng.gen_range(1..=SHARD_ROWS);
            db.execute_sql(&sql, &[Value::Int(seq), Value::Int(id)])?;
            pace();
        }
        Ok(())
    })();
    match run {
        Ok(()) => {
            db.execute_sql("COMMIT", &[])?;
            Ok(true)
        }
        Err(e) => {
            let _ = db.execute_sql("ROLLBACK", &[]);
            Err(e)
        }
    }
}

/// One read-only analytics transaction: counts a wall's posts, pages
/// through users, then re-runs the first count before COMMIT. Returns
/// `(statements issued, snapshot consistent)` — under MVCC the repeated
/// count must be identical however many writers committed in between,
/// because both reads resolve against the transaction's pinned
/// snapshot. On any error the transaction is rolled back and the error
/// returned for tallying.
fn reader_txn(db: &genie_storage::Database, wall: i64, stmts: usize) -> Result<(u64, bool)> {
    db.execute_sql("BEGIN", &[])?;
    let run = (|| {
        let mut issued = 0u64;
        let count_sql = "SELECT COUNT(*) FROM wall_posts WHERE user_id = $1";
        let first = db.execute_sql(count_sql, &[Value::Int(wall)])?;
        issued += 1;
        for i in 0..stmts.saturating_sub(2) {
            db.execute_sql(
                "SELECT id, last_login FROM users WHERE id = $1",
                &[Value::Int(wall + i as i64)],
            )?;
            issued += 1;
        }
        let again = db.execute_sql(count_sql, &[Value::Int(wall)])?;
        issued += 1;
        Ok((issued, first.result.rows == again.result.rows))
    })();
    match run {
        Ok(r) => {
            db.execute_sql("COMMIT", &[])?;
            Ok(r)
        }
        Err(e) => {
            let _ = db.execute_sql("ROLLBACK", &[]);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(threads: usize, single_lock: bool) -> ConcurrencyConfig {
        ConcurrencyConfig {
            threads,
            txns_per_thread: 40,
            single_lock,
            ..Default::default()
        }
    }

    #[test]
    fn four_writers_complete_with_zero_violations() {
        let r = run_concurrent(&small(4, false)).unwrap();
        assert_eq!(r.errors, 0, "unexpected errors: {r:?}");
        assert!(r.committed > 0);
        assert_eq!(r.coherence_violations, 0, "stale cache entries: {r:?}");
        assert!(r.checked_objects > 0);
    }

    #[test]
    fn single_lock_baseline_still_coherent() {
        let r = run_concurrent(&small(3, true)).unwrap();
        assert_eq!(r.errors, 0);
        assert_eq!(r.coherence_violations, 0);
        // The global mutex serializes whole transactions: the engine can
        // never even see a conflict, so nothing ever aborts.
        assert_eq!(r.deadlock_aborts + r.lock_aborts, 0);
    }

    #[test]
    fn deadlocks_are_detected_not_hung() {
        let cfg = ConcurrencyConfig {
            threads: 4,
            txns_per_thread: 60,
            poke_pct: 100, // all two-row pokes: cycles guaranteed
            seed: SeedConfig {
                users: 4, // tiny key space maximizes collisions
                ..SeedConfig::tiny()
            },
            ..Default::default()
        };
        let r = run_concurrent(&cfg).unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert!(r.committed > 0, "progress despite contention: {r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
        assert_eq!(
            r.deadlock_aborts + r.read_deadlocks,
            r.lock_stats_deadlocks,
            "every lock-manager victim surfaced as one aborted txn or read: {r:?}"
        );
    }

    #[test]
    fn disjoint_tables_show_zero_table_latch_waits() {
        let cfg = ConcurrencyConfig {
            threads: 4,
            txns_per_thread: 50,
            posts_per_txn: 3,
            think_us: 20,
            ..Default::default()
        };
        let r = run_concurrent(&ConcurrencyConfig {
            disjoint_tables: true,
            ..cfg
        })
        .unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert_eq!(r.committed, 4 * 50, "every disjoint txn commits: {r:?}");
        assert_eq!(
            r.latch_table_waits, 0,
            "threads pinned to disjoint tables must never meet on a table latch: {r:?}"
        );
        assert_eq!(r.lock_stats_deadlocks, 0, "{r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
    }

    #[test]
    fn serial_latch_baseline_still_correct() {
        let r = run_concurrent(&ConcurrencyConfig {
            threads: 3,
            txns_per_thread: 30,
            serial_latch: true,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert!(r.committed > 0);
        assert_eq!(r.coherence_violations, 0, "{r:?}");
    }

    #[test]
    fn cache_mix_survives_node_kill_and_rejoin() {
        let cfg = ConcurrencyConfig {
            threads: 3,
            txns_per_thread: 60,
            read_every: 1,    // cache-heavy: a cached read after every txn
            hot_read_pct: 80, // skewed onto users 1-4 to trip promotion
            node_kill: true,
            cluster: ClusterConfig {
                servers: 4,
                hot_key_replicas: 2,
                hot_key_threshold: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_concurrent(&cfg).unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert_eq!(r.read_errors, 0, "{r:?}");
        assert_eq!(
            r.node_kills, 1,
            "schedule killed node 1 exactly once: {r:?}"
        );
        assert_eq!(r.node_revives, 1, "and revived it exactly once: {r:?}");
        assert!(
            r.cache_hot_promotions > 0,
            "the skewed read mix must promote at least one hot key: {r:?}"
        );
        assert_eq!(
            r.coherence_violations, 0,
            "kill/rejoin must not leave stale cache state: {r:?}"
        );
    }

    #[test]
    fn durable_mix_survives_a_mid_run_crash_image() {
        let base = std::env::temp_dir().join(format!("genie-conc-wal-{}", std::process::id()));
        let wal_dir = base.join("live");
        let copy_dir = base.join("crash");
        let cfg = ConcurrencyConfig {
            threads: 4,
            txns_per_thread: 60,
            wal_dir: Some(wal_dir.clone()),
            crash_copy_dir: Some(copy_dir.clone()),
            wal_config: WalConfig {
                checkpoint_every: 64, // fuzzy checkpoints fire mid-mix
                ..WalConfig::default()
            },
            ..Default::default()
        };
        let r = run_concurrent(&cfg).unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert_eq!(r.coherence_violations, 0, "{r:?}");
        assert!(r.crash_copy_taken, "{r:?}");
        assert!(r.wal_records > 0, "{r:?}");
        assert!(
            r.wal_syncs <= r.wal_records,
            "syncs cannot exceed records: {r:?}"
        );
        assert!(r.wal_checkpoints > 0, "auto-checkpoint never fired: {r:?}");

        // The torn mid-run image recovers to *some committed prefix*…
        let (torn, report) = Database::open_with(
            &copy_dir,
            genie_storage::DbConfig::default(),
            cfg.wal_config,
        )
        .unwrap();
        assert!(torn.commit_epoch() <= r.commit_epoch);
        assert!(report.recovered_epoch > 0, "image recovered nothing");
        drop(torn);
        // …and the final, quiescent directory recovers to the exact
        // post-run state the coherence sweep verified.
        let recovered = Database::open_with_recovery(&wal_dir).unwrap();
        assert_eq!(recovered.commit_epoch(), r.commit_epoch);
        assert_eq!(recovered.content_digest(), r.content_digest);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn snapshot_readers_never_block_never_deadlock_never_tear() {
        let cfg = ConcurrencyConfig {
            threads: 2,
            txns_per_thread: 60,
            reader_threads: 2,
            reads_per_reader_txn: 4,
            think_us: 50, // writers hold row locks across real time
            ..Default::default()
        };
        let r = run_concurrent(&cfg).unwrap();
        assert_eq!(r.errors, 0, "{r:?}");
        assert!(r.read_txns > 0, "readers made progress: {r:?}");
        assert_eq!(
            r.read_deadlocks, 0,
            "lock-free readers cannot deadlock: {r:?}"
        );
        assert_eq!(r.read_errors, 0, "{r:?}");
        assert_eq!(
            r.snapshot_violations, 0,
            "repeated reads inside one txn must agree: {r:?}"
        );
        assert_eq!(r.coherence_violations, 0, "{r:?}");
    }
}
