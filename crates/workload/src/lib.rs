//! # genie-workload
//!
//! The benchmark harness of the CacheGenie reproduction: workload
//! generation (sessions, the 50:30:10:10 action mix, Zipf user
//! popularity), a cost model calibrated to the paper's §5.3
//! microbenchmarks, and a virtual-time driver that executes pages
//! functionally against the real stack while charging their physical
//! costs to contended simulated resources.
//!
//! One call runs one configuration:
//!
//! ```
//! use genie_workload::{run, WorkloadConfig, CacheMode};
//!
//! # fn main() -> Result<(), genie_storage::StorageError> {
//! let result = run(&WorkloadConfig {
//!     mode: CacheMode::Update,
//!     ..WorkloadConfig::smoke()
//! })?;
//! assert!(result.throughput_pages_per_sec > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cache_scale;
pub mod concurrent;
pub mod costmodel;
pub mod driver;
pub mod metrics;
pub mod serve;
pub mod spec;

pub use cache_scale::{run_cache_scale, CacheScaleConfig, CacheScaleResult};
pub use concurrent::{run_concurrent, ConcurrencyConfig, ConcurrencyResult, OpLatencySummary};
pub use costmodel::CostParams;
pub use driver::run;
pub use metrics::{PageTypeMetrics, RunResult};
pub use serve::{run_serve, ServeConfig, ServePageSummary, ServeResult};
pub use spec::{CacheMode, PageKind, PageMix, WorkloadConfig};
