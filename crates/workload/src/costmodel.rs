//! The cost model: physical operation counts → simulated service time.
//!
//! Parameters are calibrated against the paper's §5.3 microbenchmarks on
//! its 2011 testbed:
//!
//! * a memcached operation costs ~**0.2 ms**;
//! * a simple B+Tree database lookup is **10–25×** a cache lookup;
//! * a plain `INSERT` takes ~**6.3 ms**; with a no-op trigger **6.5 ms**;
//! * a trigger that opens a remote memcached connection doubles the
//!   `INSERT` to **11.9 ms** (connection ≈ 5.4 ms);
//! * each memcached operation inside a trigger adds ~**0.2 ms**.
//!
//! The defaults below reproduce those figures (see this module's tests),
//! and the page-level charges they produce drive the DES resources in
//! [`crate::driver`].

use genie_sim::SimDuration;
use genie_storage::CostReport;

/// Tunable per-operation costs, in milliseconds.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Fixed cost of a SELECT reaching the database (parse/plan/RTT).
    pub select_fixed_ms: f64,
    /// Fixed cost of a write statement reaching the database.
    pub write_fixed_ms: f64,
    /// CPU per row visited by scans.
    pub per_row_scanned_ms: f64,
    /// CPU per B-tree probe.
    pub per_index_probe_ms: f64,
    /// CPU per row fed into a sort.
    pub per_sort_row_ms: f64,
    /// CPU per row returned to the client.
    pub per_row_returned_ms: f64,
    /// CPU per row inserted/updated/deleted.
    pub per_row_written_ms: f64,
    /// WAL fsync per autocommitted write statement.
    pub wal_append_ms: f64,
    /// Disk read per buffer-pool page miss.
    pub disk_page_read_ms: f64,
    /// Disk write per dirty-page writeback.
    pub disk_page_write_ms: f64,
    /// Fixed dispatch cost per trigger firing (the 6.3 → 6.5 ms delta).
    pub trigger_fixed_ms: f64,
    /// Opening a remote cache connection from a trigger (the 6.5 → 11.9 ms
    /// doubling the paper measured).
    pub trigger_connection_ms: f64,
    /// One cache (memcached-like) operation, from anywhere.
    pub cache_op_ms: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            select_fixed_ms: 2.0,
            write_fixed_ms: 2.0,
            per_row_scanned_ms: 0.09,
            per_index_probe_ms: 0.1,
            per_sort_row_ms: 0.005,
            per_row_returned_ms: 0.05,
            per_row_written_ms: 1.0,
            wal_append_ms: 3.1,
            disk_page_read_ms: 6.0,
            disk_page_write_ms: 6.0,
            trigger_fixed_ms: 0.2,
            trigger_connection_ms: 5.4,
            cache_op_ms: 0.2,
        }
    }
}

/// Simulated service demands of one page load, split by resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCharge {
    /// Time the database backend (CPU) is occupied — includes trigger
    /// bodies, which run inside the write statement.
    pub db_cpu: SimDuration,
    /// Time the database's disk is occupied.
    pub db_disk: SimDuration,
    /// Time the cache servers are occupied.
    pub cache: SimDuration,
}

impl PageCharge {
    /// Total serial latency contribution.
    pub fn total(&self) -> SimDuration {
        self.db_cpu + self.db_disk + self.cache
    }
}

impl CostParams {
    /// Prices one page: `cost` is the page's aggregate database cost
    /// report, `db_reads` the number of read statements that actually hit
    /// the database, `writes` the number of write statements, and
    /// `client_cache_ops` the cache operations issued by the read path.
    pub fn page_charge(
        &self,
        cost: &CostReport,
        db_reads: u64,
        writes: u64,
        client_cache_ops: u64,
    ) -> PageCharge {
        let cpu_ms = db_reads as f64 * self.select_fixed_ms
            + writes as f64 * self.write_fixed_ms
            + (cost.rows_scanned + cost.trigger_rows_scanned) as f64 * self.per_row_scanned_ms
            + cost.index_probes as f64 * self.per_index_probe_ms
            + cost.sort_rows as f64 * self.per_sort_row_ms
            + cost.rows_returned as f64 * self.per_row_returned_ms
            + cost.rows_written as f64 * self.per_row_written_ms
            + cost.triggers_fired as f64 * self.trigger_fixed_ms
            + cost.trigger_connections as f64 * self.trigger_connection_ms
            // Trigger cache round trips block the DB backend.
            + cost.trigger_cache_ops as f64 * self.cache_op_ms;
        let disk_ms = cost.page_misses as f64 * self.disk_page_read_ms
            + cost.page_writebacks as f64 * self.disk_page_write_ms
            + cost.wal_appends as f64 * self.wal_append_ms;
        let cache_ms = (client_cache_ops + cost.trigger_cache_ops) as f64 * self.cache_op_ms;
        PageCharge {
            db_cpu: SimDuration::from_millis_f64(cpu_ms),
            db_disk: SimDuration::from_millis_f64(disk_ms),
            cache: SimDuration::from_millis_f64(cache_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A warm plain INSERT (one row, one FK probe, WAL, no trigger).
    fn plain_insert() -> CostReport {
        CostReport {
            rows_written: 1,
            index_probes: 1,
            page_hits: 2,
            wal_appends: 1,
            ..Default::default()
        }
    }

    #[test]
    fn insert_costs_match_paper_microbench() {
        let p = CostParams::default();
        let plain = p.page_charge(&plain_insert(), 0, 1, 0);
        let total = plain.total().as_millis_f64();
        assert!(
            (6.0..6.6).contains(&total),
            "plain INSERT should be ~6.3 ms, got {total}"
        );

        // No-op trigger adds ~0.2 ms.
        let mut with_noop = plain_insert();
        with_noop.triggers_fired = 1;
        let noop = p.page_charge(&with_noop, 0, 1, 0).total().as_millis_f64();
        assert!(
            ((total + 0.15)..(total + 0.25)).contains(&noop),
            "no-op trigger adds ~0.2 ms: {noop} vs {total}"
        );

        // A trigger opening a remote connection roughly doubles it.
        let mut with_conn = with_noop;
        with_conn.trigger_connections = 1;
        let conn = p.page_charge(&with_conn, 0, 1, 0).total().as_millis_f64();
        assert!(
            (11.3..12.3).contains(&conn),
            "connection-opening trigger should be ~11.9 ms, got {conn}"
        );

        // Each cache op inside the trigger adds ~0.2 ms.
        let mut with_ops = with_conn;
        with_ops.trigger_cache_ops = 2;
        let ops = p.page_charge(&with_ops, 0, 1, 0).total().as_millis_f64();
        // Charged on both the DB backend and the cache server: 2 × 0.2 × 2.
        assert!((ops - conn - 0.8).abs() < 1e-6, "{ops} vs {conn}");
    }

    #[test]
    fn db_lookup_vs_cache_op_ratio_in_paper_band() {
        let p = CostParams::default();
        let lookup = CostReport {
            rows_scanned: 1,
            rows_returned: 1,
            index_probes: 1,
            page_hits: 1,
            ..Default::default()
        };
        let db_ms = p.page_charge(&lookup, 1, 0, 0).total().as_millis_f64();
        let ratio = db_ms / p.cache_op_ms;
        assert!(
            (10.0..=25.0).contains(&ratio),
            "paper: simple DB lookup is 10-25x a cache op; got {ratio:.1}x"
        );
    }

    #[test]
    fn disk_charges_go_to_disk_resource() {
        let p = CostParams::default();
        let cost = CostReport {
            page_misses: 3,
            page_writebacks: 1,
            wal_appends: 2,
            ..Default::default()
        };
        let charge = p.page_charge(&cost, 0, 0, 0);
        let expect = 3.0 * 6.0 + 6.0 + 2.0 * 3.1;
        assert!((charge.db_disk.as_millis_f64() - expect).abs() < 1e-9);
        assert_eq!(charge.cache, SimDuration::ZERO);
    }

    #[test]
    fn client_cache_ops_occupy_cache_only() {
        let p = CostParams::default();
        let charge = p.page_charge(&CostReport::default(), 0, 0, 5);
        assert_eq!(charge.db_cpu, SimDuration::ZERO);
        assert!((charge.cache.as_millis_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cached_read_page_is_cheaper_than_db_read_page() {
        let p = CostParams::default();
        // Ten reads all hitting cache (one op each) vs ten DB point reads.
        let cached = p.page_charge(&CostReport::default(), 0, 0, 10).total();
        let db_cost = CostReport {
            rows_scanned: 10,
            rows_returned: 10,
            index_probes: 10,
            page_hits: 10,
            ..Default::default()
        };
        let plain = p.page_charge(&db_cost, 10, 0, 0).total();
        assert!(cached < plain / 5, "cached {cached} vs db {plain}");
    }
}
