//! The benchmark driver: closed-loop clients in virtual time.
//!
//! Pages execute *functionally* against the real storage engine, cache,
//! and middleware (real rows, real triggers, real hit/miss behaviour);
//! their physical cost reports are priced by the [`crate::costmodel`] and
//! charged against contended [`genie_sim::Resource`]s (DB CPU, DB disk,
//! cache servers). Throughput and latency are read off the virtual clock,
//! reproducing the paper's saturation behaviour deterministically.
//!
//! Clients advance in smallest-local-time order (activity scanning), so
//! functional execution order tracks virtual time.

use crate::metrics::{PageTypeMetrics, RunResult};
use crate::spec::{CacheMode, PageKind, WorkloadConfig};
use cachegenie::ConsistencyStrategy;
use genie_cache::ClusterConfig;
use genie_sim::{Resource, SimTime, Zipf};
use genie_social::{build_app, AppConfig, AppEnv, PageStats};
use genie_storage::{DbConfig, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

struct Client {
    id: usize,
    now: SimTime,
    rng: StdRng,
    /// Sessions still to run (warm-up + measured).
    sessions_left: usize,
    /// Steps of the current session: None = must start a new session.
    session: Option<SessionState>,
}

struct SessionState {
    user: i64,
    /// Remaining action pages before logout.
    pages_left: usize,
    logged_in: bool,
}

/// Runs one workload configuration to completion.
///
/// # Errors
///
/// Propagates application/database errors (the workload itself is
/// designed not to violate constraints).
pub fn run(config: &WorkloadConfig) -> Result<RunResult> {
    let env = deploy(config)?;
    if !config.triggers_enabled {
        // Experiment 5's "ideal" system: same queries, no consistency
        // maintenance. Cached reads may be stale; the paper argues this
        // still bounds the achievable throughput.
        env.db.set_triggers_enabled(false);
    }

    let mut db_cpu = Resource::new("db_cpu", 1);
    let mut db_disk = Resource::new("db_disk", 1);
    let mut cache_srv = Resource::new("cache", config.cache_servers.max(1));

    // The paper distributes SESSIONS over users with p(x) = x^-a / ζ(a):
    // a user's session count is zipf-distributed, so a LOWER exponent
    // means a fatter tail — a few users log in very often and repeat
    // traffic rises (that is why Figure 3b's cached curves fall as `a`
    // rises). Order statistics of that model give the k-th most active
    // user a session share ∝ k^(-1/(a-1)); we use those deterministic
    // rank weights directly (sampling 400 counts would make the tail —
    // and thus the whole experiment — a coin flip on a few draws).
    let users = config.seed.users.max(1);
    let rank_exponent = (1.0 / (config.zipf_a - 1.0).max(0.1)).min(12.0);
    let rank_weights = Zipf::new(users, rank_exponent);
    let mut cumulative: Vec<f64> = Vec::with_capacity(users);
    let mut total_weight = 0.0f64;
    for rank in 1..=users {
        total_weight += rank_weights.pmf(rank);
        cumulative.push(total_weight);
    }
    let draw_user = |rng: &mut StdRng| -> i64 {
        let roll: f64 = rng.gen_range(0.0..total_weight.max(f64::MIN_POSITIVE));
        (cumulative.partition_point(|&c| c <= roll) + 1).min(users) as i64
    };
    let total_sessions = config.sessions_per_client + config.warmup_sessions_per_client;
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    let mut clients: Vec<Client> = (0..config.clients)
        .map(|id| Client {
            id,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.rng_seed.wrapping_add(id as u64 * 7919)),
            sessions_left: total_sessions,
            session: None,
        })
        .collect();
    for c in &clients {
        heap.push(Reverse((c.now, c.id)));
    }

    let mut metrics: BTreeMap<PageKind, PageTypeMetrics> = BTreeMap::new();
    let mut measure_start: Option<SimTime> = None;
    let mut measured_pages: u64 = 0;
    let mut warmup_done_at = SimTime::ZERO;

    while let Some(Reverse((_, id))) = heap.pop() {
        let c = &mut clients[id];
        if c.sessions_left == 0 && c.session.is_none() {
            continue;
        }
        // Advance the cache's TTL clock to this client's time.
        env.cluster.set_now(c.now.as_nanos());

        // Decide the next page.
        let (kind, user) = match &mut c.session {
            None => {
                c.sessions_left -= 1;
                let user = draw_user(&mut c.rng);
                c.session = Some(SessionState {
                    user,
                    pages_left: config.pages_per_session,
                    logged_in: false,
                });
                (PageKind::Login, user)
            }
            Some(s) if !s.logged_in => {
                // Defensive: login happens on session creation.
                s.logged_in = true;
                (PageKind::Login, s.user)
            }
            Some(s) if s.pages_left > 0 => {
                s.pages_left -= 1;
                (draw_page(&config.mix, &mut c.rng), s.user)
            }
            Some(s) => {
                let user = s.user;
                c.session = None;
                (PageKind::Logout, user)
            }
        };
        if kind == PageKind::Login {
            if let Some(s) = &mut c.session {
                s.logged_in = true;
            }
        }

        // Execute the page functionally.
        let stats = execute_page(&env, kind, user, config, &mut c.rng)?;

        // Price it and advance virtual time through the resources.
        let db_reads = (stats.queries - stats.writes).saturating_sub(stats.cache_hit_queries);
        let charge =
            config
                .cost
                .page_charge(&stats.db_cost, db_reads, stats.writes, stats.cache_ops);
        let start = c.now;
        let mut t = start;
        let (cpu_demand, cache_demand) = if config.colocated_cache {
            // memcached shares the DB box: its work occupies the DB CPU.
            (charge.db_cpu + charge.cache, genie_sim::SimDuration::ZERO)
        } else {
            (charge.db_cpu, charge.cache)
        };
        if !cpu_demand.is_zero() {
            t = db_cpu.acquire(t, cpu_demand).end;
        }
        if !charge.db_disk.is_zero() {
            t = db_disk.acquire(t, charge.db_disk).end;
        }
        if !cache_demand.is_zero() {
            t = cache_srv.acquire(t, cache_demand).end;
        }
        let latency = t - start;
        c.now = t;

        // Warm-up bookkeeping: a client is "measured" once it has consumed
        // its warm-up sessions.
        let in_warmup =
            c.sessions_left + usize::from(c.session.is_some()) > config.sessions_per_client;
        if in_warmup {
            warmup_done_at = warmup_done_at.max(t);
        } else {
            if measure_start.is_none() {
                measure_start = Some(start);
                // Reset counters at the measurement boundary so hit ratios
                // and utilization reflect steady state.
                env.db.reset_stats();
                env.cluster.reset_stats();
                env.genie.reset_stats();
                db_cpu.reset_stats();
                db_disk.reset_stats();
                cache_srv.reset_stats();
            }
            measured_pages += 1;
            metrics.entry(kind).or_default().push(latency);
        }

        if c.sessions_left > 0 || c.session.is_some() {
            heap.push(Reverse((c.now, c.id)));
        }
    }

    let end = clients
        .iter()
        .map(|c| c.now)
        .fold(SimTime::ZERO, SimTime::max);
    let measure_start = measure_start.unwrap_or(warmup_done_at);
    let duration = end.saturating_since(measure_start);
    let horizon = SimTime::ZERO + duration;

    Ok(RunResult {
        mode: config.mode,
        pages_completed: measured_pages,
        duration,
        throughput_pages_per_sec: if duration.as_secs_f64() > 0.0 {
            measured_pages as f64 / duration.as_secs_f64()
        } else {
            0.0
        },
        per_page: metrics,
        cache_stats: env.cluster.stats(),
        per_server: env.cluster.per_server_stats(),
        genie_stats: env.genie.stats(),
        db_stats: env.db.stats(),
        pool_stats: env.db.pool_stats(),
        db_cpu_utilization: db_cpu.utilization(horizon),
        db_disk_utilization: db_disk.utilization(horizon),
        cache_utilization: cache_srv.utilization(horizon),
    })
}

/// Builds the deployment for a mode.
fn deploy(config: &WorkloadConfig) -> Result<AppEnv> {
    let strategy = match config.mode {
        CacheMode::NoCache => None,
        CacheMode::Invalidate => Some(ConsistencyStrategy::Invalidate),
        CacheMode::Update => Some(ConsistencyStrategy::UpdateInPlace),
    };
    build_app(&AppConfig {
        db: DbConfig {
            buffer_pool_bytes: config.db_buffer_pool_bytes,
            ..Default::default()
        },
        cluster: ClusterConfig {
            servers: config.cache_servers.max(1),
            capacity_bytes: config.cache_bytes,
            bump_lru_on_trigger: config.bump_lru_on_trigger,
            ..Default::default()
        },
        genie: cachegenie::GenieConfig {
            reuse_trigger_connections: config.reuse_trigger_connections,
            ..Default::default()
        },
        seed: config.seed.clone(),
        strategy,
    })
}

fn draw_page(mix: &crate::spec::PageMix, rng: &mut StdRng) -> PageKind {
    let total = mix.total().max(1);
    let roll = rng.gen_range(0..total);
    if roll < mix.lookup_bm {
        PageKind::LookupBM
    } else if roll < mix.lookup_bm + mix.lookup_fbm {
        PageKind::LookupFBM
    } else if roll < mix.lookup_bm + mix.lookup_fbm + mix.create_bm {
        PageKind::CreateBM
    } else if roll < mix.lookup_bm + mix.lookup_fbm + mix.create_bm + mix.accept_fr {
        PageKind::AcceptFR
    } else {
        PageKind::BatchPost
    }
}

fn execute_page(
    env: &AppEnv,
    kind: PageKind,
    user: i64,
    config: &WorkloadConfig,
    rng: &mut StdRng,
) -> Result<PageStats> {
    match kind {
        PageKind::Login => env.app.login(user),
        PageKind::Logout => env.app.logout(user),
        PageKind::LookupBM => env.app.lookup_bm(user),
        PageKind::LookupFBM => env.app.lookup_fbm(user),
        PageKind::CreateBM => {
            // Mostly existing URLs (bumping instance counts), sometimes a
            // brand-new bookmark.
            let pool = config.seed.unique_bookmarks.max(1);
            let n = rng.gen_range(1..=pool + pool / 4 + 1);
            env.app
                .create_bm(user, &format!("http://bookmark.example/{n}"))
        }
        PageKind::AcceptFR => {
            let peer = rng.gen_range(1..=config.seed.users.max(2)) as i64;
            env.app.accept_fr(user, peer)
        }
        PageKind::BatchPost => {
            // A burst of posts to one (often hot) wall in a single
            // transaction; a configurable fraction rolls back, proving
            // the commit pipeline publishes nothing for them.
            let wall = rng.gen_range(1..=config.seed.users.max(2)) as i64;
            let abort = rng.gen_range(0..100u32) < config.batch_abort_pct;
            env.app
                .post_wall_batch(wall, user, config.batch_posts_per_txn, abort)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_and_reports() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.mode = CacheMode::Update;
        let r = run(&cfg).unwrap();
        assert!(r.pages_completed > 0);
        assert!(r.throughput_pages_per_sec > 0.0);
        assert!(r.mean_latency_s() > 0.0);
        assert!(!r.per_page.is_empty());
        // Cache saw traffic in Update mode.
        assert!(r.cache_stats.store.gets > 0);
    }

    #[test]
    fn nocache_issues_no_cache_traffic() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.mode = CacheMode::NoCache;
        let r = run(&cfg).unwrap();
        assert_eq!(r.cache_stats.store.gets, 0);
        assert_eq!(r.genie_stats.cache_hits, 0);
        assert!(r.pages_completed > 0);
    }

    #[test]
    fn update_beats_nocache_on_default_mix() {
        let base = WorkloadConfig {
            clients: 6,
            sessions_per_client: 6,
            warmup_sessions_per_client: 2,
            pages_per_session: 6,
            seed: genie_social::SeedConfig::tiny(),
            db_buffer_pool_bytes: 48 * 1024,
            ..Default::default()
        };
        let nocache = run(&WorkloadConfig {
            mode: CacheMode::NoCache,
            ..base.clone()
        })
        .unwrap();
        let update = run(&WorkloadConfig {
            mode: CacheMode::Update,
            ..base
        })
        .unwrap();
        assert!(
            update.throughput_pages_per_sec > nocache.throughput_pages_per_sec,
            "update {:.1} vs nocache {:.1} pages/s",
            update.throughput_pages_per_sec,
            nocache.throughput_pages_per_sec
        );
    }

    #[test]
    fn triggers_off_runs_and_is_faster_for_update() {
        let base = WorkloadConfig {
            mode: CacheMode::Update,
            clients: 4,
            sessions_per_client: 5,
            warmup_sessions_per_client: 1,
            pages_per_session: 5,
            seed: genie_social::SeedConfig::tiny(),
            ..Default::default()
        };
        let with = run(&base).unwrap();
        let without = run(&WorkloadConfig {
            triggers_enabled: false,
            ..base
        })
        .unwrap();
        assert!(
            without.throughput_pages_per_sec >= with.throughput_pages_per_sec,
            "ideal (no triggers) {:.1} must be >= real {:.1}",
            without.throughput_pages_per_sec,
            with.throughput_pages_per_sec
        );
    }

    #[test]
    fn batch_post_mix_commits_coalesced_and_rolls_back() {
        let mut cfg = WorkloadConfig::smoke();
        cfg.mode = CacheMode::Update;
        cfg.mix.batch_post = 40; // heavy transactional share
        cfg.batch_abort_pct = 50;
        cfg.sessions_per_client = 6;
        let r = run(&cfg).unwrap();
        assert!(r.pages_completed > 0);
        assert!(
            r.db_stats.commits > 0,
            "batch pages commit: {:?}",
            r.db_stats
        );
        assert!(
            r.db_stats.rollbacks > 0,
            "abort mix rolls back: {:?}",
            r.db_stats
        );
        // Commit-time coalescing: committed transactions' physical cache
        // ops never exceed the per-statement (naive) baseline.
        let g = r.genie_stats;
        assert!(g.commit_batches > 0, "commit pipeline engaged: {g:?}");
        assert!(
            g.commit_cache_ops <= g.commit_cache_ops_naive,
            "coalesced {} > naive {}",
            g.commit_cache_ops,
            g.commit_cache_ops_naive
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let cfg = WorkloadConfig::smoke();
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.pages_completed, b.pages_completed);
        assert_eq!(a.duration, b.duration);
        assert!((a.throughput_pages_per_sec - b.throughput_pages_per_sec).abs() < 1e-9);
    }

    #[test]
    fn colocated_mode_shifts_cache_load_to_db() {
        let base = WorkloadConfig {
            mode: CacheMode::Update,
            clients: 4,
            sessions_per_client: 4,
            warmup_sessions_per_client: 1,
            pages_per_session: 4,
            seed: genie_social::SeedConfig::tiny(),
            ..Default::default()
        };
        let separate = run(&base).unwrap();
        let colocated = run(&WorkloadConfig {
            colocated_cache: true,
            ..base
        })
        .unwrap();
        assert_eq!(colocated.cache_utilization, 0.0);
        assert!(colocated.throughput_pages_per_sec <= separate.throughput_pages_per_sec);
    }
}
