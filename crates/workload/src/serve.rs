//! The over-the-wire closed-loop driver: real client threads speaking
//! the serve protocol to a [`genie_server::Server`] over loopback TCP,
//! with Zipf user popularity and optional pacing to a target aggregate
//! QPS. Latency here is end-to-end — frame encode, kernel round trip,
//! middleware, page execution, response decode — reported per page
//! kind as p50/p95/p99/p999 from full sample sets
//! ([`genie_sim::Percentiles`]), not throughput alone.

use crate::spec::PageMix;
use genie_server::{Page, Response, ServeClient, Server, ServerConfig, ShutdownReport};
use genie_sim::{Percentiles, Zipf};
use genie_social::{build_app, AppConfig, SeedConfig};
use genie_storage::{Result, StorageError, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration for one over-the-wire serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Client threads, one connection each (closed loop: a client has
    /// at most one request outstanding).
    pub clients: usize,
    /// Requests each client issues (excluding login/logout bookends).
    pub requests_per_client: usize,
    /// Aggregate request rate to pace to, across all clients; `0.0`
    /// runs unpaced (each client fires as soon as the previous response
    /// lands).
    pub target_qps: f64,
    /// Zipf exponent for user popularity over the seeded population
    /// (the paper drives its million-user workload at 2.0).
    pub zipf_a: f64,
    /// Action mix (reuses the Table 2 weights).
    pub mix: PageMix,
    /// Every Nth request per client is a `snapshot` MVCC probe instead
    /// of a mix page; 0 disables.
    pub snapshot_every: usize,
    /// Seed-data scale.
    pub seed: SeedConfig,
    /// Driver RNG seed.
    pub rng_seed: u64,
    /// Server tuning.
    pub server: ServerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 4,
            requests_per_client: 100,
            target_qps: 0.0,
            zipf_a: 2.0,
            mix: PageMix {
                batch_post: 5,
                ..PageMix::default()
            },
            snapshot_every: 10,
            seed: SeedConfig::tiny(),
            rng_seed: 7,
            server: ServerConfig::default(),
        }
    }
}

/// Latency summary for one page kind, from the full client-side sample
/// set.
#[derive(Debug, Clone)]
pub struct ServePageSummary {
    /// Wire name of the page kind.
    pub page: &'static str,
    /// Successful requests measured.
    pub count: u64,
    /// Mean end-to-end latency, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

/// Everything one serving run produced.
#[derive(Debug, Clone, Default)]
pub struct ServeResult {
    /// Requests answered `OK`.
    pub requests_ok: u64,
    /// Requests answered with a retryable error (shed / rate limited /
    /// serialization), each followed by client-side backoff.
    pub requests_retryable: u64,
    /// Requests answered with a non-retryable error. Must stay zero.
    pub requests_failed: u64,
    /// Wall-clock measured window.
    pub elapsed: Duration,
    /// The pacing target the run was asked for (0 = unpaced).
    pub target_qps: f64,
    /// Successful requests per wall-clock second actually achieved.
    pub achieved_qps: f64,
    /// Per-page-kind latency summaries (kinds with zero traffic are
    /// omitted).
    pub per_page: Vec<ServePageSummary>,
    /// Server-side: page requests refused by admission control.
    pub requests_shed: u64,
    /// Server-side: requests refused by the rate limiter.
    pub rate_limited: u64,
    /// Server-side: `snapshot` probes that saw a torn repeat read.
    /// Must stay zero.
    pub snapshot_violations: u64,
    /// Cached-object instances cross-checked after the drain.
    pub checked_objects: u64,
    /// Instances whose cache disagreed with the database. Must stay
    /// zero.
    pub coherence_violations: u64,
    /// The drained shutdown's report.
    pub shutdown: Option<ShutdownReport>,
}

struct ClientTally {
    ok: u64,
    retryable: u64,
    failed: u64,
    latencies: Vec<(usize, f64)>,
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Unsupported(format!("serve i/o: {e}"))
}

fn pick_page(mix: &PageMix, roll: u32) -> Page {
    let mut acc = mix.lookup_bm;
    if roll < acc {
        return Page::LookupBM;
    }
    acc += mix.lookup_fbm;
    if roll < acc {
        return Page::LookupFBM;
    }
    acc += mix.create_bm;
    if roll < acc {
        return Page::CreateBM;
    }
    acc += mix.accept_fr;
    if roll < acc {
        return Page::AcceptFR;
    }
    Page::BatchPost
}

/// Builds a deployment, serves it over loopback, drives the closed-loop
/// Zipf workload against it, then drains the server and cross-checks
/// cache coherence.
///
/// # Errors
///
/// Deployment/seeding errors, socket-level failures (wrapped), and any
/// database error from the post-run coherence sweep. Per-request
/// retryable refusals are *counted*, not returned.
///
/// # Panics
///
/// Panics if a client thread itself panics (protocol invariant
/// breakage).
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeResult> {
    let env = build_app(&AppConfig {
        seed: cfg.seed.clone(),
        strategy: Some(cachegenie::ConsistencyStrategy::UpdateInPlace),
        ..Default::default()
    })?;
    let server = Server::start(&env, cfg.server.clone()).map_err(io_err)?;
    let addr = server.addr();
    let users = env.seeded.users.max(2);
    let clients = cfg.clients.max(1);
    let per_client_interval = if cfg.target_qps > 0.0 {
        Duration::from_secs_f64(clients as f64 / cfg.target_qps)
    } else {
        Duration::ZERO
    };
    let mix_total = cfg.mix.total().max(1);
    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<std::io::Result<ClientTally>>> = (0..clients)
        .map(|t| {
            let cfg = cfg.clone();
            std::thread::spawn(move || -> std::io::Result<ClientTally> {
                let mut rng = StdRng::seed_from_u64(cfg.rng_seed.wrapping_add(t as u64 * 7919));
                let zipf = Zipf::new(users, cfg.zipf_a.max(0.01));
                let mut c = ServeClient::connect(addr)?;
                c.hello(&format!("load-{t}"))?;
                let mut tally = ClientTally {
                    ok: 0,
                    retryable: 0,
                    failed: 0,
                    latencies: Vec::with_capacity(cfg.requests_per_client),
                };
                let t0 = Instant::now();
                // Session bookends: the latency table measures the mix,
                // login/logout just have to succeed.
                let me = (t % users) as i64 + 1;
                c.page(Page::Login, me, None)?;
                for n in 0..cfg.requests_per_client {
                    // Open-loop pacing to the aggregate target: each
                    // client owns every `clients`-th send slot.
                    if !per_client_interval.is_zero() {
                        let due = per_client_interval * n as u32;
                        let now = t0.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    let user = zipf.sample(&mut rng) as i64;
                    let kind = if cfg.snapshot_every > 0 && n % cfg.snapshot_every == 0 {
                        Page::Snapshot
                    } else {
                        pick_page(&cfg.mix, rng.gen_range(0..mix_total))
                    };
                    let arg = match kind {
                        // Unique URL space per client: bookmark URLs
                        // carry a unique index.
                        Page::CreateBM => Some((t * 10_000_000 + n) as i64),
                        Page::AcceptFR | Page::BatchPost | Page::PostWall => {
                            Some(user % users as i64 + 1)
                        }
                        Page::Snapshot => Some(4),
                        _ => None,
                    };
                    let sent = Instant::now();
                    match c.page(kind, user, arg)? {
                        Response::Ok(_) => {
                            tally.ok += 1;
                            tally
                                .latencies
                                .push((kind.index(), sent.elapsed().as_secs_f64()));
                        }
                        Response::Err { code, reason } => {
                            assert!(
                                genie_server::retryable(code),
                                "fatal serve error {code} {reason}"
                            );
                            tally.retryable += 1;
                            // Real clients back off on 429/503.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
                c.page(Page::Logout, me, None)?;
                c.quit()?;
                Ok(tally)
            })
        })
        .collect();
    let mut result = ServeResult {
        target_qps: cfg.target_qps,
        ..Default::default()
    };
    let mut per_kind: Vec<Percentiles> =
        (0..Page::all().len()).map(|_| Percentiles::new()).collect();
    let mut maxes = vec![0.0f64; Page::all().len()];
    for h in handles {
        let tally = h.join().expect("client thread panicked").map_err(io_err)?;
        result.requests_ok += tally.ok;
        result.requests_retryable += tally.retryable;
        result.requests_failed += tally.failed;
        for (idx, secs) in tally.latencies {
            per_kind[idx].push(secs);
            if secs > maxes[idx] {
                maxes[idx] = secs;
            }
        }
    }
    result.elapsed = start.elapsed();
    result.achieved_qps = if result.elapsed.as_secs_f64() > 0.0 {
        result.requests_ok as f64 / result.elapsed.as_secs_f64()
    } else {
        0.0
    };
    for (kind, p) in Page::all().into_iter().zip(per_kind.iter_mut()) {
        if p.is_empty() {
            continue;
        }
        result.per_page.push(ServePageSummary {
            page: kind.name(),
            count: p.len() as u64,
            mean_s: p.mean().unwrap_or(0.0),
            p50_s: p.percentile(50.0).unwrap_or(0.0),
            p95_s: p.percentile(95.0).unwrap_or(0.0),
            p99_s: p.percentile(99.0).unwrap_or(0.0),
            p999_s: p.percentile(99.9).unwrap_or(0.0),
            max_s: maxes[kind.index()],
        });
    }
    result.requests_shed = server
        .metrics()
        .requests_shed
        .load(std::sync::atomic::Ordering::Relaxed)
        + server
            .metrics()
            .connections_shed
            .load(std::sync::atomic::Ordering::Relaxed);
    result.rate_limited = server
        .metrics()
        .rate_limited
        .load(std::sync::atomic::Ordering::Relaxed);
    result.snapshot_violations = server
        .metrics()
        .snapshot_violations
        .load(std::sync::atomic::Ordering::Relaxed);
    let report = server.shutdown();
    // The post-drain coherence sweep: every cached object the mix can
    // have touched, for every user.
    let per_user = [
        "latest_wall_posts",
        "wall_post_count",
        "user_by_id",
        "profile_by_user",
        "friends_of_user",
        "friend_count",
        "user_bookmark_count",
    ];
    for user in 1..=users as i64 {
        let params = [Value::Int(user)];
        for name in per_user {
            result.checked_objects += 1;
            if !env.genie.verify_coherence(name, &params)? {
                result.coherence_violations += 1;
            }
        }
    }
    result.shutdown = Some(report);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_picker_covers_all_weights() {
        let mix = PageMix {
            lookup_bm: 50,
            lookup_fbm: 30,
            create_bm: 10,
            accept_fr: 5,
            batch_post: 5,
        };
        assert_eq!(pick_page(&mix, 0), Page::LookupBM);
        assert_eq!(pick_page(&mix, 49), Page::LookupBM);
        assert_eq!(pick_page(&mix, 50), Page::LookupFBM);
        assert_eq!(pick_page(&mix, 79), Page::LookupFBM);
        assert_eq!(pick_page(&mix, 80), Page::CreateBM);
        assert_eq!(pick_page(&mix, 89), Page::CreateBM);
        assert_eq!(pick_page(&mix, 90), Page::AcceptFR);
        assert_eq!(pick_page(&mix, 94), Page::AcceptFR);
        assert_eq!(pick_page(&mix, 95), Page::BatchPost);
        assert_eq!(pick_page(&mix, 99), Page::BatchPost);
    }

    #[test]
    fn serve_smoke_run_reports_percentiles_and_stays_coherent() {
        let result = run_serve(&ServeConfig {
            clients: 3,
            requests_per_client: 30,
            ..Default::default()
        })
        .unwrap();
        assert!(result.requests_ok > 0, "{result:?}");
        assert_eq!(result.requests_failed, 0, "{result:?}");
        assert_eq!(result.snapshot_violations, 0, "{result:?}");
        assert_eq!(result.coherence_violations, 0, "{result:?}");
        assert!(result.checked_objects > 0);
        assert!(!result.per_page.is_empty());
        for p in &result.per_page {
            assert!(p.count > 0);
            assert!(p.p50_s <= p.p99_s && p.p99_s <= p.p999_s, "{p:?}");
            assert!(p.p999_s <= p.max_s + 1e-9, "{p:?}");
        }
        let report = result.shutdown.unwrap();
        assert_eq!(report.dropped_in_flight, 0);
        assert_eq!(report.leaked_sessions, 0);
    }

    #[test]
    fn paced_run_respects_a_low_target_qps() {
        let result = run_serve(&ServeConfig {
            clients: 2,
            requests_per_client: 20,
            target_qps: 200.0,
            ..Default::default()
        })
        .unwrap();
        // 40 requests at 200/s is at least ~190 ms of pacing; unpaced
        // this workload finishes far faster.
        assert!(
            result.elapsed >= Duration::from_millis(150),
            "pacing ignored: {:?}",
            result.elapsed
        );
        assert_eq!(result.requests_failed, 0);
    }
}
