//! Trigger generation: the paper's §3.2.
//!
//! For each cached object CacheGenie installs INSERT/UPDATE/DELETE
//! triggers on every underlying table (one table for Feature/Count/TopK,
//! two for Link). Each generated trigger also carries a rendered source
//! listing — the artifact the paper counts when it reports "1720 lines of
//! generated trigger code" for Pinax.
//!
//! Trigger bodies follow the paper's four-step recipe: receive the
//! modified row, derive the affected cache key(s), compute the incremental
//! update (or pick invalidation), and apply it with `gets`/`cas`, retrying
//! on CAS conflicts.

use crate::def::{CacheClassKind, ConsistencyStrategy};
use crate::genie::GenieConfig;
use crate::object::ObjectInner;
use crate::stats::GenieStats;
use genie_cache::{CacheError, CacheHandle, Payload};
use genie_storage::{Result, Row, Trigger, TriggerCtx, TriggerEvent, Value};
use std::sync::Arc;

/// Builds all triggers for one compiled object (none for `Expire`).
pub(crate) fn build_triggers(
    obj: &Arc<ObjectInner>,
    cache: &CacheHandle,
    stats: &Arc<GenieStats>,
    config: &GenieConfig,
) -> Vec<Trigger> {
    if matches!(obj.def.strategy, ConsistencyStrategy::Expire { .. }) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let events = [
        TriggerEvent::Insert,
        TriggerEvent::Update,
        TriggerEvent::Delete,
    ];
    for event in events {
        out.push(make_trigger(
            obj,
            cache,
            stats,
            config,
            &obj.table.clone(),
            event,
            false,
        ));
    }
    if let Some(link) = &obj.link {
        let target = link.target_table.clone();
        for event in events {
            out.push(make_trigger(
                obj, cache, stats, config, &target, event, true,
            ));
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn make_trigger(
    obj: &Arc<ObjectInner>,
    cache: &CacheHandle,
    stats: &Arc<GenieStats>,
    config: &GenieConfig,
    table: &str,
    event: TriggerEvent,
    on_link_target: bool,
) -> Trigger {
    let name = format!(
        "cg_{}_{}_{}",
        obj.def.name,
        table,
        event.to_string().to_lowercase()
    );
    let source = render_source(obj, table, event, on_link_target);
    let o = Arc::clone(obj);
    let c = cache.clone();
    let s = Arc::clone(stats);
    let reuse_conn = config.reuse_trigger_connections;
    let retries = config.cas_retry_limit;
    let body = move |ctx: &mut TriggerCtx<'_>| -> Result<()> {
        // The paper's generated Python triggers open a remote memcached
        // connection on every firing — the dominant trigger cost in §5.3.
        if !reuse_conn {
            ctx.charge_connection_open();
        }
        let ops = if on_link_target {
            fire_link_target(&o, &c, &s, retries, ctx)?
        } else {
            fire_main(&o, &c, &s, retries, ctx)?
        };
        ctx.charge_cache_ops(ops);
        Ok(())
    };
    Trigger::new(name, table, event, body).with_source(source)
}

// ---------------------------------------------------------------------
// Shared gets/modify/cas machinery
// ---------------------------------------------------------------------

enum Mutation {
    /// Store the new payload (CAS).
    Keep(Payload),
    /// Remove the key (reserve exhausted, corruption, wrong shape).
    Drop,
    /// Nothing to do.
    Noop,
}

/// The gets → modify → cas loop from the paper's generated trigger, with
/// bounded retries; exhaustion falls back to invalidation (always safe).
fn mutate_key(
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    key: &str,
    mut f: impl FnMut(Payload) -> Mutation,
) -> u64 {
    let mut ops = 0;
    for _ in 0..retries.max(1) {
        ops += 1;
        let Some(got) = cache.gets(key) else {
            stats.bump(&stats.trigger_noops);
            return ops;
        };
        let payload = match Payload::decode(&got.data) {
            Ok(p) => p,
            Err(_) => {
                ops += 1;
                cache.delete(key);
                stats.bump(&stats.invalidations);
                return ops;
            }
        };
        match f(payload) {
            Mutation::Noop => {
                stats.bump(&stats.trigger_noops);
                return ops;
            }
            Mutation::Drop => {
                ops += 1;
                cache.delete(key);
                stats.bump(&stats.key_drops);
                return ops;
            }
            Mutation::Keep(p) => {
                ops += 1;
                match cache.cas(key, p.encode(), got.cas, None) {
                    Ok(()) => {
                        stats.bump(&stats.inplace_updates);
                        return ops;
                    }
                    Err(CacheError::CasConflict) => {
                        stats.bump(&stats.cas_conflicts);
                        continue;
                    }
                    Err(_) => {
                        ops += 1;
                        cache.delete(key);
                        stats.bump(&stats.invalidations);
                        return ops;
                    }
                }
            }
        }
    }
    // Retry budget exhausted: invalidate rather than risk staleness.
    cache.delete(key);
    stats.bump(&stats.invalidations);
    ops + 1
}

fn invalidate_keys(cache: &CacheHandle, stats: &GenieStats, keys: &[String]) -> u64 {
    let mut ops = 0;
    let mut seen: Vec<&String> = Vec::new();
    for key in keys {
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        ops += 1;
        cache.delete(key);
        stats.bump(&stats.invalidations);
    }
    ops
}

fn pk_of(row: &Row) -> &Value {
    row.get(0)
}

// ---------------------------------------------------------------------
// Main-table events
// ---------------------------------------------------------------------

fn fire_main(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    ctx: &mut TriggerCtx<'_>,
) -> Result<u64> {
    // Invalidate strategy: per-key precise deletion, all classes alike.
    if obj.def.strategy == ConsistencyStrategy::Invalidate {
        let mut keys = Vec::new();
        if let Some(old) = ctx.old {
            keys.push(obj.key_from_row(old));
        }
        if let Some(new) = ctx.new {
            keys.push(obj.key_from_row(new));
        }
        return Ok(invalidate_keys(cache, stats, &keys));
    }
    match &obj.def.kind {
        CacheClassKind::Feature => Ok(fire_feature(obj, cache, stats, retries, ctx)),
        CacheClassKind::Count => Ok(fire_count(obj, cache, stats, ctx)),
        CacheClassKind::TopK { .. } => Ok(fire_top_k(obj, cache, stats, retries, ctx)),
        CacheClassKind::Link { .. } => fire_link_main(obj, cache, stats, retries, ctx),
    }
}

fn fire_feature(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    ctx: &TriggerCtx<'_>,
) -> u64 {
    match ctx.event {
        TriggerEvent::Insert => {
            let new = ctx.new.expect("insert has NEW").clone();
            mutate_key(
                cache,
                stats,
                retries,
                &obj.key_from_row(&new),
                move |p| match p {
                    Payload::Rows(mut rows) => {
                        rows.push(new.clone());
                        Mutation::Keep(Payload::Rows(rows))
                    }
                    _ => Mutation::Drop,
                },
            )
        }
        TriggerEvent::Delete => {
            let old = ctx.old.expect("delete has OLD").clone();
            mutate_key(
                cache,
                stats,
                retries,
                &obj.key_from_row(&old),
                move |p| match p {
                    Payload::Rows(mut rows) => {
                        let before = rows.len();
                        rows.retain(|r| pk_of(r) != pk_of(&old));
                        if rows.len() == before {
                            Mutation::Noop
                        } else {
                            Mutation::Keep(Payload::Rows(rows))
                        }
                    }
                    _ => Mutation::Drop,
                },
            )
        }
        TriggerEvent::Update => {
            let old = ctx.old.expect("update has OLD").clone();
            let new = ctx.new.expect("update has NEW").clone();
            if obj.key_fields_changed(&old, &new) {
                // The row moved between keys: remove then add.
                let mut ops = mutate_key(
                    cache,
                    stats,
                    retries,
                    &obj.key_from_row(&old),
                    |p| match p {
                        Payload::Rows(mut rows) => {
                            rows.retain(|r| pk_of(r) != pk_of(&old));
                            Mutation::Keep(Payload::Rows(rows))
                        }
                        _ => Mutation::Drop,
                    },
                );
                let new2 = new.clone();
                ops += mutate_key(
                    cache,
                    stats,
                    retries,
                    &obj.key_from_row(&new),
                    move |p| match p {
                        Payload::Rows(mut rows) => {
                            rows.push(new2.clone());
                            Mutation::Keep(Payload::Rows(rows))
                        }
                        _ => Mutation::Drop,
                    },
                );
                ops
            } else {
                mutate_key(cache, stats, retries, &obj.key_from_row(&new), move |p| {
                    match p {
                        Payload::Rows(mut rows) => {
                            match rows.iter_mut().find(|r| pk_of(r) == pk_of(&new)) {
                                Some(slot) => *slot = new.clone(),
                                // Heal: the row should have been present.
                                None => rows.push(new.clone()),
                            }
                            Mutation::Keep(Payload::Rows(rows))
                        }
                        _ => Mutation::Drop,
                    }
                })
            }
        }
    }
}

fn fire_count(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    ctx: &TriggerCtx<'_>,
) -> u64 {
    let bump = |key: &str, delta: i64| -> u64 {
        match cache.incr(key, delta) {
            Ok(Some(_)) => {
                stats.bump(&stats.inplace_updates);
                1
            }
            Ok(None) => {
                stats.bump(&stats.trigger_noops);
                1
            }
            Err(_) => {
                cache.delete(key);
                stats.bump(&stats.invalidations);
                2
            }
        }
    };
    match ctx.event {
        TriggerEvent::Insert => bump(&obj.key_from_row(ctx.new.expect("NEW")), 1),
        TriggerEvent::Delete => bump(&obj.key_from_row(ctx.old.expect("OLD")), -1),
        TriggerEvent::Update => {
            let old = ctx.old.expect("OLD");
            let new = ctx.new.expect("NEW");
            if obj.key_fields_changed(old, new) {
                bump(&obj.key_from_row(old), -1) + bump(&obj.key_from_row(new), 1)
            } else {
                stats.bump(&stats.trigger_noops);
                0
            }
        }
    }
}

/// Inserts `row` into a Top-K list per the paper's §3.2 algorithm,
/// honouring the completeness flag.
fn top_k_insert(obj: &ObjectInner, mut rows: Vec<Row>, mut complete: bool, row: &Row) -> Mutation {
    let pos = rows
        .iter()
        .position(|r| obj.rank_cmp(row, r) == std::cmp::Ordering::Less)
        .unwrap_or(rows.len());
    if pos < rows.len() || complete {
        rows.insert(pos, row.clone());
        if rows.len() > obj.capacity {
            rows.truncate(obj.capacity);
            complete = false;
        }
        Mutation::Keep(Payload::TopK { rows, complete })
    } else {
        // Row ranks below everything cached and coverage is incomplete:
        // it may or may not belong at the tail, so leave the list alone
        // (same as the paper's `insert_pos == len` early exit).
        Mutation::Noop
    }
}

fn top_k_remove(obj: &ObjectInner, rows: &mut Vec<Row>, pk: &Value) -> bool {
    let before = rows.len();
    rows.retain(|r| pk_of(r) != pk);
    let _ = obj;
    rows.len() != before
}

fn fire_top_k(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    ctx: &TriggerCtx<'_>,
) -> u64 {
    let k = obj.k();
    match ctx.event {
        TriggerEvent::Insert => {
            let new = ctx.new.expect("NEW").clone();
            mutate_key(
                cache,
                stats,
                retries,
                &obj.key_from_row(&new),
                move |p| match p {
                    Payload::TopK { rows, complete } => top_k_insert(obj, rows, complete, &new),
                    _ => Mutation::Drop,
                },
            )
        }
        TriggerEvent::Delete => {
            let old = ctx.old.expect("OLD").clone();
            mutate_key(cache, stats, retries, &obj.key_from_row(&old), move |p| {
                match p {
                    Payload::TopK { mut rows, complete } => {
                        if !top_k_remove(obj, &mut rows, pk_of(&old)) {
                            return Mutation::Noop;
                        }
                        if rows.len() < k && !complete {
                            // Reserve exhausted: recompute on next read.
                            Mutation::Drop
                        } else {
                            Mutation::Keep(Payload::TopK { rows, complete })
                        }
                    }
                    _ => Mutation::Drop,
                }
            })
        }
        TriggerEvent::Update => {
            let old = ctx.old.expect("OLD").clone();
            let new = ctx.new.expect("NEW").clone();
            if obj.key_fields_changed(&old, &new) {
                // Moved between lists: delete from old, insert into new.
                let old2 = old.clone();
                let mut ops = mutate_key(
                    cache,
                    stats,
                    retries,
                    &obj.key_from_row(&old),
                    move |p| match p {
                        Payload::TopK { mut rows, complete } => {
                            if !top_k_remove(obj, &mut rows, pk_of(&old2)) {
                                return Mutation::Noop;
                            }
                            if rows.len() < k && !complete {
                                Mutation::Drop
                            } else {
                                Mutation::Keep(Payload::TopK { rows, complete })
                            }
                        }
                        _ => Mutation::Drop,
                    },
                );
                let new2 = new.clone();
                ops += mutate_key(
                    cache,
                    stats,
                    retries,
                    &obj.key_from_row(&new),
                    move |p| match p {
                        Payload::TopK { rows, complete } => {
                            top_k_insert(obj, rows, complete, &new2)
                        }
                        _ => Mutation::Drop,
                    },
                );
                ops
            } else {
                // Same list: reposition (sort value may have changed).
                mutate_key(cache, stats, retries, &obj.key_from_row(&new), move |p| {
                    match p {
                        Payload::TopK { mut rows, complete } => {
                            let was_cached = top_k_remove(obj, &mut rows, pk_of(&old));
                            match top_k_insert(obj, rows, complete, &new) {
                                Mutation::Noop if was_cached => {
                                    // Row fell out of the cached range;
                                    // the remaining prefix is still right.
                                    Mutation::Noop
                                }
                                other => other,
                            }
                        }
                        _ => Mutation::Drop,
                    }
                })
            }
        }
    }
}

// ---------------------------------------------------------------------
// Link-class events
// ---------------------------------------------------------------------

/// Combined rows contributed by one base row, fetched from inside the
/// trigger (Postgres triggers query the database the same way).
fn link_rows_for_base(
    obj: &ObjectInner,
    ctx: &mut TriggerCtx<'_>,
    base_pk: &Value,
) -> Result<Vec<Row>> {
    let link = obj.link.as_ref().expect("link object");
    let result = ctx.query(&link.by_pk_template, std::slice::from_ref(base_pk))?;
    Ok(result.rows)
}

fn fire_link_main(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    ctx: &mut TriggerCtx<'_>,
) -> Result<u64> {
    match ctx.event {
        TriggerEvent::Insert => {
            let new = ctx.new.expect("NEW").clone();
            let key = obj.key_from_row(&new);
            // Probe first: skip the DB work when nothing is cached.
            if !cache.contains(&key) {
                stats.bump(&stats.trigger_noops);
                return Ok(1);
            }
            let fresh = link_rows_for_base(obj, ctx, pk_of(&new))?;
            let ops = 1 + mutate_key(cache, stats, retries, &key, move |p| match p {
                Payload::Rows(mut rows) => {
                    rows.extend(fresh.iter().cloned());
                    Mutation::Keep(Payload::Rows(rows))
                }
                _ => Mutation::Drop,
            });
            Ok(ops)
        }
        TriggerEvent::Delete => {
            let old = ctx.old.expect("OLD").clone();
            let key = obj.key_from_row(&old);
            Ok(mutate_key(cache, stats, retries, &key, move |p| match p {
                Payload::Rows(mut rows) => {
                    let before = rows.len();
                    rows.retain(|r| pk_of(r) != pk_of(&old));
                    if rows.len() == before {
                        Mutation::Noop
                    } else {
                        Mutation::Keep(Payload::Rows(rows))
                    }
                }
                _ => Mutation::Drop,
            }))
        }
        TriggerEvent::Update => {
            let old = ctx.old.expect("OLD").clone();
            let new = ctx.new.expect("NEW").clone();
            let old_key = obj.key_from_row(&old);
            let new_key = obj.key_from_row(&new);
            let mut ops = 0;
            if old_key != new_key {
                let old2 = old.clone();
                ops += mutate_key(cache, stats, retries, &old_key, move |p| match p {
                    Payload::Rows(mut rows) => {
                        rows.retain(|r| pk_of(r) != pk_of(&old2));
                        Mutation::Keep(Payload::Rows(rows))
                    }
                    _ => Mutation::Drop,
                });
            } else {
                // Same key: drop stale combined rows for this base row.
                let old2 = old.clone();
                ops += mutate_key(cache, stats, retries, &old_key, move |p| match p {
                    Payload::Rows(mut rows) => {
                        rows.retain(|r| pk_of(r) != pk_of(&old2));
                        Mutation::Keep(Payload::Rows(rows))
                    }
                    _ => Mutation::Drop,
                });
            }
            // Add the fresh join image under the new key if it is cached.
            if cache.contains(&new_key) {
                ops += 1;
                let fresh = link_rows_for_base(obj, ctx, pk_of(&new))?;
                ops += mutate_key(cache, stats, retries, &new_key, move |p| match p {
                    Payload::Rows(mut rows) => {
                        rows.extend(fresh.iter().cloned());
                        Mutation::Keep(Payload::Rows(rows))
                    }
                    _ => Mutation::Drop,
                });
            } else {
                ops += 1;
                stats.bump(&stats.trigger_noops);
            }
            Ok(ops)
        }
    }
}

/// Events on the joined (target) table. Affected base rows — and thus
/// affected cache keys — are found with the reverse query; updates are
/// applied in place where possible.
fn fire_link_target(
    obj: &ObjectInner,
    cache: &CacheHandle,
    stats: &GenieStats,
    retries: usize,
    ctx: &mut TriggerCtx<'_>,
) -> Result<u64> {
    let link = obj.link.as_ref().expect("link object");
    let tc = link.target_column_pos;
    let base_arity = obj.base_arity;

    let affected_keys = |ctx: &mut TriggerCtx<'_>, join_value: &Value| -> Result<Vec<String>> {
        let result = ctx.query(&link.reverse_template, std::slice::from_ref(join_value))?;
        let mut keys: Vec<String> = result.rows.iter().map(|r| obj.key_from_row(r)).collect();
        keys.sort();
        keys.dedup();
        Ok(keys)
    };

    if obj.def.strategy == ConsistencyStrategy::Invalidate {
        let mut keys = Vec::new();
        if let Some(old) = ctx.old {
            let v = old.get(tc).clone();
            keys.extend(affected_keys(ctx, &v)?);
        }
        if let Some(new) = ctx.new {
            let v = new.get(tc).clone();
            keys.extend(affected_keys(ctx, &v)?);
        }
        return Ok(invalidate_keys(cache, stats, &keys));
    }

    let mut ops = 0;
    match ctx.event {
        TriggerEvent::Insert => {
            // A new target row may extend cached join results: for every
            // affected base row's key, append base ++ new.
            let new = ctx.new.expect("NEW").clone();
            let v = new.get(tc).clone();
            let bases = ctx.query(&link.reverse_template, &[v])?;
            for base in &bases.rows {
                let key = obj.key_from_row(base);
                let combined: Vec<Value> =
                    base.values().iter().chain(new.values()).cloned().collect();
                let combined = Row::new(combined);
                ops += mutate_key(cache, stats, retries, &key, move |p| match p {
                    Payload::Rows(mut rows) => {
                        rows.push(combined.clone());
                        Mutation::Keep(Payload::Rows(rows))
                    }
                    _ => Mutation::Drop,
                });
            }
            Ok(ops)
        }
        TriggerEvent::Delete => {
            let old = ctx.old.expect("OLD").clone();
            let v = old.get(tc).clone();
            let keys = affected_keys(ctx, &v)?;
            for key in keys {
                let old2 = old.clone();
                ops += mutate_key(cache, stats, retries, &key, move |p| match p {
                    Payload::Rows(mut rows) => {
                        let before = rows.len();
                        rows.retain(|r| r.values()[base_arity..] != *old2.values());
                        if rows.len() == before {
                            Mutation::Noop
                        } else {
                            Mutation::Keep(Payload::Rows(rows))
                        }
                    }
                    _ => Mutation::Drop,
                });
            }
            Ok(ops)
        }
        TriggerEvent::Update => {
            let old = ctx.old.expect("OLD").clone();
            let new = ctx.new.expect("NEW").clone();
            if old.get(tc) != new.get(tc) {
                // The join column moved: old joiners lose the row, new
                // joiners gain it.
                let v_old = old.get(tc).clone();
                for key in affected_keys(ctx, &v_old)? {
                    let old2 = old.clone();
                    ops += mutate_key(cache, stats, retries, &key, move |p| match p {
                        Payload::Rows(mut rows) => {
                            rows.retain(|r| r.values()[base_arity..] != *old2.values());
                            Mutation::Keep(Payload::Rows(rows))
                        }
                        _ => Mutation::Drop,
                    });
                }
                let v_new = new.get(tc).clone();
                let bases = ctx.query(&link.reverse_template, &[v_new])?;
                for base in &bases.rows {
                    let key = obj.key_from_row(base);
                    let combined: Vec<Value> =
                        base.values().iter().chain(new.values()).cloned().collect();
                    let combined = Row::new(combined);
                    ops += mutate_key(cache, stats, retries, &key, move |p| match p {
                        Payload::Rows(mut rows) => {
                            rows.push(combined.clone());
                            Mutation::Keep(Payload::Rows(rows))
                        }
                        _ => Mutation::Drop,
                    });
                }
            } else {
                // In-place: replace the target portion of matching rows.
                let v = new.get(tc).clone();
                for key in affected_keys(ctx, &v)? {
                    let old2 = old.clone();
                    let new2 = new.clone();
                    ops += mutate_key(cache, stats, retries, &key, move |p| match p {
                        Payload::Rows(mut rows) => {
                            let mut touched = false;
                            for r in &mut rows {
                                if r.values()[base_arity..] == *old2.values() {
                                    let mut vals = r.values()[..base_arity].to_vec();
                                    vals.extend(new2.values().iter().cloned());
                                    *r = Row::new(vals);
                                    touched = true;
                                }
                            }
                            if touched {
                                Mutation::Keep(Payload::Rows(rows))
                            } else {
                                Mutation::Noop
                            }
                        }
                        _ => Mutation::Drop,
                    });
                }
            }
            Ok(ops)
        }
    }
}

// ---------------------------------------------------------------------
// Source rendering (the paper's generated-code metric)
// ---------------------------------------------------------------------

/// Renders the trigger body as the Python-like listing CacheGenie would
/// install into Postgres (cf. the generated trigger in §3.2). The listing
/// is what [`genie_storage::TriggerManager::generated_source_lines`]
/// counts for the §5.2 programmer-effort table.
pub(crate) fn render_source(
    obj: &ObjectInner,
    table: &str,
    event: TriggerEvent,
    on_link_target: bool,
) -> String {
    let mut s = String::new();
    let class = obj.def.kind.class_name();
    let strategy = match obj.def.strategy {
        ConsistencyStrategy::UpdateInPlace => "update-in-place",
        ConsistencyStrategy::Invalidate => "invalidate",
        ConsistencyStrategy::Expire { .. } => "expire",
    };
    let ev = event.to_string();
    s.push_str(&format!(
        "# Auto-generated by CacheGenie: {class} object '{}'\n",
        obj.def.name
    ));
    s.push_str(&format!(
        "# AFTER {ev} ON {table} FOR EACH ROW ({strategy})\n"
    ));
    s.push_str("import memcache\n");
    s.push_str("cache = memcache.Client(['cachehost:11211'])\n");
    s.push_str(&format!("table = '{table}'\n"));
    s.push_str(&format!("key_columns = {:?}\n", obj.def.where_fields));
    match event {
        TriggerEvent::Insert => s.push_str("row = trigger_data['new']\n"),
        TriggerEvent::Delete => s.push_str("row = trigger_data['old']\n"),
        TriggerEvent::Update => {
            s.push_str("old_row = trigger_data['old']\n");
            s.push_str("row = trigger_data['new']\n");
        }
    }
    if on_link_target {
        s.push_str("# reverse-map the joined row to affected base rows\n");
        s.push_str(&format!(
            "base_rows = plpy.execute(\"{}\", [row[{}]])\n",
            obj.link
                .as_ref()
                .map(|l| l.reverse_template.to_string())
                .unwrap_or_default(),
            obj.link.as_ref().map(|l| l.target_column_pos).unwrap_or(0),
        ));
        s.push_str("keys = set()\n");
        s.push_str(&format!(
            "for base in base_rows:\n    keys.add('cg:{}:' + ':'.join(str(base[c]) for c in key_columns))\n",
            obj.def.name
        ));
    } else {
        s.push_str(&format!(
            "cache_key = 'cg:{}:' + ':'.join(str(row[c]) for c in key_columns)\n",
            obj.def.name
        ));
        s.push_str("keys = [cache_key]\n");
    }
    if obj.def.strategy == ConsistencyStrategy::Invalidate {
        s.push_str("for key in keys:\n");
        s.push_str("    cache.delete(key)\n");
        return s;
    }
    s.push_str("for key in keys:\n");
    s.push_str("    while True:\n");
    s.push_str("        (cached, cas_token) = cache.gets(key)\n");
    s.push_str("        if cached is None:\n");
    s.push_str("            break  # nothing cached; next read repopulates\n");
    match &obj.def.kind {
        CacheClassKind::Count => {
            let delta = match event {
                TriggerEvent::Insert => "+1",
                TriggerEvent::Delete => "-1",
                TriggerEvent::Update => "0  # adjusted when key columns move",
            };
            s.push_str(&format!("        cached = cached {delta}\n"));
        }
        CacheClassKind::TopK {
            sort_field,
            k,
            reserve,
            ..
        } => {
            s.push_str(&format!("        sort_column = '{sort_field}'\n"));
            s.push_str(&format!("        capacity = {k} + {reserve}\n"));
            match event {
                TriggerEvent::Insert => {
                    s.push_str("        insert_pos = 0\n");
                    s.push_str("        for cached_row in cached:\n");
                    s.push_str("            if row[sort_column] > cached_row[sort_column]:\n");
                    s.push_str("                break\n");
                    s.push_str("            insert_pos += 1\n");
                    s.push_str("        if insert_pos < len(cached) or cached.complete:\n");
                    s.push_str("            cached.insert(insert_pos, row)\n");
                    s.push_str("            del cached[capacity:]\n");
                }
                TriggerEvent::Delete => {
                    s.push_str("        cached = [r for r in cached if r['id'] != row['id']]\n");
                    s.push_str(&format!(
                        "        if len(cached) < {k} and not cached.complete:\n"
                    ));
                    s.push_str("            cache.delete(key)  # reserve exhausted\n");
                    s.push_str("            break\n");
                }
                TriggerEvent::Update => {
                    s.push_str("        cached = [r for r in cached if r['id'] != row['id']]\n");
                    s.push_str("        # reinsert at the new sort position\n");
                    s.push_str("        insert_pos = bisect(cached, row[sort_column])\n");
                    s.push_str("        cached.insert(insert_pos, row)\n");
                }
            }
        }
        _ => match event {
            TriggerEvent::Insert => {
                s.push_str("        cached.append(row)\n");
            }
            TriggerEvent::Delete => {
                s.push_str("        cached = [r for r in cached if r['id'] != row['id']]\n");
            }
            TriggerEvent::Update => {
                s.push_str(
                    "        cached = [row if r['id'] == row['id'] else r for r in cached]\n",
                );
            }
        },
    }
    s.push_str("        if cache.cas(key, cached, cas_token):\n");
    s.push_str("            break\n");
    s.push_str("        # CAS lost the race: reread and retry\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{CacheableDef, SortOrder};
    use genie_orm::{FieldDef, ModelDef, ModelRegistry};
    use genie_storage::ValueType;

    fn registry() -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        reg.register(
            ModelDef::builder("User", "users")
                .field(FieldDef::new("name", ValueType::Text))
                .build(),
        )
        .unwrap();
        reg.register(
            ModelDef::builder("WallPost", "wall")
                .foreign_key("user_id", "User")
                .field(FieldDef::new("date_posted", ValueType::Timestamp))
                .build(),
        )
        .unwrap();
        reg
    }

    fn top_k_obj() -> Arc<ObjectInner> {
        Arc::new(
            ObjectInner::compile(
                CacheableDef::top_k(
                    "latest",
                    "WallPost",
                    "date_posted",
                    SortOrder::Descending,
                    3,
                )
                .where_fields(&["user_id"])
                .reserve(2),
                &registry(),
            )
            .unwrap(),
        )
    }

    fn post(id: i64, user: i64, ts: i64) -> Row {
        genie_storage::row![id, user, Value::Timestamp(ts)]
    }

    #[test]
    fn top_k_insert_positions() {
        let obj = top_k_obj();
        // Complete list of 2: insert in the middle and at the tail.
        let rows = vec![post(1, 7, 100), post(2, 7, 50)];
        let m = top_k_insert(&obj, rows.clone(), true, &post(3, 7, 75));
        match m {
            Mutation::Keep(Payload::TopK { rows, complete }) => {
                assert!(complete);
                let ts: Vec<i64> = rows
                    .iter()
                    .map(|r| r.get(2).as_timestamp().unwrap())
                    .collect();
                assert_eq!(ts, vec![100, 75, 50]);
            }
            _ => panic!("expected keep"),
        }
        // Tail insert allowed only when complete.
        match top_k_insert(&obj, rows.clone(), true, &post(4, 7, 10)) {
            Mutation::Keep(Payload::TopK { rows, .. }) => assert_eq!(rows.len(), 3),
            _ => panic!(),
        }
        match top_k_insert(&obj, rows, false, &post(4, 7, 10)) {
            Mutation::Noop => {}
            _ => panic!("tail insert into incomplete list must be a no-op"),
        }
    }

    #[test]
    fn top_k_insert_truncates_at_capacity() {
        let obj = top_k_obj(); // capacity 5
        let rows: Vec<Row> = (0..5).map(|i| post(i, 7, 100 - i)).collect();
        match top_k_insert(&obj, rows, true, &post(99, 7, 98)) {
            Mutation::Keep(Payload::TopK { rows, complete }) => {
                assert_eq!(rows.len(), 5);
                assert!(!complete, "truncation loses coverage");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn source_rendering_is_substantial_and_class_specific() {
        let obj = top_k_obj();
        let src = render_source(&obj, "wall", TriggerEvent::Insert, false);
        assert!(src.lines().count() >= 20, "{src}");
        assert!(src.contains("insert_pos"));
        assert!(src.contains("cas"));
        let del = render_source(&obj, "wall", TriggerEvent::Delete, false);
        assert!(del.contains("reserve exhausted"));
    }

    #[test]
    fn invalidate_strategy_renders_deletes_only() {
        let reg = registry();
        let obj = Arc::new(
            ObjectInner::compile(
                CacheableDef::feature("p", "WallPost")
                    .where_fields(&["user_id"])
                    .strategy(ConsistencyStrategy::Invalidate),
                &reg,
            )
            .unwrap(),
        );
        let src = render_source(&obj, "wall", TriggerEvent::Update, false);
        assert!(src.contains("cache.delete"));
        assert!(!src.contains("cas"));
    }

    #[test]
    fn expire_strategy_builds_no_triggers() {
        let reg = registry();
        let obj = Arc::new(
            ObjectInner::compile(
                CacheableDef::feature("p", "WallPost")
                    .where_fields(&["user_id"])
                    .strategy(ConsistencyStrategy::Expire { ttl: 30 }),
                &reg,
            )
            .unwrap(),
        );
        let cluster = genie_cache::CacheCluster::new(Default::default());
        let handle = cluster.handle(genie_cache::CacheOrigin::Trigger);
        let stats = Arc::new(GenieStats::new());
        let triggers = build_triggers(&obj, &handle, &stats, &GenieConfig::default());
        assert!(triggers.is_empty());
    }

    #[test]
    fn non_link_objects_get_three_triggers() {
        let obj = top_k_obj();
        let cluster = genie_cache::CacheCluster::new(Default::default());
        let handle = cluster.handle(genie_cache::CacheOrigin::Trigger);
        let stats = Arc::new(GenieStats::new());
        let triggers = build_triggers(&obj, &handle, &stats, &GenieConfig::default());
        assert_eq!(triggers.len(), 3);
        assert!(triggers.iter().all(|t| t.table == "wall"));
        assert!(triggers.iter().all(|t| t.source.is_some()));
    }
}
