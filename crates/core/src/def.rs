//! Cached-object definitions: the programmer's declaration surface.
//!
//! This is the paper's `cacheable(...)` call (§3.1): the developer names a
//! *cache class* (FeatureQuery, LinkQuery, CountQuery, TopKQuery), the main
//! model, the key fields, and optionally a consistency strategy — and
//! CacheGenie derives the query template, cache keys, and triggers.

use genie_storage::{Result, StorageError};

/// How a cached object is kept consistent with the database (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyStrategy {
    /// Triggers incrementally update the cached value in place — the
    /// paper's default, and the configuration it shows winning.
    #[default]
    UpdateInPlace,
    /// Triggers delete exactly the affected keys; the next read refetches.
    Invalidate,
    /// No triggers: entries simply expire after `ttl` (the "easy but
    /// insufficient for dynamic sites" baseline the paper describes).
    Expire {
        /// Relative TTL in the cache clock's unit.
        ttl: u64,
    },
}

/// Sort direction for Top-K objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Largest sort value first (newest-first feeds).
    Descending,
    /// Smallest first.
    Ascending,
}

/// One join step of a LinkQuery: `JOIN target ON
/// target.<target_col> = base.<base_col>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStep {
    /// The joined model name.
    pub target_model: String,
    /// Column on the base model.
    pub base_column: String,
    /// Column on the target model.
    pub target_column: String,
}

/// Class-specific definition data.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheClassKind {
    /// Read a (set of) row(s) of one model by equality on `where_fields`
    /// — e.g. a user's profile by `user_id` (§3.1 class 1).
    Feature,
    /// Traverse a relationship: base model filtered by `where_fields`,
    /// joined through `step` (§3.1 class 2).
    Link {
        /// The single join step (the paper's examples use one hop).
        step: LinkStep,
    },
    /// `COUNT(*)` of rows matching `where_fields` (§3.1 class 3).
    Count,
    /// Top-K rows by `sort_field`, kept incrementally with a reserve
    /// beyond K to absorb deletes (§3.1 class 4, §3.2 trigger example).
    TopK {
        /// Sort column on the main model.
        sort_field: String,
        /// Sort direction.
        order: SortOrder,
        /// How many rows the application reads.
        k: usize,
        /// Extra rows cached beyond `k` so deletes don't force immediate
        /// recomputation.
        reserve: usize,
    },
}

impl CacheClassKind {
    /// Short class name, used in generated trigger names and reports.
    pub fn class_name(&self) -> &'static str {
        match self {
            CacheClassKind::Feature => "FeatureQuery",
            CacheClassKind::Link { .. } => "LinkQuery",
            CacheClassKind::Count => "CountQuery",
            CacheClassKind::TopK { .. } => "TopKQuery",
        }
    }
}

/// A complete cached-object declaration. Build with the constructors and
/// pass to [`crate::CacheGenie::cacheable`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheableDef {
    /// Unique object name; becomes the cache key prefix.
    pub name: String,
    /// Main model (Django model name, not table name).
    pub main_model: String,
    /// Equality key fields on the main model, in key order.
    pub where_fields: Vec<String>,
    /// Class-specific data.
    pub kind: CacheClassKind,
    /// Consistency strategy.
    pub strategy: ConsistencyStrategy,
    /// When true, matching ORM queries are served from cache without code
    /// changes; when false the programmer calls `evaluate` explicitly
    /// (the paper's opt-out for strict-consistency call sites).
    pub use_transparently: bool,
}

impl CacheableDef {
    /// Declares a FeatureQuery cached object.
    pub fn feature(name: impl Into<String>, main_model: impl Into<String>) -> Self {
        CacheableDef {
            name: name.into(),
            main_model: main_model.into(),
            where_fields: Vec::new(),
            kind: CacheClassKind::Feature,
            strategy: ConsistencyStrategy::default(),
            use_transparently: true,
        }
    }

    /// Declares a CountQuery cached object.
    pub fn count(name: impl Into<String>, main_model: impl Into<String>) -> Self {
        CacheableDef {
            kind: CacheClassKind::Count,
            ..CacheableDef::feature(name, main_model)
        }
    }

    /// Declares a TopKQuery cached object ordered by `sort_field`.
    pub fn top_k(
        name: impl Into<String>,
        main_model: impl Into<String>,
        sort_field: impl Into<String>,
        order: SortOrder,
        k: usize,
    ) -> Self {
        CacheableDef {
            kind: CacheClassKind::TopK {
                sort_field: sort_field.into(),
                order,
                k,
                // The paper: "plus a few more, to allow for incremental
                // deletes". A quarter of K, at least 2.
                reserve: (k / 4).max(2),
            },
            ..CacheableDef::feature(name, main_model)
        }
    }

    /// Declares a LinkQuery cached object joining one related model.
    pub fn link(
        name: impl Into<String>,
        main_model: impl Into<String>,
        target_model: impl Into<String>,
        base_column: impl Into<String>,
        target_column: impl Into<String>,
    ) -> Self {
        CacheableDef {
            kind: CacheClassKind::Link {
                step: LinkStep {
                    target_model: target_model.into(),
                    base_column: base_column.into(),
                    target_column: target_column.into(),
                },
            },
            ..CacheableDef::feature(name, main_model)
        }
    }

    /// Sets the equality key fields (replaces previous).
    pub fn where_fields(mut self, fields: &[&str]) -> Self {
        self.where_fields = fields.iter().map(|f| (*f).to_owned()).collect();
        self
    }

    /// Sets the consistency strategy.
    pub fn strategy(mut self, strategy: ConsistencyStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the Top-K reserve size.
    ///
    /// # Panics
    ///
    /// Panics if the object is not a TopKQuery — a definition bug.
    pub fn reserve(mut self, reserve: usize) -> Self {
        match &mut self.kind {
            CacheClassKind::TopK { reserve: r, .. } => *r = reserve,
            other => panic!("reserve() on {} definition", other.class_name()),
        }
        self
    }

    /// Opts out of transparent interception (§3.3's per-object strict-
    /// consistency escape hatch).
    pub fn manual_only(mut self) -> Self {
        self.use_transparently = false;
        self
    }

    /// Validates structural invariants that don't need the model registry.
    ///
    /// # Errors
    ///
    /// [`StorageError::Parse`] describing the problem.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(StorageError::Parse("cached object needs a name".into()));
        }
        if self.where_fields.is_empty() {
            return Err(StorageError::Parse(format!(
                "cached object {:?} needs at least one where field",
                self.name
            )));
        }
        if let CacheClassKind::TopK { k, .. } = &self.kind {
            if *k == 0 {
                return Err(StorageError::Parse(format!(
                    "cached object {:?} has k = 0",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_kinds() {
        let f = CacheableDef::feature("user_profile", "Profile").where_fields(&["user_id"]);
        assert_eq!(f.kind.class_name(), "FeatureQuery");
        assert!(f.use_transparently);
        assert_eq!(f.strategy, ConsistencyStrategy::UpdateInPlace);

        let c = CacheableDef::count("friend_count", "Friendship").where_fields(&["user_id"]);
        assert_eq!(c.kind.class_name(), "CountQuery");

        let t = CacheableDef::top_k(
            "latest_posts",
            "WallPost",
            "date_posted",
            SortOrder::Descending,
            20,
        )
        .where_fields(&["user_id"]);
        match &t.kind {
            CacheClassKind::TopK { k, reserve, .. } => {
                assert_eq!(*k, 20);
                assert_eq!(*reserve, 5);
            }
            _ => panic!(),
        }

        let l = CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
            .where_fields(&["user_id"]);
        assert_eq!(l.kind.class_name(), "LinkQuery");
    }

    #[test]
    fn validation_catches_misuse() {
        assert!(
            CacheableDef::feature("x", "M").validate().is_err(),
            "no key fields"
        );
        assert!(CacheableDef::feature("", "M")
            .where_fields(&["a"])
            .validate()
            .is_err());
        assert!(CacheableDef::top_k("t", "M", "s", SortOrder::Ascending, 0)
            .where_fields(&["a"])
            .validate()
            .is_err());
        assert!(CacheableDef::feature("ok", "M")
            .where_fields(&["a"])
            .validate()
            .is_ok());
    }

    #[test]
    fn reserve_override() {
        let t = CacheableDef::top_k("t", "M", "s", SortOrder::Descending, 20)
            .where_fields(&["u"])
            .reserve(7);
        match t.kind {
            CacheClassKind::TopK { reserve, .. } => assert_eq!(reserve, 7),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "reserve() on FeatureQuery")]
    fn reserve_on_feature_panics() {
        let _ = CacheableDef::feature("f", "M").reserve(3);
    }

    #[test]
    fn manual_only_flag() {
        let d = CacheableDef::feature("f", "M")
            .where_fields(&["a"])
            .manual_only();
        assert!(!d.use_transparently);
    }
}
