//! Strict transactional consistency over the cache — the §3.3 extension.
//!
//! The paper *describes* (but does not implement) full serializability:
//! the cache tracks `readers_k`/`writer_k` per key, transactions follow
//! two-phase locking on cache keys, deadlocks are broken by timeout, and
//! an aborting transaction removes the keys it wrote so subsequent reads
//! go to the database. This module implements that protocol on top of
//! [`genie_cache::KeyLockTable`].
//!
//! Blocking is cooperative (the benchmark driver runs in virtual time):
//! lock attempts retry up to a bound, and exhaustion maps to the paper's
//! timeout-based deadlock detection — the transaction aborts.
//!
//! Hot-key replication (docs/CACHE_TIER.md) does not change this
//! protocol: locks are taken on *logical* cache keys, and every write to
//! a replicated key updates all copies under the cluster's per-key lease
//! shard before the lock is released. A lock on the logical key
//! therefore covers every physical replica by construction.

use crate::genie::{CacheGenie, EvalOutcome};
use genie_cache::{KeyLockTable, LockOutcome, TxnId};
use genie_storage::{Result, StorageError, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Terminal state of a strict transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All locks released after a successful commit.
    Committed,
    /// Locks released; written keys dropped from the cache.
    Aborted,
}

struct StrictShared {
    locks: KeyLockTable,
    next_tid: AtomicU64,
}

/// Issues strict transactions; share one manager per cache cluster.
#[derive(Clone)]
pub struct StrictTxnManager {
    shared: Arc<StrictShared>,
    /// Lock acquisition attempts before declaring deadlock-by-timeout.
    pub lock_attempts: usize,
}

impl Default for StrictTxnManager {
    fn default() -> Self {
        StrictTxnManager::new()
    }
}

impl std::fmt::Debug for StrictTxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrictTxnManager")
            .field("lock_attempts", &self.lock_attempts)
            .finish()
    }
}

impl StrictTxnManager {
    /// Creates a manager with the default timeout budget.
    pub fn new() -> Self {
        StrictTxnManager {
            shared: Arc::new(StrictShared {
                locks: KeyLockTable::new(),
                next_tid: AtomicU64::new(1),
            }),
            lock_attempts: 3,
        }
    }

    /// Begins a transaction against `genie`'s cache.
    pub fn begin(&self, genie: &CacheGenie) -> StrictTxn {
        StrictTxn {
            tid: self.shared.next_tid.fetch_add(1, Ordering::Relaxed),
            shared: Arc::clone(&self.shared),
            genie: genie.clone(),
            lock_attempts: self.lock_attempts,
            written: Vec::new(),
            done: false,
        }
    }

    /// Keys currently locked (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.shared.locks.locked_keys()
    }

    /// Allocates a transaction id for the commit-time effect pipeline
    /// (the database side of the paper's §3.3 agreed-txn-id protocol).
    pub(crate) fn alloc_tid(&self) -> TxnId {
        self.shared.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    /// Acquires a write lock for `tid` on `key` within the attempt
    /// budget; `false` means deadlock-by-timeout (the caller aborts).
    pub(crate) fn acquire_write(&self, tid: TxnId, key: &str) -> bool {
        for _ in 0..self.lock_attempts.max(1) {
            if self.shared.locks.try_write(tid, key) == LockOutcome::Granted {
                return true;
            }
        }
        false
    }

    /// Releases every lock `tid` holds (2PL shrinking phase).
    pub(crate) fn release(&self, tid: TxnId) {
        self.shared.locks.release_all(tid);
    }
}

/// One strict transaction. Reads acquire read locks on cache keys before
/// consulting the cache; writes must acquire write locks before the
/// database write whose triggers will touch those keys. Dropping without
/// committing aborts.
pub struct StrictTxn {
    tid: TxnId,
    shared: Arc<StrictShared>,
    genie: CacheGenie,
    lock_attempts: usize,
    written: Vec<String>,
    done: bool,
}

impl std::fmt::Debug for StrictTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrictTxn")
            .field("tid", &self.tid)
            .field("written", &self.written.len())
            .finish()
    }
}

impl StrictTxn {
    /// The transaction id agreed between application and database (§3.3).
    pub fn tid(&self) -> TxnId {
        self.tid
    }

    /// Reads a cached object under a read lock.
    ///
    /// # Errors
    ///
    /// [`StorageError::LockTimeout`] when the lock cannot be acquired
    /// within the attempt budget (deadlock-by-timeout) — the caller should
    /// [`StrictTxn::abort`]. Also unknown-object and database errors.
    pub fn read(&mut self, object: &str, params: &[Value]) -> Result<EvalOutcome> {
        let key = self.genie.key_for(object, params)?;
        self.acquire(&key, false)?;
        self.genie.evaluate(object, params)
    }

    /// Acquires a write lock on the cache key a database write is about
    /// to touch. Call before the write statement.
    ///
    /// # Errors
    ///
    /// [`StorageError::LockTimeout`] on lock-budget exhaustion.
    pub fn write_lock(&mut self, object: &str, params: &[Value]) -> Result<()> {
        let key = self.genie.key_for(object, params)?;
        self.acquire(&key, true)?;
        self.written.push(key);
        Ok(())
    }

    /// Commits: releases every lock.
    pub fn commit(mut self) -> TxnOutcome {
        self.shared.locks.release_all(self.tid);
        self.done = true;
        TxnOutcome::Committed
    }

    /// Aborts: releases locks and removes written keys from the cache so
    /// the next reader refetches committed data from the database.
    pub fn abort(mut self) -> TxnOutcome {
        self.abort_inner();
        self.done = true;
        TxnOutcome::Aborted
    }

    fn abort_inner(&mut self) {
        let written = self.shared.locks.release_all(self.tid);
        let cache = self
            .genie
            .cluster()
            .handle(genie_cache::CacheOrigin::Application);
        for key in written.iter().chain(self.written.iter()) {
            cache.delete(key);
        }
        self.written.clear();
    }

    fn acquire(&self, key: &str, write: bool) -> Result<()> {
        for _ in 0..self.lock_attempts.max(1) {
            let outcome = if write {
                self.shared.locks.try_write(self.tid, key)
            } else {
                self.shared.locks.try_read(self.tid, key)
            };
            if outcome == LockOutcome::Granted {
                return Ok(());
            }
        }
        Err(StorageError::LockTimeout {
            table: key.to_owned(),
        })
    }
}

impl Drop for StrictTxn {
    fn drop(&mut self) {
        if !self.done {
            self.abort_inner();
        }
    }
}
