//! The CacheGenie middleware registry: declaration, interception, and
//! read-through fill.

use crate::def::{CacheClassKind, CacheableDef};
use crate::object::ObjectInner;
use crate::stats::{GenieStats, GenieStatsSnapshot};
use crate::strict::StrictTxnManager;
use crate::triggers::build_triggers;
use genie_cache::{CacheCluster, CacheHandle, CacheOrigin, Payload};
use genie_orm::{InterceptOutcome, ModelRegistry, OrmSession, QueryInterceptor};
use genie_storage::{
    CommitHook, CostReport, Database, DeferredPublish, QueryResult, Result, Row, Select,
    StorageError, Value,
};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// CacheGenie tuning knobs.
#[derive(Debug, Clone)]
pub struct GenieConfig {
    /// Model the paper's proposed optimization of reusing memcached
    /// connections across trigger firings (§5.3/§5.5 future work). When
    /// true, triggers charge no connection-open cost.
    pub reuse_trigger_connections: bool,
    /// Bounded retries for the gets/cas loop before falling back to
    /// invalidation.
    pub cas_retry_limit: usize,
}

impl Default for GenieConfig {
    fn default() -> Self {
        GenieConfig {
            reuse_trigger_connections: false,
            cas_retry_limit: 8,
        }
    }
}

/// Result of a manual [`CacheGenie::evaluate`] call.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Result in executor shape (columns + rows).
    pub result: QueryResult,
    /// True if served without touching the database.
    pub from_cache: bool,
    /// Cache operations performed.
    pub cache_ops: u64,
    /// Database work, if any.
    pub db_cost: CostReport,
}

struct GenieShared {
    db: Database,
    cluster: CacheCluster,
    app_cache: CacheHandle,
    registry: Arc<ModelRegistry>,
    config: GenieConfig,
    stats: Arc<GenieStats>,
    /// The commit-time cache-effect pipeline registered on the database.
    pipeline: Arc<EffectPipeline>,
    /// fingerprint (canonical SQL) -> object.
    by_fingerprint: RwLock<HashMap<String, Arc<ObjectInner>>>,
    /// object name -> object.
    by_name: RwLock<HashMap<String, Arc<ObjectInner>>>,
    /// Tables with at least one cached object (fast reject for Pass).
    tables: RwLock<HashSet<String>>,
}

/// Per-key flush gate: a committing transaction *reserves* a ticket on
/// each of its touched cache keys while still under the engine latch (a
/// non-blocking enqueue, so reservation order equals commit order), and
/// the deferred publication step — running after the latch drops —
/// waits until its ticket reaches the front of every key's queue. Two
/// committing writers therefore never interleave physical cache
/// operations on one key, per-key publication order matches commit
/// order, and nothing ever blocks while holding the engine latch. A
/// publisher waits only on strictly earlier tickets, so gate waits are
/// acyclic and cannot deadlock.
#[derive(Default)]
struct FlushGate {
    state: StdMutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Key -> FIFO of reserved tickets (front = next to publish).
    queues: HashMap<String, VecDeque<u64>>,
    next_ticket: u64,
}

impl FlushGate {
    /// Enqueues one ticket on every key. Called under the engine latch;
    /// never blocks.
    fn reserve(&self, keys: &BTreeSet<String>) -> u64 {
        let mut st = self.state.lock().unwrap();
        st.next_ticket += 1;
        let ticket = st.next_ticket;
        for key in keys {
            st.queues.entry(key.clone()).or_default().push_back(ticket);
        }
        ticket
    }

    /// Blocks until `ticket` is at the front of every key's queue.
    /// Called by the deferred publish step, outside the latch.
    fn await_turn(&self, keys: &BTreeSet<String>, ticket: u64) {
        let mut st = self.state.lock().unwrap();
        loop {
            let ready = keys
                .iter()
                .all(|k| st.queues.get(k).and_then(|q| q.front()) == Some(&ticket));
            if ready {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Pops `ticket` off every key's queue and wakes waiting publishers.
    fn release(&self, keys: &BTreeSet<String>, ticket: u64) {
        let mut st = self.state.lock().unwrap();
        for key in keys {
            if let Some(q) = st.queues.get_mut(key) {
                if let Some(pos) = q.iter().position(|&t| t == ticket) {
                    q.remove(pos);
                }
                if q.is_empty() {
                    st.queues.remove(key);
                }
            }
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// The database-side half of the transactional consistency guarantee:
/// registered as the engine's [`CommitHook`], it brackets commit-time
/// trigger firing with a cluster effect batch so a transaction's cache
/// effects publish atomically (per-key coalesced) on COMMIT and never on
/// abort. Publication itself is deferred: `commit_apply` seals the batch
/// and reserves the touched keys' publication slots in the [`FlushGate`]
/// under the engine latch (non-blocking), and the returned closure waits
/// for its turn and performs the store writes after the latch drops.
/// With a [`StrictTxnManager`] wired in, the flush additionally runs
/// under §3.3 2PL write locks on the touched keys — lock timeout aborts
/// the transaction.
///
/// Deliberately holds no reference back to the [`Database`] (which owns
/// the hook) — only the cluster, stats, gate, and lock table.
struct EffectPipeline {
    cluster: CacheCluster,
    stats: Arc<GenieStats>,
    strict: RwLock<Option<StrictTxnManager>>,
    flush_gate: Arc<FlushGate>,
}

impl EffectPipeline {
    /// Folds the sealed batch into stats and rewrites the commit's
    /// cache-op accounting from the bodies' per-effect counts to the
    /// physical (coalesced) numbers.
    fn settle(&self, summary: genie_cache::EffectBatchSummary, cost: &mut CostReport) {
        let naive = cost.trigger_cache_ops.max(summary.naive_ops());
        let physical = summary.physical_ops();
        if naive == 0 && physical == 0 {
            return; // nothing buffered (e.g. NoCache mode / no triggers)
        }
        self.stats.bump(&self.stats.commit_batches);
        self.stats.add(&self.stats.commit_cache_ops, physical);
        self.stats.add(&self.stats.commit_cache_ops_naive, naive);
        cost.trigger_cache_ops = physical;
        // One pooled connection serves the whole group commit (the
        // per-firing opens the paper measured collapse with the batch).
        cost.trigger_connections = cost.trigger_connections.min(1);
    }
}

impl CommitHook for EffectPipeline {
    fn begin_apply(&self) {
        self.cluster.begin_effect_batch();
    }

    fn commit_apply(&self, cost: &mut CostReport, txn_commit: bool) -> Result<DeferredPublish> {
        // Optional §3.3 strict mode: 2PL write locks on the touched keys,
        // shared with application-side StrictTxns. Bounded attempts model
        // deadlock-by-timeout; exhaustion aborts the transaction.
        let mut strict_pair = None;
        if let Some(mgr) = self.strict.read().clone() {
            let mut keys = self.cluster.effect_batch_keys();
            keys.sort();
            let tid = mgr.alloc_tid();
            for key in &keys {
                if !mgr.acquire_write(tid, key) {
                    mgr.release(tid);
                    self.cluster.discard_effect_batch();
                    self.stats.bump(&self.stats.commit_aborts);
                    return Err(StorageError::LockTimeout { table: key.clone() });
                }
            }
            strict_pair = Some((mgr, tid));
        }
        let Some(prepared) = self.cluster.take_effect_batch() else {
            if let Some((mgr, tid)) = strict_pair {
                mgr.release(tid);
            }
            return Ok(None);
        };
        if txn_commit {
            // Autocommitted statements keep their per-statement
            // accounting (the paper's measured per-firing costs); only a
            // transaction's COMMIT reports the group-coalesced numbers.
            self.settle(prepared.summary(), cost);
        }
        if prepared.is_empty() && strict_pair.is_none() {
            return Ok(None);
        }
        let keys: BTreeSet<String> = prepared.keys().into_iter().collect();
        // Reservation (non-blocking, under the latch) pins this commit's
        // per-key publication slot; the wait happens in the deferred
        // step, after the engine releases its latch.
        let ticket = self.flush_gate.reserve(&keys);
        let gate = Arc::clone(&self.flush_gate);
        Ok(Some(Box::new(move || {
            gate.await_turn(&keys, ticket);
            prepared.publish();
            gate.release(&keys, ticket);
            if let Some((mgr, tid)) = strict_pair {
                mgr.release(tid);
            }
        })))
    }

    fn abort_apply(&self) {
        let discarded = self.cluster.discard_effect_batch();
        if discarded.naive_ops() > 0 {
            self.stats.bump(&self.stats.commit_aborts);
        }
    }
}

/// The caching middleware (Figure 1c): declare cached objects with
/// [`CacheGenie::cacheable`], install on a session with
/// [`CacheGenie::install`], and the rest — query generation, trigger
/// generation, transparent interception, read-through fill, incremental
/// consistency — is automatic.
///
/// # Example
///
/// ```
/// use cachegenie::{CacheGenie, CacheableDef, GenieConfig};
/// use genie_cache::{CacheCluster, ClusterConfig};
/// use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
/// use genie_storage::{Database, Value, ValueType};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), genie_storage::StorageError> {
/// let mut registry = ModelRegistry::new();
/// registry.register(
///     ModelDef::builder("Profile", "profiles")
///         .field(FieldDef::new("user_id", ValueType::Int).indexed())
///         .field(FieldDef::new("bio", ValueType::Text))
///         .build(),
/// )?;
/// let registry = Arc::new(registry);
/// let db = Database::default();
/// registry.sync(&db)?;
/// let session = OrmSession::new(db.clone(), Arc::clone(&registry));
///
/// let genie = CacheGenie::new(
///     db,
///     CacheCluster::new(ClusterConfig::default()),
///     registry,
///     GenieConfig::default(),
/// );
/// // The paper's profile example: one declaration, no other app changes.
/// genie.cacheable(
///     CacheableDef::feature("cached_user_profile", "Profile").where_fields(&["user_id"]),
/// )?;
/// genie.install(&session);
///
/// session.create("Profile", &[("user_id", Value::Int(42)), ("bio", "hi".into())])?;
/// let qs = session.objects("Profile")?.filter_eq("user_id", 42i64);
/// let miss = session.all(&qs)?; // fills the cache
/// let hit = session.all(&qs)?;  // served from memcached-alike
/// assert!(!miss.from_cache && hit.from_cache);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CacheGenie {
    shared: Arc<GenieShared>,
}

impl std::fmt::Debug for CacheGenie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheGenie")
            .field("objects", &self.shared.by_name.read().len())
            .finish()
    }
}

impl CacheGenie {
    /// Creates the middleware over a database, cache cluster, and model
    /// registry.
    pub fn new(
        db: Database,
        cluster: CacheCluster,
        registry: Arc<ModelRegistry>,
        config: GenieConfig,
    ) -> Self {
        let app_cache = cluster.handle(CacheOrigin::Application);
        let stats = Arc::new(GenieStats::new());
        let pipeline = Arc::new(EffectPipeline {
            cluster: cluster.clone(),
            stats: Arc::clone(&stats),
            strict: RwLock::new(None),
            flush_gate: Arc::new(FlushGate::default()),
        });
        db.set_commit_hook(Arc::clone(&pipeline) as Arc<dyn CommitHook>);
        CacheGenie {
            shared: Arc::new(GenieShared {
                db,
                cluster,
                app_cache,
                registry,
                config,
                stats,
                pipeline,
                by_fingerprint: RwLock::new(HashMap::new()),
                by_name: RwLock::new(HashMap::new()),
                tables: RwLock::new(HashSet::new()),
            }),
        }
    }

    /// Wires the §3.3 strict-consistency extension into the commit
    /// pipeline: publishing a transaction's cache effects write-locks the
    /// touched keys through `manager`'s lock table (two-phase locking),
    /// and a lock timeout aborts the whole database transaction. Share
    /// one manager between application-side [`crate::StrictTxn`]s and
    /// this hook so both sides agree on the locks.
    pub fn set_strict_commit(&self, manager: &StrictTxnManager) {
        *self.shared.pipeline.strict.write() = Some(manager.clone());
    }

    /// Declares a cached object: compiles the query template, registers it
    /// for interception, and installs the consistency triggers — the
    /// entire `cacheable(...)` call from §3.1.
    ///
    /// # Errors
    ///
    /// Validation errors, unknown models/fields, or duplicate names.
    pub fn cacheable(&self, def: CacheableDef) -> Result<()> {
        if def.name.contains(':') {
            return Err(StorageError::Parse(
                "cached object names must not contain ':'".into(),
            ));
        }
        if self.shared.by_name.read().contains_key(&def.name) {
            return Err(StorageError::AlreadyExists(def.name));
        }
        let obj = Arc::new(ObjectInner::compile(def, &self.shared.registry)?);
        let trigger_handle = self.shared.cluster.handle(CacheOrigin::Trigger);
        for trigger in build_triggers(
            &obj,
            &trigger_handle,
            &self.shared.stats,
            &self.shared.config,
        ) {
            self.shared.db.create_trigger(trigger)?;
        }
        self.shared
            .by_fingerprint
            .write()
            .insert(obj.fingerprint.clone(), Arc::clone(&obj));
        self.shared.tables.write().insert(obj.table.clone());
        self.shared
            .by_name
            .write()
            .insert(obj.def.name.clone(), obj);
        Ok(())
    }

    /// Installs this middleware as the session's query interceptor.
    pub fn install(&self, session: &OrmSession) {
        session.set_interceptor(Arc::new(self.clone()));
    }

    /// Evaluates a cached object by name with concrete key values — the
    /// manual path for objects declared with
    /// [`CacheableDef::manual_only`].
    ///
    /// # Errors
    ///
    /// Unknown object names and database errors.
    pub fn evaluate(&self, name: &str, params: &[Value]) -> Result<EvalOutcome> {
        let obj = self
            .shared
            .by_name
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownIndex(format!("cached object {name}")))?;
        self.shared.serve(&obj, params)
    }

    /// The cache key a cached object uses for concrete key values —
    /// needed by the strict-consistency extension to lock keys, and handy
    /// for diagnostics.
    ///
    /// # Errors
    ///
    /// Unknown object names.
    pub fn key_for(&self, name: &str, params: &[Value]) -> Result<String> {
        let obj = self
            .shared
            .by_name
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownIndex(format!("cached object {name}")))?;
        Ok(obj.make_key(params))
    }

    /// Cross-checks one cached object instance against the database: re-
    /// evaluates the object's query fresh and compares it to whatever the
    /// cache currently holds under its key. `Ok(true)` means coherent —
    /// the key is absent, unservable (a short Top-K that a read would
    /// recompute), or byte-equal to the database answer. Run it on a
    /// quiescent system (e.g. after a concurrency experiment joins its
    /// writer threads) — a check racing live commits can report
    /// transient mismatches that are not violations.
    ///
    /// # Errors
    ///
    /// Unknown object names and database errors.
    pub fn verify_coherence(&self, name: &str, params: &[Value]) -> Result<bool> {
        let obj = self
            .shared
            .by_name
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownIndex(format!("cached object {name}")))?;
        let key = obj.make_key(params);
        // A hot key replicated across servers must have byte-identical
        // copies everywhere before the primary's content is even judged
        // — a diverged replica is a violation regardless of what the
        // primary says.
        if !self.shared.cluster.replicas_coherent(&key) {
            return Ok(false);
        }
        let cached = match self.shared.app_cache.get_payload(&key) {
            Ok(Some(p)) => p,
            // Absent is always coherent; undecodable bytes are a
            // violation (nothing the engine writes should be corrupt).
            Ok(None) => return Ok(true),
            Err(_) => return Ok(false),
        };
        match &obj.def.kind {
            CacheClassKind::Count => {
                let out = self.shared.db.select(&obj.template, params)?;
                let n = out.result.scalar().and_then(|v| v.as_int()).unwrap_or(0);
                Ok(matches!(cached, Payload::Count(c) if c == n))
            }
            CacheClassKind::TopK { .. } => {
                let Payload::TopK { rows, complete } = cached else {
                    return Ok(false);
                };
                let k = obj.k();
                if rows.len() < k && !complete {
                    // A read would treat this as a miss and recompute.
                    return Ok(true);
                }
                let fill = obj.fill_template.as_ref().expect("TopK has fill template");
                let out = self.shared.db.select(fill, params)?;
                let want: Vec<Row> = out.result.rows.into_iter().take(k).collect();
                let got: Vec<Row> = rows.into_iter().take(k).collect();
                Ok(got == want)
            }
            _ => {
                let Payload::Rows(rows) = cached else {
                    return Ok(false);
                };
                let out = self.shared.db.select(&obj.template, params)?;
                Ok(rows == out.result.rows)
            }
        }
    }

    /// Point-in-time statistics, with the cache tier's store-level and
    /// replication counters merged in from the cluster.
    pub fn stats(&self) -> GenieStatsSnapshot {
        let mut snap = self.shared.stats.snapshot();
        let cs = self.shared.cluster.stats();
        snap.store_app_hits = cs.store.app_hits;
        snap.store_app_misses = cs.store.app_misses;
        snap.store_trigger_hits = cs.store.trigger_hits;
        snap.store_trigger_misses = cs.store.trigger_misses;
        snap.cache_replica_reads = cs.replica_reads;
        snap.cache_hot_promotions = cs.hot_key_promotions;
        snap
    }

    /// Zeroes statistics (between warm-up and measurement).
    pub fn reset_stats(&self) {
        self.shared.stats.reset();
    }

    /// Number of declared cached objects.
    pub fn object_count(&self) -> usize {
        self.shared.by_name.read().len()
    }

    /// Declared object names, sorted.
    pub fn object_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.by_name.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total generated trigger-source lines across declared objects (the
    /// paper's §5.2 programmer-effort metric).
    pub fn generated_trigger_lines(&self) -> usize {
        self.shared.db.trigger_source_lines()
    }

    /// Number of installed triggers.
    pub fn trigger_count(&self) -> usize {
        self.shared.db.trigger_count()
    }

    /// The cache cluster (for stats and experiment plumbing).
    pub fn cluster(&self) -> &CacheCluster {
        &self.shared.cluster
    }
}

impl GenieShared {
    /// Propagates a database read made under a fill lease, cancelling
    /// the lease on error so a read that will never complete its fill
    /// does not leave a phantom entry in the lease table.
    fn lease_read<T>(&self, key: &str, lease: u64, read: Result<T>) -> Result<T> {
        if read.is_err() {
            self.cluster.cancel_lease(key, lease);
        }
        read
    }

    /// Books a completed [`genie_cache::CacheHandle::fill`] attempt: a
    /// landed fill counts as a fill, a lease-revoked one as a drop (a
    /// concurrent writer published fresher data first).
    fn record_fill(&self, landed: genie_cache::Result<bool>) {
        match landed {
            Ok(true) | Err(_) => self.stats.bump(&self.stats.fills),
            Ok(false) => self.stats.bump(&self.stats.fills_dropped),
        }
    }

    /// Serves one cached object for concrete key values: cache hit,
    /// read-through fill, or (Top-K) internal over-fetch.
    fn serve(&self, obj: &Arc<ObjectInner>, params: &[Value]) -> Result<EvalOutcome> {
        // While a transaction is open, bypass the cache entirely: a fill
        // would publish uncommitted rows (dirty on rollback), and a hit
        // could hide the transaction's own writes. The commit pipeline
        // publishes the effects when — and only when — the COMMIT lands.
        if self.db.in_transaction() {
            self.stats.bump(&self.stats.txn_bypasses);
            let out = self.db.select(&obj.template, params)?;
            let result = match &obj.def.kind {
                CacheClassKind::Count => {
                    count_result(out.result.scalar().and_then(|v| v.as_int()).unwrap_or(0))
                }
                _ => rows_result(obj, out.result.rows),
            };
            return Ok(EvalOutcome {
                result,
                from_cache: false,
                cache_ops: 0,
                db_cost: out.cost,
            });
        }
        let key = obj.make_key(params);
        match &obj.def.kind {
            CacheClassKind::TopK { .. } => self.serve_top_k(obj, &key, params),
            CacheClassKind::Count => {
                let mut cache_ops = 1;
                match self.app_cache.get_payload(&key) {
                    Ok(Some(Payload::Count(n))) => {
                        self.stats.bump(&self.stats.cache_hits);
                        return Ok(EvalOutcome {
                            result: count_result(n),
                            from_cache: true,
                            cache_ops,
                            db_cost: CostReport::new(),
                        });
                    }
                    Ok(Some(_)) | Err(_) => {
                        // Wrong shape or corrupt: drop and refill.
                        cache_ops += 1;
                        self.app_cache.delete(&key);
                    }
                    Ok(None) => {}
                }
                self.stats.bump(&self.stats.cache_misses);
                // Lease before the database read: a writer committing
                // between this read and the fill revokes the lease, so a
                // stale count can never land (see CacheHandle::fill).
                // Under MVCC the read no longer blocks behind open
                // writer transactions (it resolves a snapshot), so this
                // ordering alone carries the guarantee; the commit epoch
                // is published before the cache publication runs, so a
                // lease taken after a publish always reads fresh state
                // (docs/ISOLATION.md, core/tests/mvcc_fill.rs).
                let lease = self.cluster.lease(&key);
                let out = self.lease_read(&key, lease, self.db.select(&obj.template, params))?;
                let n = out.result.scalar().and_then(|v| v.as_int()).unwrap_or(0);
                cache_ops += 1;
                self.record_fill(self.app_cache.fill_payload(
                    &key,
                    &Payload::Count(n),
                    obj.fill_ttl(),
                    lease,
                ));
                Ok(EvalOutcome {
                    result: count_result(n),
                    from_cache: false,
                    cache_ops,
                    db_cost: out.cost,
                })
            }
            _ => {
                let mut cache_ops = 1;
                match self.app_cache.get_payload(&key) {
                    Ok(Some(Payload::Rows(rows))) => {
                        self.stats.bump(&self.stats.cache_hits);
                        return Ok(EvalOutcome {
                            result: rows_result(obj, rows),
                            from_cache: true,
                            cache_ops,
                            db_cost: CostReport::new(),
                        });
                    }
                    Ok(Some(_)) | Err(_) => {
                        cache_ops += 1;
                        self.app_cache.delete(&key);
                    }
                    Ok(None) => {}
                }
                self.stats.bump(&self.stats.cache_misses);
                let lease = self.cluster.lease(&key);
                let out = self.lease_read(&key, lease, self.db.select(&obj.template, params))?;
                cache_ops += 1;
                self.record_fill(self.app_cache.fill_payload(
                    &key,
                    &Payload::Rows(out.result.rows.clone()),
                    obj.fill_ttl(),
                    lease,
                ));
                Ok(EvalOutcome {
                    result: rows_result(obj, out.result.rows),
                    from_cache: false,
                    cache_ops,
                    db_cost: out.cost,
                })
            }
        }
    }

    fn serve_top_k(
        &self,
        obj: &Arc<ObjectInner>,
        key: &str,
        params: &[Value],
    ) -> Result<EvalOutcome> {
        let k = obj.k();
        let mut cache_ops = 1;
        match self.app_cache.get_payload(key) {
            Ok(Some(Payload::TopK { rows, complete })) if rows.len() >= k || complete => {
                self.stats.bump(&self.stats.cache_hits);
                let served: Vec<Row> = rows.into_iter().take(k).collect();
                return Ok(EvalOutcome {
                    result: rows_result(obj, served),
                    from_cache: true,
                    cache_ops,
                    db_cost: CostReport::new(),
                });
            }
            Ok(Some(_)) | Err(_) => {
                // Short (reserve gone) or wrong shape: recompute.
                cache_ops += 1;
                self.app_cache.delete(key);
            }
            Ok(None) => {}
        }
        self.stats.bump(&self.stats.cache_misses);
        // Over-fetch K + reserve for incremental delete headroom (§3.2).
        let lease = self.cluster.lease(key);
        let fill = obj.fill_template.as_ref().expect("TopK has fill template");
        let out = self.lease_read(key, lease, self.db.select(fill, params))?;
        let rows = out.result.rows;
        let complete = rows.len() < obj.capacity;
        cache_ops += 1;
        self.record_fill(self.app_cache.fill_payload(
            key,
            &Payload::TopK {
                rows: rows.clone(),
                complete,
            },
            obj.fill_ttl(),
            lease,
        ));
        let served: Vec<Row> = rows.into_iter().take(k).collect();
        Ok(EvalOutcome {
            result: rows_result(obj, served),
            from_cache: false,
            cache_ops,
            db_cost: out.cost,
        })
    }
}

fn rows_result(obj: &ObjectInner, rows: Vec<Row>) -> QueryResult {
    QueryResult {
        columns: obj.columns.clone(),
        rows,
        rows_affected: 0,
    }
}

fn count_result(n: i64) -> QueryResult {
    QueryResult {
        columns: vec!["count".to_owned()],
        rows: vec![Row::new(vec![Value::Int(n)])],
        rows_affected: 0,
    }
}

impl QueryInterceptor for CacheGenie {
    fn try_serve(&self, select: &Select, params: &[Value]) -> InterceptOutcome {
        // Fast reject: no cached object involves this base table.
        if !self.shared.tables.read().contains(&select.from.table) {
            return InterceptOutcome::Pass;
        }
        let fingerprint = select.to_string();
        let Some(obj) = self.shared.by_fingerprint.read().get(&fingerprint).cloned() else {
            return InterceptOutcome::Pass;
        };
        if !obj.def.use_transparently {
            return InterceptOutcome::Pass;
        }
        match self.shared.serve(&obj, params) {
            Ok(out) => InterceptOutcome::Served {
                result: out.result,
                cache_ops: out.cache_ops,
                db_cost: out.db_cost,
                from_cache: out.from_cache,
            },
            // Serving errors fall back to the plain database path.
            Err(_) => InterceptOutcome::Pass,
        }
    }

    fn fill(&self, _fill_key: &str, _result: &QueryResult) -> u64 {
        // Fills happen inside `serve` (the middleware issues its own
        // database query when needed), so the session-level fill path is
        // never used by CacheGenie.
        0
    }
}
