//! Compiled cached objects.
//!
//! A [`CacheableDef`] compiles against the model registry into an
//! `ObjectInner` (crate-private): the canonical query template (for interception
//! matching), the key-extraction positions (for triggers), and the
//! class-specific metadata. Compilation performs the paper's "query
//! generation" step of a cache class (§3.1 step 1).

use crate::def::{CacheClassKind, CacheableDef, SortOrder};
use genie_orm::{ModelRegistry, QuerySet};
use genie_storage::{Result, Row, Select, StorageError, Value};

/// Link-class compilation products.
#[derive(Debug, Clone)]
pub(crate) struct LinkInfo {
    /// Joined table name.
    pub target_table: String,
    /// Template: joined rows contributed by one base row
    /// (`... WHERE base.id = $1`).
    pub by_pk_template: Select,
    /// Template: base rows joining a given target column value
    /// (`SELECT * FROM base WHERE base.<base_column> = $1`).
    pub reverse_template: Select,
    /// Position of the join column in the *target* row.
    pub target_column_pos: usize,
}

/// A fully compiled cached object.
#[derive(Debug)]
pub(crate) struct ObjectInner {
    /// The original declaration.
    pub def: CacheableDef,
    /// Main model's table.
    pub table: String,
    /// Positions of `where_fields` in the main table's rows.
    pub key_positions: Vec<usize>,
    /// Number of columns in the main table.
    pub base_arity: usize,
    /// The canonical query template this object intercepts.
    pub template: Select,
    /// `template.to_string()` — the interception fingerprint.
    pub fingerprint: String,
    /// Output column names for served results.
    pub columns: Vec<String>,
    /// Top-K: position of the sort field in main rows.
    pub sort_position: Option<usize>,
    /// Top-K: `k + reserve`.
    pub capacity: usize,
    /// Top-K: template fetching `k + reserve` rows for fills.
    pub fill_template: Option<Select>,
    /// Link-class extras.
    pub link: Option<LinkInfo>,
}

impl ObjectInner {
    /// Compiles a definition against the registry.
    ///
    /// # Errors
    ///
    /// Unknown models/fields report the underlying storage errors;
    /// structural problems report [`StorageError::Parse`].
    pub fn compile(def: CacheableDef, registry: &ModelRegistry) -> Result<ObjectInner> {
        def.validate()?;
        let model = registry.model(&def.main_model)?.clone();
        let schema = model.to_schema()?;
        let base_cols = model.columns();
        let key_positions: Vec<usize> =
            def.where_fields
                .iter()
                .map(|f| {
                    base_cols.iter().position(|c| c == f).ok_or_else(|| {
                        StorageError::UnknownColumn {
                            table: model.table().to_owned(),
                            column: f.clone(),
                        }
                    })
                })
                .collect::<Result<_>>()?;
        let _ = schema; // validated model shape

        // Build the template with dummy parameters through the same
        // QuerySet machinery the application uses, guaranteeing identical
        // canonical SQL.
        let mut qs = QuerySet::new(model.clone());
        let mut link_info = None;
        let mut columns = base_cols.clone();
        if let CacheClassKind::Link { step } = &def.kind {
            let target = registry.model(&step.target_model)?.clone();
            let target_cols = target.columns();
            if !base_cols.iter().any(|c| c == &step.base_column) {
                return Err(StorageError::UnknownColumn {
                    table: model.table().to_owned(),
                    column: step.base_column.clone(),
                });
            }
            let target_column_pos = target_cols
                .iter()
                .position(|c| c == &step.target_column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: target.table().to_owned(),
                    column: step.target_column.clone(),
                })?;
            qs = qs.join_on(&target, &step.base_column, &step.target_column);
            columns.extend(target_cols.clone());

            let (by_pk_template, _) = QuerySet::new(model.clone())
                .join_on(&target, &step.base_column, &step.target_column)
                .filter_eq("id", 0i64)
                .compile();
            let (reverse_template, _) = QuerySet::new(model.clone())
                .filter_eq(&step.base_column, 0i64)
                .compile();
            link_info = Some(LinkInfo {
                target_table: target.table().to_owned(),
                by_pk_template,
                reverse_template,
                target_column_pos,
            });
        }
        for f in &def.where_fields {
            qs = qs.filter_eq(f.clone(), 0i64);
        }

        let mut sort_position = None;
        let mut capacity = 0;
        let mut fill_template = None;
        let (template, columns) = match &def.kind {
            CacheClassKind::Count => {
                let (sel, _) = qs.compile_count();
                (sel, vec!["count".to_owned()])
            }
            CacheClassKind::TopK {
                sort_field,
                order,
                k,
                reserve,
            } => {
                sort_position = Some(base_cols.iter().position(|c| c == sort_field).ok_or_else(
                    || StorageError::UnknownColumn {
                        table: model.table().to_owned(),
                        column: sort_field.clone(),
                    },
                )?);
                capacity = k + reserve;
                let spec = match order {
                    SortOrder::Descending => format!("-{sort_field}"),
                    SortOrder::Ascending => sort_field.clone(),
                };
                let (sel, _) = qs.clone().order_by(&spec).limit(*k as u64).compile();
                let (fill, _) = qs.order_by(&spec).limit(capacity as u64).compile();
                fill_template = Some(fill);
                (sel, columns)
            }
            _ => {
                let (sel, _) = qs.compile();
                (sel, columns)
            }
        };
        let fingerprint = template.to_string();
        Ok(ObjectInner {
            table: model.table().to_owned(),
            key_positions,
            base_arity: base_cols.len(),
            template,
            fingerprint,
            columns,
            sort_position,
            capacity,
            fill_template,
            link: link_info,
            def,
        })
    }

    /// The cache key for concrete key-field values.
    pub fn make_key(&self, values: &[Value]) -> String {
        let mut key = String::with_capacity(24 + self.def.name.len());
        key.push_str("cg:");
        key.push_str(&self.def.name);
        for v in values {
            key.push(':');
            render_key_value(&mut key, v);
        }
        key
    }

    /// The cache key a main-table row belongs to.
    pub fn key_from_row(&self, row: &Row) -> String {
        let vals: Vec<Value> = self
            .key_positions
            .iter()
            .map(|&p| row.get(p).clone())
            .collect();
        self.make_key(&vals)
    }

    /// Whether an UPDATE moved the row between cache keys.
    pub fn key_fields_changed(&self, old: &Row, new: &Row) -> bool {
        self.key_positions.iter().any(|&p| old.get(p) != new.get(p))
    }

    /// Top-K K (0 for other classes).
    pub fn k(&self) -> usize {
        match &self.def.kind {
            CacheClassKind::TopK { k, .. } => *k,
            _ => 0,
        }
    }

    /// TTL for `Expire` strategy fills.
    pub fn fill_ttl(&self) -> Option<u64> {
        match self.def.strategy {
            crate::def::ConsistencyStrategy::Expire { ttl } => Some(ttl),
            _ => None,
        }
    }

    /// Compares two main-table rows by the Top-K sort order; `Less` means
    /// `a` ranks ahead of `b` in the cached list.
    ///
    /// # Panics
    ///
    /// Panics on non-TopK objects (internal misuse).
    pub fn rank_cmp(&self, a: &Row, b: &Row) -> std::cmp::Ordering {
        let pos = self.sort_position.expect("rank_cmp on TopK objects only");
        let ord = a.get(pos).cmp(b.get(pos));
        match self.def.kind {
            CacheClassKind::TopK {
                order: SortOrder::Descending,
                ..
            } => ord.reverse(),
            _ => ord,
        }
    }
}

fn render_key_value(out: &mut String, v: &Value) {
    use std::fmt::Write;
    match v {
        Value::Null => out.push('~'),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            let _ = write!(out, "{f}");
        }
        Value::Text(s) => out.push_str(s),
        Value::Bool(b) => out.push_str(if *b { "t" } else { "f" }),
        Value::Timestamp(t) => {
            let _ = write!(out, "T{t}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{CacheableDef, SortOrder};
    use genie_orm::{FieldDef, ModelDef, ModelRegistry};
    use genie_storage::{row, ValueType};

    fn registry() -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        reg.register(
            ModelDef::builder("User", "users")
                .field(FieldDef::new("name", ValueType::Text))
                .build(),
        )
        .unwrap();
        reg.register(
            ModelDef::builder("WallPost", "wall")
                .foreign_key("user_id", "User")
                .field(FieldDef::new("content", ValueType::Text))
                .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
                .build(),
        )
        .unwrap();
        reg.register(
            ModelDef::builder("GroupMembership", "membership")
                .foreign_key("user_id", "User")
                .foreign_key("group_id", "Group")
                .build(),
        )
        .unwrap();
        reg.register(
            ModelDef::builder("Group", "groups")
                .field(FieldDef::new("title", ValueType::Text))
                .build(),
        )
        .unwrap();
        reg
    }

    #[test]
    fn feature_compiles_to_matching_template() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::feature("user_posts", "WallPost").where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(
            obj.fingerprint,
            "SELECT * FROM wall WHERE (wall.user_id = $1)"
        );
        assert_eq!(obj.key_positions, vec![1]);
        assert_eq!(obj.columns, vec!["id", "user_id", "content", "date_posted"]);
    }

    #[test]
    fn template_matches_application_queryset() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::top_k(
                "latest",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                20,
            )
            .where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        // The application's query with a real value compiles to the same
        // canonical SQL template.
        let (app_sel, app_params) = QuerySet::new(reg.model("WallPost").unwrap().clone())
            .filter_eq("user_id", 42i64)
            .order_by("-date_posted")
            .limit(20)
            .compile();
        assert_eq!(app_sel.to_string(), obj.fingerprint);
        assert_eq!(app_params, vec![Value::Int(42)]);
    }

    #[test]
    fn count_template_and_columns() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::count("post_count", "WallPost").where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(
            obj.fingerprint,
            "SELECT COUNT(*) FROM wall WHERE (wall.user_id = $1)"
        );
        assert_eq!(obj.columns, vec!["count"]);
    }

    #[test]
    fn top_k_capacity_and_fill_template() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::top_k(
                "latest",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                20,
            )
            .where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(obj.capacity, 25);
        assert_eq!(obj.sort_position, Some(3));
        let fill = obj.fill_template.as_ref().unwrap();
        assert!(fill.to_string().ends_with("LIMIT 25"), "{fill}");
        assert!(obj.fingerprint.ends_with("LIMIT 20"));
    }

    #[test]
    fn link_compiles_templates() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
                .where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(
            obj.fingerprint,
            "SELECT * FROM membership JOIN groups ON (groups.id = membership.group_id) WHERE (membership.user_id = $1)"
        );
        let link = obj.link.as_ref().unwrap();
        assert_eq!(link.target_table, "groups");
        assert!(link
            .by_pk_template
            .to_string()
            .contains("WHERE (membership.id = $1)"));
        assert_eq!(
            link.reverse_template.to_string(),
            "SELECT * FROM membership WHERE (membership.group_id = $1)"
        );
        assert_eq!(obj.columns.len(), 3 + 2); // membership(id,user_id,group_id) + groups(id,title)
    }

    #[test]
    fn key_construction_and_row_extraction() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::feature("posts", "WallPost").where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(obj.make_key(&[Value::Int(42)]), "cg:posts:42");
        // wall row: id, user_id, content, date_posted
        let row = row![7i64, 42i64, "hello", Value::Timestamp(5)];
        assert_eq!(obj.key_from_row(&row), "cg:posts:42");
        let moved = row![7i64, 43i64, "hello", Value::Timestamp(5)];
        assert!(obj.key_fields_changed(&row, &moved));
        assert!(!obj.key_fields_changed(&row, &row.clone()));
    }

    #[test]
    fn multi_field_keys() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::count("membership_count", "GroupMembership")
                .where_fields(&["user_id", "group_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(
            obj.make_key(&[Value::Int(1), Value::Int(2)]),
            "cg:membership_count:1:2"
        );
    }

    #[test]
    fn key_renders_all_value_types() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::feature("p", "WallPost").where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        assert_eq!(obj.make_key(&[Value::Text("bob".into())]), "cg:p:bob");
        assert_eq!(obj.make_key(&[Value::Bool(true)]), "cg:p:t");
        assert_eq!(obj.make_key(&[Value::Null]), "cg:p:~");
        assert_eq!(obj.make_key(&[Value::Timestamp(9)]), "cg:p:T9");
    }

    #[test]
    fn rank_cmp_respects_order() {
        let reg = registry();
        let obj = ObjectInner::compile(
            CacheableDef::top_k(
                "latest",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                5,
            )
            .where_fields(&["user_id"]),
            &reg,
        )
        .unwrap();
        let newer = row![1i64, 1i64, "a", Value::Timestamp(100)];
        let older = row![2i64, 1i64, "b", Value::Timestamp(50)];
        assert_eq!(obj.rank_cmp(&newer, &older), std::cmp::Ordering::Less);
    }

    #[test]
    fn unknown_field_rejected() {
        let reg = registry();
        let err = ObjectInner::compile(
            CacheableDef::feature("bad", "WallPost").where_fields(&["nope"]),
            &reg,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn unknown_model_rejected() {
        let reg = registry();
        assert!(ObjectInner::compile(
            CacheableDef::feature("bad", "Ghost").where_fields(&["x"]),
            &reg
        )
        .is_err());
    }
}
