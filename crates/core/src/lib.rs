//! # cachegenie
//!
//! The paper's primary contribution: **declarative caching abstractions
//! for ORM-based web applications with automatic, trigger-based cache
//! consistency** ("A Trigger-Based Middleware Cache for ORMs",
//! Gupta, Zeldovich, Madden — MIDDLEWARE 2011).
//!
//! The developer declares *cached objects* — instances of four cache
//! classes matching the query patterns ORMs emit:
//!
//! | Class | Caches | Example |
//! |---|---|---|
//! | [`CacheableDef::feature`] | rows matching key fields | a user's profile |
//! | [`CacheableDef::link`] | a join traversal | a user's groups |
//! | [`CacheableDef::count`] | `COUNT(*)` | number of friends |
//! | [`CacheableDef::top_k`] | first K by sort, with reserve | latest 20 wall posts |
//!
//! From one declaration CacheGenie derives (1) the SQL query template,
//! (2) the cache keys, (3) transparent interception of matching ORM
//! queries with read-through fill, and (4) **database triggers** on every
//! underlying table that keep exactly the affected keys consistent on
//! every write — by incremental **update-in-place** (default), precise
//! per-key **invalidation**, or TTL **expiry** ([`ConsistencyStrategy`]).
//!
//! The §3.3 strict-consistency design (two-phase locking over cache keys)
//! is implemented as an opt-in extension in [`strict`].

pub mod def;
pub mod genie;
pub mod object;
pub mod stats;
pub mod strict;
pub mod triggers;

pub use def::{CacheClassKind, CacheableDef, ConsistencyStrategy, LinkStep, SortOrder};
pub use genie::{CacheGenie, EvalOutcome, GenieConfig};
pub use stats::{GenieStats, GenieStatsSnapshot};
pub use strict::{StrictTxn, StrictTxnManager, TxnOutcome};
