//! CacheGenie runtime statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, updated by the interception path and by
/// trigger bodies.
#[derive(Debug, Default)]
pub struct GenieStats {
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) fills: AtomicU64,
    pub(crate) inplace_updates: AtomicU64,
    pub(crate) invalidations: AtomicU64,
    pub(crate) key_drops: AtomicU64,
    pub(crate) cas_conflicts: AtomicU64,
    pub(crate) trigger_noops: AtomicU64,
    pub(crate) commit_batches: AtomicU64,
    pub(crate) commit_cache_ops: AtomicU64,
    pub(crate) commit_cache_ops_naive: AtomicU64,
    pub(crate) commit_aborts: AtomicU64,
    pub(crate) txn_bypasses: AtomicU64,
    pub(crate) fills_dropped: AtomicU64,
}

/// A point-in-time copy of [`GenieStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenieStatsSnapshot {
    /// Intercepted queries answered from cache.
    pub cache_hits: u64,
    /// Intercepted queries that needed the database.
    pub cache_misses: u64,
    /// Read-through fills performed.
    pub fills: u64,
    /// Trigger-driven incremental updates applied in place.
    pub inplace_updates: u64,
    /// Trigger-driven key invalidations (Invalidate strategy, payload
    /// corruption, or class-specific fallbacks).
    pub invalidations: u64,
    /// Top-K keys dropped because the delete reserve was exhausted.
    pub key_drops: u64,
    /// CAS attempts that lost their race and retried.
    pub cas_conflicts: u64,
    /// Trigger firings that found nothing cached to maintain.
    pub trigger_noops: u64,
    /// Transactions whose cache effects were published through the
    /// commit-time batch pipeline.
    pub commit_batches: u64,
    /// Physical cache operations those commits performed (coalesced: one
    /// op per touched key plus backend reads during firing).
    pub commit_cache_ops: u64,
    /// What the same effects would have cost applied per statement — the
    /// naive baseline the coalescing saves against.
    pub commit_cache_ops_naive: u64,
    /// Commit-time aborts (failed trigger bodies or strict-mode lock
    /// timeouts); their buffered effects were discarded unpublished.
    pub commit_aborts: u64,
    /// Cached-object reads served straight from the database because a
    /// transaction was open (no dirty fills, own writes visible).
    pub txn_bypasses: u64,
    /// Read-through fills dropped because a committing writer invalidated
    /// the fill lease first (the fill would have cached a stale value).
    pub fills_dropped: u64,
    /// Store-level hits from application-origin reads, summed across the
    /// cache cluster (filled in by [`crate::CacheGenie::stats`]).
    pub store_app_hits: u64,
    /// Store-level misses from application-origin reads.
    pub store_app_misses: u64,
    /// Store-level hits from trigger-origin reads (maintenance traffic).
    pub store_trigger_hits: u64,
    /// Store-level misses from trigger-origin reads.
    pub store_trigger_misses: u64,
    /// Reads of replicated hot keys served by a non-primary copy.
    pub cache_replica_reads: u64,
    /// Keys the hot-key detector promoted to replicated.
    pub cache_hot_promotions: u64,
}

impl GenieStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        GenieStats::default()
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> GenieStatsSnapshot {
        GenieStatsSnapshot {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            inplace_updates: self.inplace_updates.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            key_drops: self.key_drops.load(Ordering::Relaxed),
            cas_conflicts: self.cas_conflicts.load(Ordering::Relaxed),
            trigger_noops: self.trigger_noops.load(Ordering::Relaxed),
            commit_batches: self.commit_batches.load(Ordering::Relaxed),
            commit_cache_ops: self.commit_cache_ops.load(Ordering::Relaxed),
            commit_cache_ops_naive: self.commit_cache_ops_naive.load(Ordering::Relaxed),
            commit_aborts: self.commit_aborts.load(Ordering::Relaxed),
            txn_bypasses: self.txn_bypasses.load(Ordering::Relaxed),
            fills_dropped: self.fills_dropped.load(Ordering::Relaxed),
            // Store-level and replication counters live in the cache
            // cluster; CacheGenie::stats() merges them in.
            ..GenieStatsSnapshot::default()
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in [
            &self.cache_hits,
            &self.cache_misses,
            &self.fills,
            &self.inplace_updates,
            &self.invalidations,
            &self.key_drops,
            &self.cas_conflicts,
            &self.trigger_noops,
            &self.commit_batches,
            &self.commit_cache_ops,
            &self.commit_cache_ops_naive,
            &self.commit_aborts,
            &self.txn_bypasses,
            &self.fills_dropped,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl GenieStatsSnapshot {
    /// Cache operations the commit-time coalescing saved versus applying
    /// every buffered effect one by one.
    pub fn commit_ops_saved(&self) -> u64 {
        self.commit_cache_ops_naive
            .saturating_sub(self.commit_cache_ops)
    }

    /// Interception hit ratio, or 1.0 with no intercepted traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = GenieStats::new();
        s.bump(&s.cache_hits);
        s.bump(&s.cache_hits);
        s.bump(&s.cache_misses);
        let snap = s.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot(), GenieStatsSnapshot::default());
        assert_eq!(s.snapshot().hit_ratio(), 1.0);
    }
}
