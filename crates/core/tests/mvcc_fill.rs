//! The read-through fill path under MVCC snapshot reads.
//!
//! Before MVCC, a fill's database read blocked behind any open writer
//! transaction on the table (table S vs IX), so "read an old value,
//! then a newer commit publishes, then the stale fill lands" could not
//! happen within one table. Snapshot reads remove the blocking — a fill
//! can now read *while* a writer transaction is open — so the fill-lease
//! protocol carries the whole guarantee:
//!
//! 1. the lease is taken **before** the database read, and
//! 2. a commit bumps the database epoch (under the engine latch)
//!    **before** its deferred cache publication runs, and every publish
//!    revokes outstanding leases on its keys (even on a read-miss).
//!
//! Therefore: publish after lease ⇒ the lease is revoked and the stale
//! fill drops; publish before lease ⇒ the read's snapshot already
//! includes the commit and the fill is fresh. Either way a fill built
//! from an old snapshot can never overwrite a newer publish. These
//! tests pin both orderings deterministically.

use cachegenie::{CacheGenie, CacheableDef, GenieConfig};
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig, Payload};
use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use genie_storage::{Database, Value, ValueType};
use std::sync::mpsc;
use std::sync::Arc;

struct Env {
    db: Database,
    session: OrmSession,
    genie: CacheGenie,
    cluster: CacheCluster,
}

fn env() -> Env {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    let reg = Arc::new(reg);
    let db = Database::default();
    reg.sync(&db).unwrap();
    let session = OrmSession::new(db.clone(), Arc::clone(&reg));
    let cluster = CacheCluster::new(ClusterConfig::default());
    let genie = CacheGenie::new(db.clone(), cluster.clone(), reg, GenieConfig::default());
    genie.install(&session);
    session
        .create("User", &[("username", "u1".into())])
        .unwrap();
    genie
        .cacheable(CacheableDef::count("wall_count", "WallPost").where_fields(&["user_id"]))
        .unwrap();
    Env {
        db,
        session,
        genie,
        cluster,
    }
}

fn db_count(db: &Database) -> i64 {
    db.execute_sql("SELECT COUNT(*) FROM wall WHERE user_id = 1", &[])
        .unwrap()
        .result
        .rows[0]
        .get(0)
        .as_int()
        .unwrap()
}

/// Publish-after-lease: a fill whose database read ran at a snapshot
/// older than a concurrent commit is dropped by the revoked lease, and
/// the cache stays coherent with the database.
#[test]
fn stale_snapshot_fill_never_overwrites_a_newer_publish() {
    let e = env();
    let key = e.genie.key_for("wall_count", &[Value::Int(1)]).unwrap();
    let app = e.cluster.handle(CacheOrigin::Application);

    // Writer transaction opens and buffers a post — uncommitted.
    let (pending_tx, pending) = mpsc::channel::<()>();
    let (release_tx, release) = mpsc::channel::<()>();
    let db_w = e.db.clone();
    let sess_w = e.session.clone();
    let writer = std::thread::spawn(move || {
        db_w.execute_sql("BEGIN", &[]).unwrap();
        sess_w
            .create(
                "WallPost",
                &[
                    ("user_id", Value::Int(1)),
                    ("date_posted", Value::Timestamp(100)),
                ],
            )
            .unwrap();
        pending_tx.send(()).unwrap();
        release.recv().unwrap();
        db_w.execute_sql("COMMIT", &[]).unwrap(); // publishes cache effects
    });
    pending.recv().unwrap();

    // Read-through miss path, by hand so the interleaving is exact:
    // lease first, then the database read. Under MVCC the read does NOT
    // block behind the open writer — it sees the old snapshot (0).
    let lease = e.cluster.lease(&key);
    let epoch_at_read = e.db.commit_epoch();
    let stale = db_count(&e.db);
    assert_eq!(stale, 0, "snapshot read sees the pre-commit state");

    // The writer commits and publishes between our read and our fill.
    release_tx.send(()).unwrap();
    writer.join().unwrap();
    assert!(
        e.db.commit_epoch() > epoch_at_read,
        "the commit advanced the epoch before its publication"
    );

    // The stale fill must be dropped: the publish revoked the lease.
    let landed = app
        .fill_payload(&key, &Payload::Count(stale), None, lease)
        .unwrap();
    assert!(!landed, "a fill built from an old snapshot must not land");
    assert!(
        e.genie
            .verify_coherence("wall_count", &[Value::Int(1)])
            .unwrap(),
        "cache agrees with the database after the dropped fill"
    );

    // The normal read path now recomputes the fresh value.
    let out = e.genie.evaluate("wall_count", &[Value::Int(1)]).unwrap();
    assert_eq!(out.result.rows[0].get(0), &Value::Int(1));
}

/// Publish-before-lease: once the commit's epoch is visible, a
/// subsequent lease + read sees the committed state, so the fill is
/// fresh and lands.
#[test]
fn fill_after_publish_reads_the_new_epoch_and_lands() {
    let e = env();
    let key = e.genie.key_for("wall_count", &[Value::Int(1)]).unwrap();
    let app = e.cluster.handle(CacheOrigin::Application);

    e.session
        .create(
            "WallPost",
            &[
                ("user_id", Value::Int(1)),
                ("date_posted", Value::Timestamp(100)),
            ],
        )
        .unwrap();

    let lease = e.cluster.lease(&key);
    let fresh = db_count(&e.db);
    assert_eq!(
        fresh, 1,
        "the read's snapshot includes the publish's commit"
    );
    let landed = app
        .fill_payload(&key, &Payload::Count(fresh), None, lease)
        .unwrap();
    assert!(landed, "a fresh fill lands");
    assert!(e
        .genie
        .verify_coherence("wall_count", &[Value::Int(1)])
        .unwrap());
}
