//! Transactional cache coherence — the commit-time effect pipeline.
//!
//! CacheGenie's central transactional guarantee: cache effects of a
//! database transaction publish atomically at COMMIT (coalesced per key)
//! and never otherwise. These tests pin the four faces of that guarantee:
//! a rollback leaves the cache byte-identical, uncommitted data is never
//! visible through the cache mid-transaction, same-key effects coalesce
//! into one physical cache operation, and a strict-mode (§3.3) lock
//! timeout aborts the whole transaction cleanly.

use cachegenie::{CacheGenie, CacheableDef, GenieConfig, SortOrder, StrictTxnManager};
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig};
use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use genie_storage::{Database, StorageError, Value, ValueType};
use std::sync::Arc;

const K: usize = 3;

struct Env {
    db: Database,
    session: OrmSession,
    genie: CacheGenie,
    cluster: CacheCluster,
}

fn env() -> Env {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    let reg = Arc::new(reg);
    let db = Database::default();
    reg.sync(&db).unwrap();
    let session = OrmSession::new(db.clone(), Arc::clone(&reg));
    let cluster = CacheCluster::new(ClusterConfig::default());
    let genie = CacheGenie::new(db.clone(), cluster.clone(), reg, GenieConfig::default());
    genie.install(&session);
    for i in 1..=3i64 {
        session
            .create("User", &[("username", format!("u{i}").into())])
            .unwrap();
    }
    genie
        .cacheable(
            CacheableDef::top_k(
                "wall_topk",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                K,
            )
            .where_fields(&["user_id"])
            .reserve(2),
        )
        .unwrap();
    genie
        .cacheable(CacheableDef::count("wall_count", "WallPost").where_fields(&["user_id"]))
        .unwrap();
    Env {
        db,
        session,
        genie,
        cluster,
    }
}

fn post(e: &Env, user: i64, ts: i64) -> i64 {
    e.session
        .create(
            "WallPost",
            &[
                ("user_id", user.into()),
                ("date_posted", Value::Timestamp(ts)),
            ],
        )
        .unwrap()
        .new_id
        .unwrap()
}

/// Raw cached bytes for every key a user's objects live under.
fn cache_image(e: &Env, user: i64) -> Vec<(String, Option<Vec<u8>>)> {
    let app = e.cluster.handle(CacheOrigin::Application);
    ["wall_topk", "wall_count"]
        .iter()
        .map(|obj| {
            let key = e.genie.key_for(obj, &[Value::Int(user)]).unwrap();
            let bytes = app.get(&key).map(|b| b.to_vec());
            (key, bytes)
        })
        .collect()
}

fn warm(e: &Env, user: i64) {
    e.genie.evaluate("wall_topk", &[Value::Int(user)]).unwrap();
    e.genie.evaluate("wall_count", &[Value::Int(user)]).unwrap();
}

fn cached_count(e: &Env, user: i64) -> i64 {
    let out = e.genie.evaluate("wall_count", &[Value::Int(user)]).unwrap();
    out.result.scalar().and_then(|v| v.as_int()).unwrap()
}

#[test]
fn rollback_leaves_cache_byte_identical() {
    let e = env();
    post(&e, 1, 100);
    post(&e, 1, 200);
    warm(&e, 1);
    let before = cache_image(&e, 1);
    assert!(before.iter().all(|(_, b)| b.is_some()), "cache warmed");

    e.db.execute_sql("BEGIN", &[]).unwrap();
    post(&e, 1, 300);
    post(&e, 1, 400);
    e.session
        .delete_matching(
            &e.session
                .objects("WallPost")
                .unwrap()
                .filter_eq("user_id", 1i64),
        )
        .unwrap();
    e.db.execute_sql("ROLLBACK", &[]).unwrap();

    assert_eq!(
        cache_image(&e, 1),
        before,
        "aborted transaction published zero cache effects"
    );
    // And the cached answers still match the (restored) database.
    assert_eq!(cached_count(&e, 1), 2);
}

#[test]
fn dirty_cache_reads_impossible_mid_transaction() {
    let e = env();
    post(&e, 1, 100);
    warm(&e, 1);
    let before = cache_image(&e, 1);

    e.db.execute_sql("BEGIN", &[]).unwrap();
    post(&e, 1, 999);
    // Mid-transaction the cache is untouched (nothing published)...
    assert_eq!(cache_image(&e, 1), before);
    // ...while the transaction itself still sees its own write (the read
    // bypasses the cache and goes to the database).
    let out = e.genie.evaluate("wall_count", &[Value::Int(1)]).unwrap();
    assert!(!out.from_cache);
    assert_eq!(out.result.scalar().and_then(|v| v.as_int()), Some(2));
    assert_eq!(out.cache_ops, 0, "bypass reads issue no cache traffic");
    e.db.execute_sql("ROLLBACK", &[]).unwrap();

    // After the rollback the untouched cache is still *correct*.
    assert_eq!(cached_count(&e, 1), 1);
    let snap = e.genie.stats();
    assert!(snap.txn_bypasses >= 1);
}

#[test]
fn same_key_effects_coalesce_at_commit() {
    let e = env();
    let id = post(&e, 1, 100);
    warm(&e, 1);

    // Three updates of one row: one net row change, so each matching
    // trigger fires once at commit.
    e.db.execute_sql("BEGIN", &[]).unwrap();
    for ts in [110i64, 120, 130] {
        e.session
            .update_by_id("WallPost", id, &[("date_posted", Value::Timestamp(ts))])
            .unwrap();
    }
    let out = e.db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(
        out.cost.triggers_fired, 2,
        "topk + count triggers, once each (three statements coalesced)"
    );
    let wall = e.genie.evaluate("wall_topk", &[Value::Int(1)]).unwrap();
    assert_eq!(
        wall.result.rows[0].get(2),
        &Value::Timestamp(130),
        "last write wins in the published cache"
    );

    // A burst of inserts to the same wall: distinct rows (no row
    // coalescing) but the SAME cache keys — the batch publishes one
    // physical op per key while the naive count grows with the burst.
    e.genie.reset_stats();
    e.db.execute_sql("BEGIN", &[]).unwrap();
    for ts in [200i64, 210, 220, 230] {
        post(&e, 1, ts);
    }
    let out = e.db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(out.cost.triggers_fired, 8, "4 inserts x 2 triggers");
    let snap = e.genie.stats();
    assert_eq!(snap.commit_batches, 1);
    assert!(
        snap.commit_cache_ops < snap.commit_cache_ops_naive,
        "coalesced {} must beat naive {}",
        snap.commit_cache_ops,
        snap.commit_cache_ops_naive
    );
    assert_eq!(
        out.cost.trigger_cache_ops, snap.commit_cache_ops,
        "commit cost carries the physical (coalesced) op count"
    );
    assert!(
        out.cost.trigger_connections <= 1,
        "one pooled connection per group commit"
    );
    // Published state is right: count bumped by 4, top-k shows the burst.
    assert_eq!(cached_count(&e, 1), 5);
    let wall = e.genie.evaluate("wall_topk", &[Value::Int(1)]).unwrap();
    assert!(wall.from_cache);
    assert_eq!(wall.result.rows[0].get(2), &Value::Timestamp(230));
}

#[test]
fn strict_lock_timeout_aborts_transaction_cleanly() {
    let e = env();
    post(&e, 1, 100);
    warm(&e, 1);
    let before = cache_image(&e, 1);
    let mgr = StrictTxnManager::new();
    e.genie.set_strict_commit(&mgr);

    // Another strict transaction read-locks the user's top-k key.
    let mut reader = mgr.begin(&e.genie);
    reader.read("wall_topk", &[Value::Int(1)]).unwrap();

    // A transaction whose commit must write that key: blocked, aborted.
    e.db.execute_sql("BEGIN", &[]).unwrap();
    post(&e, 1, 500);
    let err = e.db.execute_sql("COMMIT", &[]).unwrap_err();
    assert!(
        matches!(&err, StorageError::TransactionAborted(m) if m.contains("lock timeout")),
        "{err}"
    );
    assert!(!e.db.in_transaction());
    assert_eq!(e.db.row_count("wall").unwrap(), 1, "insert rolled back");
    assert_eq!(cache_image(&e, 1), before, "nothing published");
    assert_eq!(e.genie.stats().commit_aborts, 1);

    // Release the reader: the same transaction now commits.
    reader.commit();
    e.db.execute_sql("BEGIN", &[]).unwrap();
    post(&e, 1, 500);
    e.db.execute_sql("COMMIT", &[]).unwrap();
    assert_eq!(cached_count(&e, 1), 2);
    assert_eq!(
        mgr.locked_keys(),
        0,
        "commit pipeline released its 2PL locks"
    );
}
