//! The commit-time effect pipeline under real multi-writer interleaving:
//! a deadlock victim's buffered cache effects vanish byte-for-byte, and
//! racing committers (plus racing read-through fills) can never leave
//! the cache disagreeing with the database.

use cachegenie::{CacheGenie, CacheableDef, GenieConfig, SortOrder};
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig};
use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use genie_storage::{Database, StorageError, Value, ValueType};
use std::sync::mpsc;
use std::sync::Arc;

const K: usize = 3;

struct Env {
    db: Database,
    session: OrmSession,
    genie: CacheGenie,
    cluster: CacheCluster,
}

fn env() -> Env {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    let reg = Arc::new(reg);
    let db = Database::default();
    reg.sync(&db).unwrap();
    let session = OrmSession::new(db.clone(), Arc::clone(&reg));
    let cluster = CacheCluster::new(ClusterConfig::default());
    let genie = CacheGenie::new(db.clone(), cluster.clone(), reg, GenieConfig::default());
    genie.install(&session);
    for i in 1..=3i64 {
        session
            .create("User", &[("username", format!("u{i}").into())])
            .unwrap();
    }
    genie
        .cacheable(
            CacheableDef::top_k(
                "wall_topk",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                K,
            )
            .where_fields(&["user_id"])
            .reserve(2),
        )
        .unwrap();
    genie
        .cacheable(CacheableDef::count("wall_count", "WallPost").where_fields(&["user_id"]))
        .unwrap();
    Env {
        db,
        session,
        genie,
        cluster,
    }
}

fn post(e: &Env, user: i64, ts: i64) {
    e.session
        .create(
            "WallPost",
            &[
                ("user_id", Value::Int(user)),
                ("date_posted", Value::Timestamp(ts)),
            ],
        )
        .unwrap();
}

fn cache_bytes(e: &Env, object: &str, user: i64) -> Option<Vec<u8>> {
    let key = e.genie.key_for(object, &[Value::Int(user)]).unwrap();
    e.cluster
        .handle(CacheOrigin::Application)
        .get(&key)
        .map(|b| b.to_vec())
}

/// A deadlock victim's transaction had already buffered wall-post cache
/// effects; the abort must leave every cache key byte-identical and the
/// surviving (older) transaction must commit normally.
#[test]
fn deadlock_victim_publishes_nothing_to_the_cache() {
    let e = env();
    post(&e, 2, 10);
    // Warm both objects for user 2 so a victim flush would overwrite
    // real bytes, not fill an empty key.
    e.genie.evaluate("wall_topk", &[Value::Int(2)]).unwrap();
    e.genie.evaluate("wall_count", &[Value::Int(2)]).unwrap();
    let topk_before = cache_bytes(&e, "wall_topk", 2).expect("warmed");
    let count_before = cache_bytes(&e, "wall_count", 2).expect("warmed");
    let posts_before = e.db.row_count("wall").unwrap();

    let (t2_ready, main_sees) = mpsc::channel::<()>();
    let (main_ready, t2_sees) = mpsc::channel::<()>();

    // Older transaction (T1) on the main thread: holds users row 1.
    e.db.execute_sql("BEGIN", &[]).unwrap();
    e.db.execute_sql("UPDATE users SET username = 'w' WHERE id = 1", &[])
        .unwrap();

    let db2 = e.db.clone();
    let session2 = e.session.clone();
    let t2 = std::thread::spawn(move || {
        // Younger transaction (T2): buffers a wall post for user 2
        // (cache effects pending at commit), holds users row 2, then
        // requests row 1 — closing the cycle. Youngest dies.
        db2.execute_sql("BEGIN", &[]).unwrap();
        session2
            .create(
                "WallPost",
                &[
                    ("user_id", Value::Int(2)),
                    ("date_posted", Value::Timestamp(99)),
                ],
            )
            .unwrap();
        db2.execute_sql("UPDATE users SET username = 'x' WHERE id = 2", &[])
            .unwrap();
        t2_ready.send(()).unwrap();
        t2_sees.recv().unwrap();
        let r = db2.execute_sql("UPDATE users SET username = 'x' WHERE id = 1", &[]);
        let was_deadlock = matches!(r, Err(StorageError::Deadlock { .. }));
        let _ = db2.execute_sql("ROLLBACK", &[]);
        was_deadlock
    });

    main_sees.recv().unwrap();
    main_ready.send(()).unwrap();
    // Blocks on users row 2 until the victim aborts.
    e.db.execute_sql("UPDATE users SET username = 'w' WHERE id = 2", &[])
        .unwrap();
    e.db.execute_sql("COMMIT", &[]).unwrap();
    assert!(t2.join().unwrap(), "T2 must be the deadlock victim");

    assert_eq!(e.db.lock_stats().deadlocks, 1, "exactly one victim");
    assert_eq!(
        e.db.row_count("wall").unwrap(),
        posts_before,
        "insert undone"
    );
    assert_eq!(
        cache_bytes(&e, "wall_topk", 2).as_ref(),
        Some(&topk_before),
        "victim left the top-k cache byte-identical"
    );
    assert_eq!(
        cache_bytes(&e, "wall_count", 2).as_ref(),
        Some(&count_before),
        "victim left the count cache byte-identical"
    );
    assert!(e
        .genie
        .verify_coherence("wall_topk", &[Value::Int(2)])
        .unwrap());
    assert!(e
        .genie
        .verify_coherence("wall_count", &[Value::Int(2)])
        .unwrap());
}

/// Many writers committing into the same cache keys while readers race
/// read-through fills: after the dust settles, cache and database agree
/// on every object (flush-gate ordering + fill leases).
#[test]
fn racing_committers_and_fills_stay_coherent() {
    let e = env();
    let writers = 4;
    let per = 25;
    let barrier = Arc::new(std::sync::Barrier::new(writers + 1));
    let mut handles = Vec::new();
    for w in 0..writers {
        let session = e.session.clone();
        let db = e.db.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..per {
                db.execute_sql("BEGIN", &[]).unwrap();
                session
                    .create(
                        "WallPost",
                        &[
                            ("user_id", Value::Int(1)),
                            ("date_posted", Value::Timestamp((w * per + i) as i64)),
                        ],
                    )
                    .unwrap();
                db.execute_sql("COMMIT", &[]).unwrap();
            }
        }));
    }
    // A racing reader repeatedly serving (and on miss re-filling) the
    // same objects through the cache.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let genie_r = e.genie.clone();
    let stop_r = Arc::clone(&stop);
    let reader = std::thread::spawn(move || {
        while !stop_r.load(std::sync::atomic::Ordering::Relaxed) {
            let _ = genie_r.evaluate("wall_topk", &[Value::Int(1)]);
            let _ = genie_r.evaluate("wall_count", &[Value::Int(1)]);
        }
    });
    barrier.wait();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    reader.join().unwrap();

    assert_eq!(e.db.row_count("wall").unwrap(), writers * per);
    assert!(
        e.genie
            .verify_coherence("wall_topk", &[Value::Int(1)])
            .unwrap(),
        "top-k cache diverged from the database"
    );
    assert!(
        e.genie
            .verify_coherence("wall_count", &[Value::Int(1)])
            .unwrap(),
        "count cache diverged from the database"
    );
}
