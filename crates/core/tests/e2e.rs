//! End-to-end tests of the CacheGenie middleware: declaration,
//! transparent interception, read-through fill, and trigger-based
//! consistency for all four cache classes and all three strategies.

use cachegenie::{
    CacheGenie, CacheableDef, ConsistencyStrategy, GenieConfig, SortOrder, StrictTxnManager,
    TxnOutcome,
};
use genie_cache::{CacheCluster, ClusterConfig};
use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use genie_storage::{Database, StorageError, Value, ValueType};
use std::sync::Arc;

/// The paper's running example domain: users, profiles, wall posts,
/// friendships, group memberships.
fn registry() -> Arc<ModelRegistry> {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text).not_null())
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("Profile", "profiles")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("bio", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .foreign_key("sender_id", "User")
            .field(FieldDef::new("content", ValueType::Text))
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("Friendship", "friendships")
            .foreign_key("user_id", "User")
            .foreign_key("friend_id", "User")
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("Group", "groups")
            .field(FieldDef::new("title", ValueType::Text).not_null())
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("GroupMembership", "membership")
            .foreign_key("user_id", "User")
            .foreign_key("group_id", "Group")
            .build(),
    )
    .unwrap();
    Arc::new(reg)
}

struct Env {
    session: OrmSession,
    genie: CacheGenie,
}

fn env() -> Env {
    env_with(GenieConfig::default())
}

fn env_with(config: GenieConfig) -> Env {
    let reg = registry();
    let db = Database::default();
    reg.sync(&db).unwrap();
    let session = OrmSession::new(db.clone(), Arc::clone(&reg));
    let cluster = CacheCluster::new(ClusterConfig {
        servers: 2,
        ..Default::default()
    });
    let genie = CacheGenie::new(db, cluster, reg, config);
    genie.install(&session);
    for i in 1..=10i64 {
        session
            .create("User", &[("username", format!("user{i}").into())])
            .unwrap();
    }
    Env { session, genie }
}

fn profile_def() -> CacheableDef {
    CacheableDef::feature("cached_user_profile", "Profile").where_fields(&["user_id"])
}

#[test]
fn feature_query_hit_after_fill() {
    let e = env();
    e.genie.cacheable(profile_def()).unwrap();
    e.session
        .create(
            "Profile",
            &[("user_id", 1i64.into()), ("bio", "hello".into())],
        )
        .unwrap();
    let qs = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    let miss = e.session.all(&qs).unwrap();
    assert!(!miss.from_cache);
    assert_eq!(miss.rows.len(), 1);
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    assert!(hit.db_cost.is_empty());
    assert_eq!(hit.rows[0].get("bio"), &Value::Text("hello".into()));
    let stats = e.genie.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.fills, 1);
}

#[test]
fn feature_update_in_place_keeps_serving_fresh_data_from_cache() {
    let e = env();
    e.genie.cacheable(profile_def()).unwrap();
    let id = e
        .session
        .create(
            "Profile",
            &[("user_id", 1i64.into()), ("bio", "old".into())],
        )
        .unwrap()
        .new_id
        .unwrap();
    let qs = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    e.session.all(&qs).unwrap(); // fill

    // The paper's §3.2 example: an UPDATE refreshes the cached entry.
    e.session
        .update_by_id("Profile", id, &[("bio", "new".into())])
        .unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "update-in-place must not invalidate");
    assert_eq!(hit.rows[0].get("bio"), &Value::Text("new".into()));
    assert!(e.genie.stats().inplace_updates >= 1);
}

#[test]
fn per_key_precision_only_affected_entry_changes() {
    // The paper's contrast with template-based invalidation: updating
    // user 42's profile must leave user 43's cached entry untouched.
    let e = env();
    e.genie
        .cacheable(profile_def().strategy(ConsistencyStrategy::Invalidate))
        .unwrap();
    for (u, bio) in [(1i64, "a"), (2i64, "b")] {
        e.session
            .create("Profile", &[("user_id", u.into()), ("bio", bio.into())])
            .unwrap();
    }
    let qs1 = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    let qs2 = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 2i64);
    e.session.all(&qs1).unwrap();
    e.session.all(&qs2).unwrap();
    // Write touching user 1 only.
    e.session
        .update_by_id("Profile", 1, &[("bio", "a2".into())])
        .unwrap();
    let r2 = e.session.all(&qs2).unwrap();
    assert!(r2.from_cache, "user 2's entry must survive user 1's write");
    let r1 = e.session.all(&qs1).unwrap();
    assert!(!r1.from_cache, "user 1's entry was invalidated");
    assert_eq!(r1.rows[0].get("bio"), &Value::Text("a2".into()));
}

#[test]
fn invalidate_strategy_deletes_then_refills() {
    let e = env();
    e.genie
        .cacheable(profile_def().strategy(ConsistencyStrategy::Invalidate))
        .unwrap();
    let id = e
        .session
        .create("Profile", &[("user_id", 1i64.into()), ("bio", "x".into())])
        .unwrap()
        .new_id
        .unwrap();
    let qs = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    e.session.all(&qs).unwrap();
    e.session
        .update_by_id("Profile", id, &[("bio", "y".into())])
        .unwrap();
    assert!(e.genie.stats().invalidations >= 1);
    let refill = e.session.all(&qs).unwrap();
    assert!(!refill.from_cache);
    assert_eq!(refill.rows[0].get("bio"), &Value::Text("y".into()));
    assert!(e.session.all(&qs).unwrap().from_cache);
}

#[test]
fn count_query_incremental_updates() {
    let e = env();
    e.genie
        .cacheable(CacheableDef::count("friend_count", "Friendship").where_fields(&["user_id"]))
        .unwrap();
    for f in 2..=4i64 {
        e.session
            .create(
                "Friendship",
                &[("user_id", 1i64.into()), ("friend_id", f.into())],
            )
            .unwrap();
    }
    let qs = e
        .session
        .objects("Friendship")
        .unwrap()
        .filter_eq("user_id", 1i64);
    let (n, out) = e.session.count(&qs).unwrap();
    assert_eq!(n, 3);
    assert!(!out.from_cache);
    // Insert: the cached count is bumped in place, not recomputed.
    let w = e
        .session
        .create(
            "Friendship",
            &[("user_id", 1i64.into()), ("friend_id", 5i64.into())],
        )
        .unwrap();
    assert!(w.db_cost.triggers_fired >= 1);
    let (n, out) = e.session.count(&qs).unwrap();
    assert_eq!(n, 4);
    assert!(out.from_cache);
    // Delete decrements.
    let fr = e
        .session
        .objects("Friendship")
        .unwrap()
        .filter_eq("user_id", 1i64)
        .filter_eq("friend_id", 5i64);
    let (victim, _) = e.session.get(&fr).unwrap();
    e.session
        .delete_by_id("Friendship", victim.unwrap().id())
        .unwrap();
    let (n, out) = e.session.count(&qs).unwrap();
    assert_eq!(n, 3);
    assert!(out.from_cache);
    assert!(e.genie.stats().inplace_updates >= 2);
}

#[test]
fn count_update_moving_key_adjusts_both_counts() {
    let e = env();
    e.genie
        .cacheable(CacheableDef::count("friend_count", "Friendship").where_fields(&["user_id"]))
        .unwrap();
    let fid = e
        .session
        .create(
            "Friendship",
            &[("user_id", 1i64.into()), ("friend_id", 9i64.into())],
        )
        .unwrap()
        .new_id
        .unwrap();
    e.session
        .create(
            "Friendship",
            &[("user_id", 2i64.into()), ("friend_id", 9i64.into())],
        )
        .unwrap();
    let qs1 = e
        .session
        .objects("Friendship")
        .unwrap()
        .filter_eq("user_id", 1i64);
    let qs2 = e
        .session
        .objects("Friendship")
        .unwrap()
        .filter_eq("user_id", 2i64);
    assert_eq!(e.session.count(&qs1).unwrap().0, 1);
    assert_eq!(e.session.count(&qs2).unwrap().0, 1);
    // Move the friendship from user 1 to user 2.
    e.session
        .update_by_id("Friendship", fid, &[("user_id", 2i64.into())])
        .unwrap();
    let (n1, o1) = e.session.count(&qs1).unwrap();
    let (n2, o2) = e.session.count(&qs2).unwrap();
    assert_eq!((n1, n2), (0, 2));
    assert!(
        o1.from_cache && o2.from_cache,
        "both counts updated in place"
    );
}

fn wall_def(k: usize) -> CacheableDef {
    CacheableDef::top_k(
        "latest_wall_posts",
        "WallPost",
        "date_posted",
        SortOrder::Descending,
        k,
    )
    .where_fields(&["user_id"])
    .reserve(2)
}

fn post(e: &Env, user: i64, ts: i64) -> i64 {
    e.session
        .create(
            "WallPost",
            &[
                ("user_id", user.into()),
                ("sender_id", 2i64.into()),
                ("content", format!("post@{ts}").into()),
                ("date_posted", Value::Timestamp(ts)),
            ],
        )
        .unwrap()
        .new_id
        .unwrap()
}

fn wall_qs(e: &Env, user: i64, k: u64) -> genie_orm::QuerySet {
    e.session
        .objects("WallPost")
        .unwrap()
        .filter_eq("user_id", user)
        .order_by("-date_posted")
        .limit(k)
}

#[test]
fn top_k_insert_updates_cached_list_in_place() {
    let e = env();
    e.genie.cacheable(wall_def(3)).unwrap();
    for ts in [10i64, 20, 30, 40] {
        post(&e, 1, ts);
    }
    let qs = wall_qs(&e, 1, 3);
    let fill = e.session.all(&qs).unwrap();
    assert!(!fill.from_cache);
    let ts_of = |rows: &[genie_orm::OrmRow]| -> Vec<i64> {
        rows.iter()
            .map(|r| r.get("date_posted").as_timestamp().unwrap())
            .collect()
    };
    assert_eq!(ts_of(&fill.rows), vec![40, 30, 20]);
    // New newest post: trigger inserts it at the head of the cached list.
    post(&e, 1, 50);
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "insert must be absorbed in place");
    assert_eq!(ts_of(&hit.rows), vec![50, 40, 30]);
    // A middle post: lands at the right position.
    post(&e, 1, 45);
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    assert_eq!(ts_of(&hit.rows), vec![50, 45, 40]);
}

#[test]
fn top_k_deletes_consume_reserve_then_drop_key() {
    let e = env();
    e.genie.cacheable(wall_def(3)).unwrap(); // capacity 5
    let ids: Vec<i64> = (1..=8).map(|ts| post(&e, 1, ts * 10)).collect();
    let qs = wall_qs(&e, 1, 3);
    e.session.all(&qs).unwrap(); // cache holds ts 80,70,60,50,40 (incomplete)

    // Two deletes eat the reserve but keep >= k cached.
    e.session.delete_by_id("WallPost", ids[7]).unwrap(); // ts 80
    e.session.delete_by_id("WallPost", ids[6]).unwrap(); // ts 70
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "reserve absorbs deletes");
    let ts: Vec<i64> = hit
        .rows
        .iter()
        .map(|r| r.get("date_posted").as_timestamp().unwrap())
        .collect();
    assert_eq!(ts, vec![60, 50, 40]);

    // Third delete leaves len < k with coverage incomplete: key dropped.
    e.session.delete_by_id("WallPost", ids[5]).unwrap(); // ts 60
    assert!(e.genie.stats().key_drops >= 1);
    let refill = e.session.all(&qs).unwrap();
    assert!(!refill.from_cache, "reserve exhausted forces recompute");
    let ts: Vec<i64> = refill
        .rows
        .iter()
        .map(|r| r.get("date_posted").as_timestamp().unwrap())
        .collect();
    assert_eq!(ts, vec![50, 40, 30]);
}

#[test]
fn top_k_complete_list_serves_short_results() {
    let e = env();
    e.genie.cacheable(wall_def(5)).unwrap();
    post(&e, 1, 10);
    post(&e, 1, 20);
    let qs = wall_qs(&e, 1, 5);
    let fill = e.session.all(&qs).unwrap();
    assert_eq!(fill.rows.len(), 2);
    // Deleting from a complete short list keeps serving from cache.
    let all = e
        .session
        .objects("WallPost")
        .unwrap()
        .filter_eq("user_id", 1i64);
    let rows = e.session.all(&all).unwrap();
    // (that read is not the cached template; it passes through)
    let first_id = rows.rows.iter().map(|r| r.id()).min().unwrap();
    e.session.delete_by_id("WallPost", first_id).unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "complete list survives below-k deletes");
    assert_eq!(hit.rows.len(), 1);
    // And a new post appends correctly to the complete list.
    post(&e, 1, 30);
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    assert_eq!(hit.rows.len(), 2);
    assert_eq!(hit.rows[0].get("date_posted").as_timestamp(), Some(30));
}

#[test]
fn top_k_update_repositions_row() {
    let e = env();
    e.genie.cacheable(wall_def(3)).unwrap();
    let id_old = post(&e, 1, 10);
    post(&e, 1, 20);
    post(&e, 1, 30);
    let qs = wall_qs(&e, 1, 3);
    e.session.all(&qs).unwrap();
    // Bump the oldest post to the top.
    e.session
        .update_by_id("WallPost", id_old, &[("date_posted", Value::Timestamp(99))])
        .unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    let ids: Vec<i64> = hit.rows.iter().map(|r| r.id()).collect();
    assert_eq!(ids[0], id_old);
}

#[test]
fn link_query_served_and_maintained() {
    let e = env();
    e.genie
        .cacheable(
            CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
                .where_fields(&["user_id"]),
        )
        .unwrap();
    let g1 = e
        .session
        .create("Group", &[("title", "rustaceans".into())])
        .unwrap()
        .new_id
        .unwrap();
    let g2 = e
        .session
        .create("Group", &[("title", "cyclists".into())])
        .unwrap()
        .new_id
        .unwrap();
    e.session
        .create(
            "GroupMembership",
            &[("user_id", 1i64.into()), ("group_id", g1.into())],
        )
        .unwrap();

    let group_model = e.session.registry().model("Group").unwrap().clone();
    let qs = e
        .session
        .objects("GroupMembership")
        .unwrap()
        .join_on(&group_model, "group_id", "id")
        .filter_eq("user_id", 1i64);
    let fill = e.session.all(&qs).unwrap();
    assert!(!fill.from_cache);
    assert_eq!(fill.rows.len(), 1);
    assert_eq!(fill.rows[0].get("title"), &Value::Text("rustaceans".into()));

    // Joining a second group extends the cached list via the trigger.
    e.session
        .create(
            "GroupMembership",
            &[("user_id", 1i64.into()), ("group_id", g2.into())],
        )
        .unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "membership insert updated in place");
    assert_eq!(hit.rows.len(), 2);

    // Renaming a group rewrites the joined part in place (target-table
    // UPDATE trigger).
    e.session
        .update_by_id("Group", g1, &[("title", "crustaceans".into())])
        .unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache, "group rename updated in place");
    let titles: Vec<&Value> = hit.rows.iter().map(|r| r.get("title")).collect();
    assert!(
        titles.contains(&&Value::Text("crustaceans".into())),
        "{titles:?}"
    );

    // Leaving a group removes its row from the cached list.
    let m = e
        .session
        .objects("GroupMembership")
        .unwrap()
        .filter_eq("user_id", 1i64)
        .filter_eq("group_id", g1);
    let (row, _) = e.session.get(&m).unwrap();
    e.session
        .delete_by_id("GroupMembership", row.unwrap().id())
        .unwrap();
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    assert_eq!(hit.rows.len(), 1);
    assert_eq!(hit.rows[0].get("title"), &Value::Text("cyclists".into()));
}

#[test]
fn expire_strategy_has_no_triggers_and_times_out() {
    let e = env();
    let before = e.genie.trigger_count();
    e.genie
        .cacheable(profile_def().strategy(ConsistencyStrategy::Expire { ttl: 1_000 }))
        .unwrap();
    assert_eq!(
        e.genie.trigger_count(),
        before,
        "expire installs no triggers"
    );
    e.session
        .create("Profile", &[("user_id", 1i64.into()), ("bio", "x".into())])
        .unwrap();
    let qs = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    e.session.all(&qs).unwrap();
    assert!(e.session.all(&qs).unwrap().from_cache);
    // Writes do NOT refresh the entry (that's the point of this mode)...
    e.session
        .update_by_id("Profile", 1, &[("bio", "stale?".into())])
        .unwrap();
    assert!(e.session.all(&qs).unwrap().from_cache, "stale until expiry");
    // ...until the TTL lapses on the cluster clock.
    e.genie.cluster().set_now(2_000);
    let refreshed = e.session.all(&qs).unwrap();
    assert!(!refreshed.from_cache);
    assert_eq!(refreshed.rows[0].get("bio"), &Value::Text("stale?".into()));
}

#[test]
fn manual_only_objects_do_not_intercept() {
    let e = env();
    e.genie.cacheable(profile_def().manual_only()).unwrap();
    e.session
        .create("Profile", &[("user_id", 1i64.into()), ("bio", "m".into())])
        .unwrap();
    let qs = e
        .session
        .objects("Profile")
        .unwrap()
        .filter_eq("user_id", 1i64);
    e.session.all(&qs).unwrap();
    let second = e.session.all(&qs).unwrap();
    assert!(!second.from_cache, "manual objects never intercept");
    // But explicit evaluate uses the cache.
    let first = e
        .genie
        .evaluate("cached_user_profile", &[Value::Int(1)])
        .unwrap();
    assert!(!first.from_cache);
    let again = e
        .genie
        .evaluate("cached_user_profile", &[Value::Int(1)])
        .unwrap();
    assert!(again.from_cache);
    assert_eq!(again.result.rows.len(), 1);
}

#[test]
fn non_matching_queries_pass_through() {
    let e = env();
    e.genie.cacheable(profile_def()).unwrap();
    // Different shape (no filter): passes through untouched, repeatedly.
    let qs = e.session.objects("Profile").unwrap();
    e.session.all(&qs).unwrap();
    let out = e.session.all(&qs).unwrap();
    assert!(!out.from_cache);
    assert_eq!(out.cache_ops, 0);
}

#[test]
fn own_writes_visible_immediately() {
    // §3.3: "the user sees the effects of her own writes immediately".
    let e = env();
    e.genie.cacheable(wall_def(3)).unwrap();
    let qs = wall_qs(&e, 1, 3);
    post(&e, 1, 10);
    e.session.all(&qs).unwrap();
    post(&e, 1, 20);
    let hit = e.session.all(&qs).unwrap();
    assert!(hit.from_cache);
    assert_eq!(hit.rows[0].get("date_posted").as_timestamp(), Some(20));
}

#[test]
fn duplicate_and_invalid_definitions_rejected() {
    let e = env();
    e.genie.cacheable(profile_def()).unwrap();
    assert!(matches!(
        e.genie.cacheable(profile_def()),
        Err(StorageError::AlreadyExists(_))
    ));
    assert!(e
        .genie
        .cacheable(CacheableDef::feature("bad:name", "Profile").where_fields(&["user_id"]))
        .is_err());
    assert!(e
        .genie
        .cacheable(CacheableDef::feature("no_fields", "Profile"))
        .is_err());
}

#[test]
fn effort_metrics_exposed() {
    let e = env();
    e.genie.cacheable(profile_def()).unwrap();
    e.genie.cacheable(wall_def(20)).unwrap();
    e.genie
        .cacheable(
            CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
                .where_fields(&["user_id"]),
        )
        .unwrap();
    assert_eq!(e.genie.object_count(), 3);
    // feature 3 + topk 3 + link 6 triggers
    assert_eq!(e.genie.trigger_count(), 12);
    let lines = e.genie.generated_trigger_lines();
    assert!(
        lines > 12 * 15,
        "generated listings should be substantial, got {lines}"
    );
    assert_eq!(
        e.genie.object_names(),
        vec!["cached_user_profile", "latest_wall_posts", "user_groups"]
    );
}

#[test]
fn reuse_connection_config_removes_connection_cost() {
    let run = |config: GenieConfig| -> u64 {
        let e = env_with(config);
        e.genie.cacheable(wall_def(3)).unwrap();
        e.session.all(&wall_qs(&e, 1, 3)).unwrap();
        let w = e
            .session
            .create(
                "WallPost",
                &[
                    ("user_id", 1i64.into()),
                    ("sender_id", 2i64.into()),
                    ("content", "x".into()),
                    ("date_posted", Value::Timestamp(1)),
                ],
            )
            .unwrap();
        w.db_cost.trigger_connections
    };
    assert!(run(GenieConfig::default()) >= 1);
    assert_eq!(
        run(GenieConfig {
            reuse_trigger_connections: true,
            ..Default::default()
        }),
        0
    );
}

#[test]
fn strict_txn_conflicts_and_abort_cleanup() {
    let e = env();
    e.genie.cacheable(profile_def().manual_only()).unwrap();
    e.session
        .create("Profile", &[("user_id", 1i64.into()), ("bio", "v1".into())])
        .unwrap();
    let mgr = StrictTxnManager::new();

    // Reader blocks writer on the same key.
    let mut t1 = mgr.begin(&e.genie);
    t1.read("cached_user_profile", &[Value::Int(1)]).unwrap();
    let mut t2 = mgr.begin(&e.genie);
    assert!(matches!(
        t2.write_lock("cached_user_profile", &[Value::Int(1)]),
        Err(StorageError::LockTimeout { .. })
    ));
    assert_eq!(t1.commit(), TxnOutcome::Committed);
    // After commit the writer proceeds.
    t2.write_lock("cached_user_profile", &[Value::Int(1)])
        .unwrap();

    // Abort removes written keys from the cache so readers refetch.
    let key_cached_before = e
        .genie
        .evaluate("cached_user_profile", &[Value::Int(1)])
        .unwrap();
    let _ = key_cached_before;
    assert_eq!(t2.abort(), TxnOutcome::Aborted);
    let after = e
        .genie
        .evaluate("cached_user_profile", &[Value::Int(1)])
        .unwrap();
    assert!(!after.from_cache, "aborted writer's key was dropped");
    assert_eq!(mgr.locked_keys(), 0);
}

#[test]
fn strict_txn_deadlock_resolved_by_abort() {
    let e = env();
    e.genie.cacheable(profile_def().manual_only()).unwrap();
    for u in [1i64, 2] {
        e.session
            .create("Profile", &[("user_id", u.into()), ("bio", "x".into())])
            .unwrap();
    }
    let mgr = StrictTxnManager::new();
    let mut t1 = mgr.begin(&e.genie);
    let mut t2 = mgr.begin(&e.genie);
    t1.read("cached_user_profile", &[Value::Int(1)]).unwrap();
    t2.read("cached_user_profile", &[Value::Int(2)]).unwrap();
    // Cross writes: both block — the paper's timeout aborts one.
    assert!(t1
        .write_lock("cached_user_profile", &[Value::Int(2)])
        .is_err());
    assert!(t2
        .write_lock("cached_user_profile", &[Value::Int(1)])
        .is_err());
    t2.abort();
    // With T2 gone, T1 acquires the lock.
    t1.write_lock("cached_user_profile", &[Value::Int(2)])
        .unwrap();
    t1.commit();
    assert_eq!(mgr.locked_keys(), 0);
}

#[test]
fn dropped_txn_releases_locks() {
    let e = env();
    e.genie.cacheable(profile_def().manual_only()).unwrap();
    e.session
        .create("Profile", &[("user_id", 1i64.into()), ("bio", "x".into())])
        .unwrap();
    let mgr = StrictTxnManager::new();
    {
        let mut t = mgr.begin(&e.genie);
        t.read("cached_user_profile", &[Value::Int(1)]).unwrap();
        // Dropped without commit: implicit abort.
    }
    assert_eq!(mgr.locked_keys(), 0);
}
