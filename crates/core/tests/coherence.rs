//! The central invariant of the whole paper, as a property test:
//! **whatever sequence of writes hits the database, a cached object always
//! serves exactly what recomputing its query would return.**
//!
//! We run random operation streams against wall posts / friendships /
//! memberships with CacheGenie installed, and after every operation
//! compare the intercepted (possibly cached) answer against a bypass query
//! straight to the database — for every cache class and for both the
//! update-in-place and invalidate strategies.

use cachegenie::{CacheGenie, CacheableDef, ConsistencyStrategy, GenieConfig, SortOrder};
use genie_cache::{CacheCluster, ClusterConfig};
use genie_orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use genie_storage::{Database, Value, ValueType};
use proptest::prelude::*;
use std::sync::Arc;

const USERS: i64 = 4;
const K: usize = 3;

fn registry() -> Arc<ModelRegistry> {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("date_posted", ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("Group", "groups")
            .field(FieldDef::new("title", ValueType::Text))
            .build(),
    )
    .unwrap();
    reg.register(
        ModelDef::builder("GroupMembership", "membership")
            .foreign_key("user_id", "User")
            .foreign_key("group_id", "Group")
            .build(),
    )
    .unwrap();
    Arc::new(reg)
}

#[derive(Debug, Clone)]
enum Op {
    PostWall { user: i64, ts: i64 },
    DeleteWallOldest { user: i64 },
    RetimeWallNewest { user: i64, ts: i64 },
    MoveWallPost { from: i64, to: i64 },
    JoinGroup { user: i64, group: i64 },
    LeaveGroup { user: i64, group: i64 },
    RenameGroup { group: i64 },
    ReadWall { user: i64 },
    ReadCount { user: i64 },
    ReadGroups { user: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let user = 1..=USERS;
    let group = 1..=3i64;
    prop_oneof![
        (user.clone(), 0..1000i64).prop_map(|(user, ts)| Op::PostWall { user, ts }),
        user.clone().prop_map(|user| Op::DeleteWallOldest { user }),
        (user.clone(), 0..1000i64).prop_map(|(user, ts)| Op::RetimeWallNewest { user, ts }),
        (user.clone(), user.clone()).prop_map(|(from, to)| Op::MoveWallPost { from, to }),
        (user.clone(), group.clone()).prop_map(|(user, group)| Op::JoinGroup { user, group }),
        (user.clone(), group.clone()).prop_map(|(user, group)| Op::LeaveGroup { user, group }),
        group.prop_map(|group| Op::RenameGroup { group }),
        user.clone().prop_map(|user| Op::ReadWall { user }),
        user.clone().prop_map(|user| Op::ReadCount { user }),
        user.prop_map(|user| Op::ReadGroups { user }),
    ]
}

struct Env {
    session: OrmSession,
    genie: CacheGenie,
    rename_seq: i64,
}

fn env(strategy: ConsistencyStrategy) -> Env {
    let reg = registry();
    let db = Database::default();
    reg.sync(&db).unwrap();
    let session = OrmSession::new(db.clone(), Arc::clone(&reg));
    let cluster = CacheCluster::new(ClusterConfig {
        servers: 2,
        ..Default::default()
    });
    let genie = CacheGenie::new(db, cluster, reg, GenieConfig::default());
    genie.install(&session);
    for i in 1..=USERS {
        session
            .create("User", &[("username", format!("u{i}").into())])
            .unwrap();
    }
    for g in 1..=3 {
        session
            .create("Group", &[("title", format!("g{g}").into())])
            .unwrap();
    }
    genie
        .cacheable(
            CacheableDef::top_k(
                "wall_topk",
                "WallPost",
                "date_posted",
                SortOrder::Descending,
                K,
            )
            .where_fields(&["user_id"])
            .reserve(2)
            .strategy(strategy),
        )
        .unwrap();
    genie
        .cacheable(
            CacheableDef::count("wall_count", "WallPost")
                .where_fields(&["user_id"])
                .strategy(strategy),
        )
        .unwrap();
    genie
        .cacheable(
            CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
                .where_fields(&["user_id"])
                .strategy(strategy),
        )
        .unwrap();
    Env {
        session,
        genie,
        rename_seq: 0,
    }
}

/// Recomputes ground truth with interception bypassed.
fn bypass<T>(e: &Env, f: impl FnOnce() -> T) -> T {
    e.session.clear_interceptor();
    let out = f();
    e.genie.install(&e.session);
    out
}

fn wall_ids_by_recency(e: &Env, user: i64, limit: u64) -> Vec<(i64, i64)> {
    let qs = e
        .session
        .objects("WallPost")
        .unwrap()
        .filter_eq("user_id", user)
        .order_by("-date_posted")
        .order_by("id") // deterministic tiebreak for comparison only
        .limit(limit);
    e.session
        .all(&qs)
        .unwrap()
        .rows
        .iter()
        .map(|r| (r.get("date_posted").as_timestamp().unwrap(), r.id()))
        .collect()
}

fn apply(e: &mut Env, op: &Op) {
    match op {
        Op::PostWall { user, ts } => {
            e.session
                .create(
                    "WallPost",
                    &[
                        ("user_id", (*user).into()),
                        ("date_posted", Value::Timestamp(*ts)),
                    ],
                )
                .unwrap();
        }
        Op::DeleteWallOldest { user } => {
            let victim = bypass(e, || {
                let qs = e
                    .session
                    .objects("WallPost")
                    .unwrap()
                    .filter_eq("user_id", *user)
                    .order_by("date_posted")
                    .limit(1);
                e.session.all(&qs).unwrap().rows.first().map(|r| r.id())
            });
            if let Some(id) = victim {
                e.session.delete_by_id("WallPost", id).unwrap();
            }
        }
        Op::RetimeWallNewest { user, ts } => {
            let victim = bypass(e, || {
                let qs = e
                    .session
                    .objects("WallPost")
                    .unwrap()
                    .filter_eq("user_id", *user)
                    .order_by("-date_posted")
                    .limit(1);
                e.session.all(&qs).unwrap().rows.first().map(|r| r.id())
            });
            if let Some(id) = victim {
                e.session
                    .update_by_id("WallPost", id, &[("date_posted", Value::Timestamp(*ts))])
                    .unwrap();
            }
        }
        Op::MoveWallPost { from, to } => {
            let victim = bypass(e, || {
                let qs = e
                    .session
                    .objects("WallPost")
                    .unwrap()
                    .filter_eq("user_id", *from)
                    .limit(1);
                e.session.all(&qs).unwrap().rows.first().map(|r| r.id())
            });
            if let Some(id) = victim {
                e.session
                    .update_by_id("WallPost", id, &[("user_id", (*to).into())])
                    .unwrap();
            }
        }
        Op::JoinGroup { user, group } => {
            e.session
                .create(
                    "GroupMembership",
                    &[("user_id", (*user).into()), ("group_id", (*group).into())],
                )
                .unwrap();
        }
        Op::LeaveGroup { user, group } => {
            let victim = bypass(e, || {
                let qs = e
                    .session
                    .objects("GroupMembership")
                    .unwrap()
                    .filter_eq("user_id", *user)
                    .filter_eq("group_id", *group)
                    .limit(1);
                e.session.all(&qs).unwrap().rows.first().map(|r| r.id())
            });
            if let Some(id) = victim {
                e.session.delete_by_id("GroupMembership", id).unwrap();
            }
        }
        Op::RenameGroup { group } => {
            e.rename_seq += 1;
            let title = format!("g{group}-v{}", e.rename_seq);
            e.session
                .update_by_id("Group", *group, &[("title", title.into())])
                .unwrap();
        }
        Op::ReadWall { .. } | Op::ReadCount { .. } | Op::ReadGroups { .. } => {}
    }
    // Reads in the op stream (and after every op below) warm the cache so
    // subsequent triggers have something to maintain.
    match op {
        Op::ReadWall { user } | Op::ReadCount { user } | Op::ReadGroups { user } => {
            check_user(e, *user);
        }
        _ => {}
    }
}

/// Asserts cached answers equal recomputed answers for one user.
fn check_user(e: &Env, user: i64) {
    // --- Top-K ---
    let qs = e
        .session
        .objects("WallPost")
        .unwrap()
        .filter_eq("user_id", user)
        .order_by("-date_posted")
        .limit(K as u64);
    let cached = e.session.all(&qs).unwrap();
    let cached_ts: Vec<i64> = cached
        .rows
        .iter()
        .map(|r| r.get("date_posted").as_timestamp().unwrap())
        .collect();
    let truth = bypass(e, || wall_ids_by_recency(e, user, K as u64));
    let truth_ts: Vec<i64> = truth.iter().map(|(ts, _)| *ts).collect();
    // Compare timestamps (ties may legally order either way).
    assert_eq!(
        cached_ts, truth_ts,
        "top-k divergence for user {user}: cached {cached_ts:?} vs db {truth_ts:?}"
    );

    // --- Count ---
    let qs = e
        .session
        .objects("WallPost")
        .unwrap()
        .filter_eq("user_id", user);
    let (cached_n, _) = e.session.count(&qs).unwrap();
    let truth_n = bypass(e, || {
        let qs = e
            .session
            .objects("WallPost")
            .unwrap()
            .filter_eq("user_id", user);
        e.session.count(&qs).unwrap().0
    });
    assert_eq!(cached_n, truth_n, "count divergence for user {user}");

    // --- Link ---
    let group_model = e.session.registry().model("Group").unwrap().clone();
    let qs = e
        .session
        .objects("GroupMembership")
        .unwrap()
        .join_on(&group_model, "group_id", "id")
        .filter_eq("user_id", user);
    let cached = e.session.all(&qs).unwrap();
    let mut cached_pairs: Vec<(i64, String)> = cached
        .rows
        .iter()
        .map(|r| {
            (
                r.id(),
                r.get("title").as_text().unwrap_or_default().to_owned(),
            )
        })
        .collect();
    cached_pairs.sort();
    let mut truth_pairs = bypass(e, || {
        e.session
            .all(&qs)
            .unwrap()
            .rows
            .iter()
            .map(|r| {
                (
                    r.id(),
                    r.get("title").as_text().unwrap_or_default().to_owned(),
                )
            })
            .collect::<Vec<_>>()
    });
    truth_pairs.sort();
    assert_eq!(cached_pairs, truth_pairs, "link divergence for user {user}");
}

fn run_coherence(strategy: ConsistencyStrategy, ops: &[Op]) {
    let mut e = env(strategy);
    // Warm every user's cached objects so triggers have work to do.
    for u in 1..=USERS {
        check_user(&e, u);
    }
    for op in ops {
        apply(&mut e, op);
        for u in 1..=USERS {
            check_user(&e, u);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn update_in_place_never_diverges(ops in prop::collection::vec(op_strategy(), 1..40)) {
        run_coherence(ConsistencyStrategy::UpdateInPlace, &ops);
    }

    #[test]
    fn invalidate_never_diverges(ops in prop::collection::vec(op_strategy(), 1..40)) {
        run_coherence(ConsistencyStrategy::Invalidate, &ops);
    }
}

/// Deterministic regression-style sequence exercising every trigger path.
#[test]
fn mixed_deterministic_sequence() {
    let ops = vec![
        Op::PostWall { user: 1, ts: 100 },
        Op::PostWall { user: 1, ts: 50 },
        Op::PostWall { user: 1, ts: 150 },
        Op::PostWall { user: 2, ts: 10 },
        Op::ReadWall { user: 1 },
        Op::PostWall { user: 1, ts: 120 },
        Op::DeleteWallOldest { user: 1 },
        Op::DeleteWallOldest { user: 1 },
        Op::DeleteWallOldest { user: 1 },
        Op::RetimeWallNewest { user: 1, ts: 5 },
        Op::MoveWallPost { from: 1, to: 2 },
        Op::JoinGroup { user: 1, group: 1 },
        Op::JoinGroup { user: 1, group: 2 },
        Op::ReadGroups { user: 1 },
        Op::RenameGroup { group: 1 },
        Op::LeaveGroup { user: 1, group: 2 },
        Op::JoinGroup { user: 2, group: 1 },
        Op::RenameGroup { group: 1 },
        Op::ReadCount { user: 2 },
        Op::MoveWallPost { from: 2, to: 1 },
    ];
    run_coherence(ConsistencyStrategy::UpdateInPlace, &ops);
    run_coherence(ConsistencyStrategy::Invalidate, &ops);
}
