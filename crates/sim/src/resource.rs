//! Contended resources with FIFO queueing.
//!
//! A [`Resource`] models a server with `k` identical units (CPU cores, disk
//! spindles, cache-server threads). Clients ask for a grant of service time;
//! the resource schedules the request on the earliest-free unit, FIFO with
//! respect to request order. Because the benchmark driver always advances
//! the client with the smallest local clock first, request order closely
//! approximates arrival-time order, which is the standard
//! activity-scanning approximation for closed-loop workloads.

use crate::time::{SimDuration, SimTime};

/// The outcome of acquiring service time on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually began (>= request time if the resource was busy).
    pub start: SimTime,
    /// When service completed; the caller's clock should advance to this.
    pub end: SimTime,
}

impl Grant {
    /// How long the request waited in queue before service began.
    pub fn queueing_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.saturating_since(requested_at)
    }
}

/// A multi-unit FIFO server in virtual time.
///
/// Tracks per-unit "free at" horizons plus aggregate busy time so the
/// harness can report utilization (the paper's Experiments 1-4 hinge on
/// which resource saturates: DB CPU for NoCache, DB disk for the cached
/// configurations).
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Earliest instant each unit becomes free.
    free_at: Vec<SimTime>,
    busy: SimDuration,
    grants: u64,
    queue_delay_total: SimDuration,
}

impl Resource {
    /// Creates a resource with `units` identical service units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero: a resource with no capacity can never
    /// serve a request.
    pub fn new(name: impl Into<String>, units: usize) -> Self {
        assert!(units > 0, "resource must have at least one unit");
        Resource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; units],
            busy: SimDuration::ZERO,
            grants: 0,
            queue_delay_total: SimDuration::ZERO,
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of service units.
    pub fn units(&self) -> usize {
        self.free_at.len()
    }

    /// Requests `service` time starting no earlier than `now`.
    ///
    /// Picks the unit that frees up soonest; service begins at
    /// `max(now, unit_free_at)` and runs without preemption.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let idx = self.earliest_unit();
        let start = now.max(self.free_at[idx]);
        let end = start + service;
        self.free_at[idx] = end;
        self.busy += service;
        self.grants += 1;
        self.queue_delay_total += start.saturating_since(now);
        Grant { start, end }
    }

    /// When the next request arriving at `now` would begin service.
    pub fn next_start(&self, now: SimTime) -> SimTime {
        now.max(self.free_at[self.earliest_unit()])
    }

    /// Total service time granted.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Mean queueing delay across grants, or zero if none issued.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.grants == 0 {
            SimDuration::ZERO
        } else {
            self.queue_delay_total / self.grants
        }
    }

    /// Utilization over a horizon: busy time divided by capacity-time.
    ///
    /// Values near 1.0 mean the resource is the bottleneck.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let cap = horizon.as_secs_f64() * self.free_at.len() as f64;
        if cap <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / cap).min(1.0)
        }
    }

    /// Resets all scheduling state (used between warm-up and measurement).
    pub fn reset(&mut self) {
        for f in &mut self.free_at {
            *f = SimTime::ZERO;
        }
        self.busy = SimDuration::ZERO;
        self.grants = 0;
        self.queue_delay_total = SimDuration::ZERO;
    }

    /// Clears accumulated statistics but keeps the schedule horizon, so a
    /// measurement interval can start mid-run without a scheduling
    /// discontinuity.
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.grants = 0;
        self.queue_delay_total = SimDuration::ZERO;
    }

    fn earliest_unit(&self) -> usize {
        let mut best = 0;
        for (i, f) in self.free_at.iter().enumerate().skip(1) {
            if *f < self.free_at[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_unit_serializes() {
        let mut r = Resource::new("cpu", 1);
        let a = r.acquire(SimTime::ZERO, ms(10));
        let b = r.acquire(SimTime::ZERO, ms(5));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_millis(10));
        assert_eq!(b.start, SimTime::from_millis(10));
        assert_eq!(b.end, SimTime::from_millis(15));
    }

    #[test]
    fn multi_unit_runs_in_parallel() {
        let mut r = Resource::new("disks", 2);
        let a = r.acquire(SimTime::ZERO, ms(10));
        let b = r.acquire(SimTime::ZERO, ms(10));
        let c = r.acquire(SimTime::ZERO, ms(10));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        // Third request waits for whichever unit frees first.
        assert_eq!(c.start, SimTime::from_millis(10));
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new("net", 1);
        let g = r.acquire(SimTime::from_millis(42), ms(1));
        assert_eq!(g.start, SimTime::from_millis(42));
        assert_eq!(g.queueing_delay(SimTime::from_millis(42)), ms(0));
    }

    #[test]
    fn queueing_delay_is_tracked() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(SimTime::ZERO, ms(10));
        let g = r.acquire(SimTime::ZERO, ms(10));
        assert_eq!(g.queueing_delay(SimTime::ZERO), ms(10));
        assert_eq!(r.mean_queue_delay(), ms(5));
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(SimTime::ZERO, ms(250));
        let u = r.utilization(SimTime::from_millis(1000));
        assert!((u - 0.25).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn utilization_of_zero_horizon_is_zero() {
        let r = Resource::new("cpu", 1);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_schedule() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(SimTime::ZERO, ms(100));
        r.reset();
        let g = r.acquire(SimTime::ZERO, ms(1));
        assert_eq!(g.start, SimTime::ZERO);
        assert_eq!(r.grants(), 1);
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(SimTime::ZERO, ms(100));
        r.reset_stats();
        assert_eq!(r.grants(), 0);
        // Schedule horizon preserved: next grant still queues.
        let g = r.acquire(SimTime::ZERO, ms(1));
        assert_eq!(g.start, SimTime::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = Resource::new("bad", 0);
    }

    #[test]
    fn next_start_previews_queue() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(SimTime::ZERO, ms(7));
        assert_eq!(r.next_start(SimTime::ZERO), SimTime::from_millis(7));
        assert_eq!(
            r.next_start(SimTime::from_millis(9)),
            SimTime::from_millis(9)
        );
    }
}
