//! Discrete-event simulation kernel for the CacheGenie reproduction.
//!
//! The CacheGenie paper evaluates its middleware on a physical testbed (a
//! dedicated PostgreSQL server, a memcached server, and a client machine on
//! gigabit ethernet). This crate is the substitute substrate: it provides a
//! virtual clock, contended [`Resource`]s with FIFO queueing semantics, and
//! the sampling distributions (notably [`Zipf`]) the workload generator
//! needs. The benchmark driver executes queries *functionally* against the
//! real storage engine and cache, then charges their modelled costs to
//! simulated resources; throughput and latency are read off the virtual
//! clock. This yields deterministic, laptop-speed reproductions of the
//! paper's contention curves.
//!
//! # Example
//!
//! ```
//! use genie_sim::{Resource, SimTime, SimDuration};
//!
//! // A single-core "database CPU".
//! let mut cpu = Resource::new("db_cpu", 1);
//! // Two requests arriving at t=0 are serialized.
//! let a = cpu.acquire(SimTime::ZERO, SimDuration::from_millis(10));
//! let b = cpu.acquire(SimTime::ZERO, SimDuration::from_millis(10));
//! assert_eq!(a.end, SimTime::from_millis(10));
//! assert_eq!(b.start, SimTime::from_millis(10));
//! assert_eq!(b.end, SimTime::from_millis(20));
//! ```

pub mod dist;
pub mod resource;
pub mod stats;
pub mod time;

pub use dist::{Exponential, Zipf};
pub use resource::{Grant, Resource};
pub use stats::{OnlineStats, Percentiles};
pub use time::{SimDuration, SimTime};
