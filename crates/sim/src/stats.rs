//! Online statistics and percentile estimation for experiment metrics.

use std::fmt;

/// Welford-style online mean/variance accumulator.
///
/// Used for throughput and latency aggregation where we do not want to
/// retain every sample.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator), or 0.0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Exact percentile computation over retained samples.
///
/// Experiment runs produce at most a few hundred thousand page-load
/// latencies, so retaining them is cheap and keeps percentiles exact.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the `p`-th percentile (0.0..=100.0) by nearest-rank, or
    /// `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        // Classic nearest-rank: the ceil(p/100 * N)-th smallest sample.
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.max(1).min(self.samples.len()) - 1;
        Some(self.samples[idx])
    }

    /// Median convenience accessor.
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.median(), Some(50.0));
        assert_eq!(p.percentile(95.0), Some(95.0));
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(50.0), None);
        assert_eq!(p.mean(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let mut p = Percentiles::new();
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.percentile(-5.0), Some(1.0));
        assert_eq!(p.percentile(250.0), Some(2.0));
    }

    #[test]
    fn percentile_handles_unsorted_pushes() {
        let mut p = Percentiles::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            p.push(x);
        }
        assert_eq!(p.median(), Some(3.0));
        p.push(0.0);
        // Re-sorts after new data arrives.
        assert_eq!(p.percentile(0.0), Some(0.0));
    }
}
