//! Sampling distributions used by the workload generator.
//!
//! The paper distributes sessions across users with a Zipf distribution
//! (`p(x) = x^-a / zeta(a)`, Benevenuto et al.'s social-network
//! measurement), sweeping the parameter `a` in Experiment 3. [`Zipf`] here
//! is the bounded variant over ranks `1..=n` with an explicit CDF table,
//! which is exact, O(log n) to sample, and deterministic under a seeded RNG.

use rand::Rng;

/// Bounded Zipf distribution over ranks `1..=n` with exponent `a`.
///
/// Rank 1 is the most probable outcome. The workload maps ranks to user ids
/// so that a small set of "heavy" users log in most often; lower `a` spreads
/// the load more uniformly (the x-axis of the paper's Figure 3b).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    a: f64,
    /// cdf[i] = P(rank <= i+1); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `1..=n` with exponent `a`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `a` is not finite and positive; both indicate
    /// a mis-configured experiment rather than a runtime condition.
    pub fn new(n: usize, a: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(a.is_finite() && a > 0.0, "zipf exponent must be positive");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            let w = (rank as f64).powf(-a);
            total += w;
            weights.push(total);
        }
        let mut cdf: Vec<f64> = weights.iter().map(|w| w / total).collect();
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { n, a, cdf }
    }

    /// The size of the support.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exponent the distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.a
    }

    /// Probability mass of `rank` (1-based).
    ///
    /// Returns 0.0 for ranks outside `1..=n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.n {
            return 0.0;
        }
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }

    /// Samples a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry >= u; +1 converts to a 1-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx + 1).min(self.n)
    }
}

/// Exponential distribution with the given mean, for think-time sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean` (any unit).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and non-negative.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
        Exponential { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample; always non-negative, zero if the mean is zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.5);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 2.0);
        for r in 1..50 {
            assert!(z.pmf(r) >= z.pmf(r + 1), "rank {r}");
        }
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(11), 0.0);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=7).contains(&s));
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let skewed = Zipf::new(1000, 2.0);
        let flat = Zipf::new(1000, 1.1);
        let count_rank1 =
            |z: &Zipf, rng: &mut StdRng| (0..20_000).filter(|_| z.sample(rng) == 1).count();
        let s = count_rank1(&skewed, &mut rng);
        let f = count_rank1(&flat, &mut rng);
        assert!(s > f, "skewed {s} flat {f}");
    }

    #[test]
    fn empirical_frequency_tracks_pmf() {
        let z = Zipf::new(20, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0usize; 21];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for rank in [1usize, 2, 5, 10] {
            let emp = counts[rank] as f64 / n as f64;
            let exp = z.pmf(rank);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {rank}: empirical {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn singleton_support_always_returns_one() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
        assert_eq!(z.pmf(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn bad_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let e = Exponential::new(5.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| e.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_zero_mean_samples_zero() {
        let e = Exponential::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(e.sample(&mut rng), 0.0);
    }

    #[test]
    fn exponential_samples_nonnegative() {
        let e = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }
}
