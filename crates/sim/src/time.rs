//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulation never consults the wall clock. All latencies in the
//! benchmark harness are [`SimDuration`]s charged against [`SimTime`]
//! instants, so experiment runs are deterministic and replayable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in nanoseconds since the start of
/// the run.
///
/// `SimTime` is a monotone, totally ordered newtype; arithmetic with
/// [`SimDuration`] saturates rather than wrapping so a mis-modelled cost can
/// never travel back in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "idle forever" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (lossy; for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a float number of milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero; the cost model works in
    /// milliseconds because that is the unit the paper's microbenchmarks
    /// report.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((ms * 1e6) as u64)
    }

    /// The duration as nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as float milliseconds (lossy; for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration as float seconds (lossy; for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(5) + SimDuration::from_millis(7);
        assert_eq!(t, SimTime::from_millis(12));
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_millis(1) - SimTime::from_millis(9);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(3) - SimDuration::from_nanos(10),
            SimDuration::ZERO
        );
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn from_millis_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a.saturating_since(b), SimDuration::from_millis(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_millis(3) * 4,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
        // Division by zero clamps to division by one rather than panicking.
        assert_eq!(SimDuration::from_millis(5) / 0, SimDuration::from_millis(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
