#!/usr/bin/env bash
# Full verification gate for the workspace; run from the repo root.
# Mirrors what a CI job would run — keep it green before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc (public-API doctests: transactions, snapshots, vacuum)"
cargo test --doc -q

echo "==> cargo build --benches (criterion harnesses compile)"
cargo build --benches -q

echo "==> plan_audit --check (social-app page-query plan regressions)"
cargo run --release -q -p genie-bench --bin plan_audit -- --check > /dev/null

echo "==> trigger_audit --check (commit-pipeline effect-coalescing regressions)"
cargo run --release -q -p genie-bench --bin trigger_audit -- --check > /dev/null

echo "==> concurrency_audit --check (multi-writer thread sweep + MVCC reader gate + disjoint-table latch gate + cache-tier kill/rejoin gate: no livelock, abort/conflict ceilings, zero reader blocking, zero table-latch waits, cache coherence through node failure)"
cargo run --release -q -p genie-bench --bin concurrency_audit -- --check > /dev/null

echo "==> exp_parallel_scan --check (vectorized scans: batch >= row-at-a-time, 4-worker scaling on multi-core hosts)"
cargo run --release -q -p genie-bench --bin exp_parallel_scan -- --check --quick > /dev/null

echo "==> exp_mvcc (snapshot readers vs table-S-lock baseline: zero lock waits, >= baseline read throughput, zero violations)"
cargo run --release -q -p genie-bench --bin exp_mvcc -- --readers 1,4 --txns 80 > /dev/null

echo "==> exp_cache_scale --check (cache tier: sharded stores >= 2x single-mutex baseline at 8 threads, near-flat p99 across 1-8 servers, zero violations through node kill/rejoin)"
cargo run --release -q -p genie-bench --bin exp_cache_scale -- --check --quick > /dev/null

echo "==> exp_wal --check (durability: group commit >= 2x per-commit sync at 8 threads, 10k-commit crash recovery to the exact committed state with zero in-flight leakage)"
cargo run --release -q -p genie-bench --bin exp_wal -- --check --quick > /dev/null

echo "==> exp_serve --check (serving path: paced loopback fleet holds the per-page p99 ceiling with zero shed below the admission threshold, overload sheds retryably, drains drop nothing, zero snapshot/coherence violations)"
cargo run --release -q -p genie-bench --bin exp_serve -- --check --quick > /dev/null

echo "ci.sh: all green"
