//! # cachegenie-repro
//!
//! Workspace facade for the Rust reproduction of *"A Trigger-Based
//! Middleware Cache for ORMs"* (Gupta, Zeldovich, Madden — MIDDLEWARE 2011).
//!
//! Re-exports every layer of the system so examples and downstream users can
//! depend on a single crate:
//!
//! * [`sim`] — discrete-event simulation kernel (testbed substitute)
//! * [`storage`] — embedded relational engine with triggers (PostgreSQL substitute)
//! * [`cache`] — memcached-like distributed cache
//! * [`orm`] — Django-flavoured ORM
//! * [`genie`] — CacheGenie itself: cache classes + trigger-based consistency
//! * [`social`] — the Pinax-like evaluation application
//! * [`server`] — loopback-TCP network front-end with production middleware
//! * [`workload`] — workload generator and benchmark driver

pub use genie_cache as cache;
pub use genie_orm as orm;
pub use genie_server as server;
pub use genie_sim as sim;
pub use genie_social as social;
pub use genie_storage as storage;
pub use genie_workload as workload;

/// The paper's primary contribution: declarative cache classes with
/// automatic trigger-based consistency.
pub use cachegenie as genie;
